"""Rule planner and the end-to-end AV pipeline."""

import numpy as np
import pytest

from repro.av import Action, AvPipeline, ConfirmedObject, RulePlanner
from repro.detection import TinyYolo, reduced_config
from repro.detection.config import CLASS_NAMES


def confirmed(class_name, box, track_id=0, score=0.9):
    return ConfirmedObject(
        track_id=track_id,
        class_id=CLASS_NAMES.index(class_name),
        box_xyxy=np.asarray(box, dtype=np.float32),
        score=score,
    )


CENTER_NEAR = [40, 60, 60, 90]   # central corridor, close (bottom at 90/96)
CENTER_FAR = [40, 20, 60, 40]
SIDE = [0, 60, 10, 90]


class TestRulePlanner:
    @pytest.fixture
    def planner(self):
        return RulePlanner(image_size=96)

    def test_cruise_when_nothing_confirmed(self, planner):
        assert planner.decide([]).action == Action.CRUISE

    def test_person_in_corridor_brakes(self, planner):
        decision = planner.decide([confirmed("person", CENTER_NEAR)])
        assert decision.action == Action.BRAKE
        assert "person" in decision.reason

    def test_bicycle_in_corridor_brakes(self, planner):
        assert planner.decide([confirmed("bicycle", CENTER_NEAR)]).action == Action.BRAKE

    def test_person_outside_corridor_ignored(self, planner):
        assert planner.decide([confirmed("person", SIDE)]).action == Action.CRUISE

    def test_near_car_slows(self, planner):
        assert planner.decide([confirmed("car", CENTER_NEAR)]).action == Action.SLOW

    def test_far_car_cruises(self, planner):
        assert planner.decide([confirmed("car", CENTER_FAR)]).action == Action.CRUISE

    def test_mark_triggers_lane_guidance(self, planner):
        assert planner.decide([confirmed("mark", CENTER_NEAR)]).action == Action.FOLLOW_ARROW

    def test_word_triggers_slow(self, planner):
        assert planner.decide([confirmed("word", CENTER_NEAR)]).action == Action.SLOW

    def test_brake_has_priority_over_guidance(self, planner):
        decision = planner.decide([
            confirmed("mark", CENTER_NEAR, track_id=1),
            confirmed("person", CENTER_NEAR, track_id=2),
        ])
        assert decision.action == Action.BRAKE

    def test_attack_changes_behaviour(self, planner):
        """The paper's end-to-end threat: arrow read as word changes the
        vehicle's action from lane guidance to an unnecessary slow-down."""
        clean = planner.decide([confirmed("mark", CENTER_NEAR)])
        attacked = planner.decide([confirmed("word", CENTER_NEAR)])
        assert clean.action == Action.FOLLOW_ARROW
        assert attacked.action == Action.SLOW

    def test_drive_maps_whole_stream(self, planner):
        stream = [[], [confirmed("mark", CENTER_NEAR)], []]
        decisions = planner.drive(stream)
        assert [d.action for d in decisions] == [
            Action.CRUISE, Action.FOLLOW_ARROW, Action.CRUISE,
        ]


class TestAvPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        detector = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25),
                            seed=0)
        return AvPipeline(detector, confirm_frames=2, conf_threshold=0.9)

    def test_step_returns_trace(self, pipeline, rng):
        trace = pipeline.step(rng.random((3, 64, 64)).astype(np.float32))
        assert trace.decision.action in Action
        assert isinstance(trace.detections, list)

    def test_run_resets_state(self, pipeline, rng):
        frames = [rng.random((3, 64, 64)).astype(np.float32) for _ in range(3)]
        pipeline.run(frames)
        assert pipeline.confirmer.frame_index == 3
        pipeline.run(frames)
        assert pipeline.confirmer.frame_index == 3  # reset happened

    def test_action_counts_cover_run(self, pipeline, rng):
        frames = [rng.random((3, 64, 64)).astype(np.float32) for _ in range(4)]
        traces = pipeline.run(frames)
        counts = AvPipeline.action_counts(traces)
        assert sum(counts.values()) == 4
