"""Parity of the batched AvPipeline.run hot path with per-frame step().

The batched path must be behaviourally indistinguishable from the
historical frame-by-frame loop: same detections, same confirmations, same
planner actions, same sensor-fault flags — including when a
FaultSchedule drops frames mid-stream.
"""

import numpy as np
import pytest

from repro.av import AvPipeline
from repro.detection import TinyYolo, reduced_config
from repro.perf import PerfRecorder
from repro.runtime import FaultSchedule

pytestmark = pytest.mark.perf

N_FRAMES = 12


def make_pipeline(conf_threshold=0.01):
    detector = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25),
                        seed=0)
    return AvPipeline(detector, confirm_frames=2, conf_threshold=conf_threshold)


def make_frames(rng, n=N_FRAMES):
    return [rng.random((3, 64, 64)).astype(np.float32) for _ in range(n)]


def step_reference(pipeline, stream):
    """The historical per-frame loop over an already degraded stream."""
    pipeline.reset()
    return [pipeline.step(frame) for frame in stream]


def assert_traces_match(reference, batched, box_atol):
    """``box_atol=0`` demands bit-identity; otherwise discrete outcomes
    must still match exactly and only box/score floats may drift within
    BLAS reassociation noise."""
    assert len(reference) == len(batched)
    for ref, bat in zip(reference, batched):
        assert ref.sensor_fault == bat.sensor_fault
        assert ref.decision.action == bat.decision.action
        assert len(ref.detections) == len(bat.detections)
        for a, b in zip(ref.detections, bat.detections):
            assert a.class_id == b.class_id
            if box_atol == 0:
                np.testing.assert_array_equal(a.box_xyxy, b.box_xyxy)
                assert a.score == b.score
            else:
                np.testing.assert_allclose(a.box_xyxy, b.box_xyxy,
                                           atol=box_atol)
                assert abs(a.score - b.score) <= box_atol
        assert ([(c.track_id, c.class_id) for c in ref.confirmed]
                == [(c.track_id, c.class_id) for c in bat.confirmed])


class TestBatchedPipelineParity:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return make_pipeline()

    def test_batch_size_one_is_bit_identical(self, pipeline, rng):
        frames = make_frames(rng)
        reference = step_reference(pipeline, frames)
        batched = pipeline.run(frames, batch_size=1)
        assert_traces_match(reference, batched, box_atol=0)

    def test_batched_matches_per_frame_loop(self, pipeline, rng):
        frames = make_frames(rng)
        reference = step_reference(pipeline, frames)
        for batch_size in (4, 8, len(frames) + 5):
            batched = pipeline.run(frames, batch_size=batch_size)
            assert_traces_match(reference, batched, box_atol=1e-3)

    def test_parity_with_dropped_frames(self, pipeline, rng):
        """FaultSchedule drops must hit identical frames in both paths and
        coast identically through the confirmation layer."""
        frames = make_frames(rng)
        faults = FaultSchedule.dropped_frames(0.4, seed=7)
        stream = faults.degrade_stream(frames, np.random.default_rng(99))
        assert any(frame is None for frame in stream)  # scenario is live

        reference = step_reference(pipeline, stream)
        batched = pipeline.run(frames, faults=faults,
                               rng=np.random.default_rng(99), batch_size=4)
        assert_traces_match(reference, batched, box_atol=1e-3)
        assert ([t.sensor_fault for t in batched]
                == [frame is None for frame in stream])

    def test_all_frames_dropped(self, pipeline):
        batched = pipeline.run([None] * 4, batch_size=2)
        assert all(t.sensor_fault for t in batched)
        assert all(t.detections == [] for t in batched)

    def test_schedule_dropping_every_frame_matches_per_frame(self, pipeline, rng):
        """drop_probability=1.0: every batch is all-fault, so the batched
        path must coast the whole stream without ever touching the
        detector — and still mirror the per-frame loop exactly."""
        frames = make_frames(rng)
        faults = FaultSchedule.dropped_frames(1.0, seed=3)
        stream = faults.degrade_stream(frames, np.random.default_rng(5))
        assert all(frame is None for frame in stream)

        reference = step_reference(pipeline, stream)
        batched = pipeline.run(frames, faults=faults,
                               rng=np.random.default_rng(5), batch_size=4)
        assert_traces_match(reference, batched, box_atol=0)
        assert all(t.sensor_fault for t in batched)
        assert all(t.decision.action == ref.decision.action
                   for t, ref in zip(batched, reference))

    def test_fault_window_spanning_batch_boundary(self, pipeline, rng):
        """A contiguous drop window (frames 2..5) that straddles the
        batch_size=4 boundary: the tail of batch 0 and the head of batch
        1 are both faulty, so confirmation coasting must carry state
        across the batch cut identically to the per-frame loop."""
        frames = make_frames(rng)
        stream = [None if 2 <= i <= 5 else frame
                  for i, frame in enumerate(frames)]
        reference = step_reference(pipeline, stream)
        batched = pipeline.run(stream, batch_size=4)
        assert_traces_match(reference, batched, box_atol=1e-3)
        assert ([t.sensor_fault for t in batched]
                == [frame is None for frame in stream])

    def test_perf_recorder_sees_all_stages(self, pipeline, rng):
        frames = make_frames(rng, n=6)
        perf = PerfRecorder()
        pipeline.run(frames, batch_size=3, perf=perf)
        for stage in ("forward", "decode", "nms", "confirm"):
            assert perf.stage_seconds(stage) > 0.0
        assert perf.counters["frames"] == 6
        assert perf.counters["batches"] == 2
        assert perf.fps("forward") > 0.0
