"""Detection confirmation tracker (the CWC rule as a running system)."""

import numpy as np
import pytest

from repro.av import DetectionConfirmer
from repro.detection.decode import Detection


def det(box, class_id, score=0.9):
    return Detection(
        box_xyxy=np.asarray(box, dtype=np.float32),
        score=score,
        class_id=class_id,
        class_probs=np.zeros(5, dtype=np.float32),
    )


BOX = [20, 20, 40, 40]
NEARBY = [22, 21, 42, 41]
ELSEWHERE = [70, 70, 90, 90]


class TestConfirmation:
    def test_confirms_after_three_consecutive_frames(self):
        confirmer = DetectionConfirmer(confirm_frames=3)
        assert confirmer.update([det(BOX, 2)]) == []
        assert confirmer.update([det(NEARBY, 2)]) == []
        confirmed = confirmer.update([det(BOX, 2)])
        assert len(confirmed) == 1
        assert confirmed[0].class_id == 2

    def test_two_frames_not_enough(self):
        confirmer = DetectionConfirmer(confirm_frames=3)
        confirmer.update([det(BOX, 2)])
        assert confirmer.update([det(BOX, 2)]) == []

    def test_class_flip_restarts_count(self):
        confirmer = DetectionConfirmer(confirm_frames=3)
        confirmer.update([det(BOX, 2)])
        confirmer.update([det(BOX, 2)])
        assert confirmer.update([det(BOX, 1)]) == []  # flip resets
        confirmer.update([det(BOX, 1)])
        confirmed = confirmer.update([det(BOX, 1)])
        assert len(confirmed) == 1
        assert confirmed[0].class_id == 1

    def test_missed_frame_breaks_streak(self):
        confirmer = DetectionConfirmer(confirm_frames=3)
        confirmer.update([det(BOX, 2)])
        confirmer.update([det(BOX, 2)])
        confirmer.update([])  # missed
        assert confirmer.update([det(BOX, 2)]) == []

    def test_track_dropped_after_max_missed(self):
        confirmer = DetectionConfirmer(confirm_frames=2, max_missed=1)
        confirmer.update([det(BOX, 2)])
        confirmer.update([])
        confirmer.update([])
        assert confirmer.tracks == []

    def test_distant_detection_starts_new_track(self):
        confirmer = DetectionConfirmer(confirm_frames=3)
        confirmer.update([det(BOX, 2)])
        confirmer.update([det(ELSEWHERE, 2)])
        assert len(confirmer.tracks) == 2

    def test_two_objects_tracked_independently(self):
        confirmer = DetectionConfirmer(confirm_frames=2)
        for _ in range(2):
            confirmed = confirmer.update([det(BOX, 2), det(ELSEWHERE, 3)])
        assert {c.class_id for c in confirmed} == {2, 3}

    def test_confirmed_object_stays_confirmed_while_detected(self):
        confirmer = DetectionConfirmer(confirm_frames=2)
        confirmer.update([det(BOX, 2)])
        confirmer.update([det(BOX, 2)])
        confirmed = confirmer.update([det(BOX, 2)])
        assert len(confirmed) == 1

    def test_reset_clears_state(self):
        confirmer = DetectionConfirmer(confirm_frames=1)
        confirmer.update([det(BOX, 2)])
        confirmer.reset()
        assert confirmer.tracks == []
        assert confirmer.frame_index == 0

    def test_invalid_confirm_frames_rejected(self):
        with pytest.raises(ValueError):
            DetectionConfirmer(confirm_frames=0)

    def test_matches_cwc_semantics(self):
        """Confirmation after K consecutive wrong-class frames is exactly
        what the CWC metric reports."""
        from repro.eval import FrameOutcome, cwc

        confirmer = DetectionConfirmer(confirm_frames=3)
        frames = [det(BOX, 1)] * 3  # attacker's wrong class for 3 frames
        confirmed_any = False
        outcomes = []
        for d in frames:
            confirmed = confirmer.update([d])
            confirmed_any |= any(c.class_id == 1 for c in confirmed)
            outcomes.append(FrameOutcome(predicted_class=1))
        assert confirmed_any == cwc(outcomes, target_label=1)
