"""Four Shapes generator and background masking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.patch import (
    SHAPE_NAMES,
    hard_background_mask,
    sample_batch,
    shape_image,
    shape_mask,
    soft_background_mask,
)


class TestShapes:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_black_on_white(self, shape, rng):
        image = shape_image(shape, 32, rng)
        assert image.shape == (1, 32, 32)
        # Corners white, center region contains black ink.
        assert image[0, 0, 0] == pytest.approx(1.0)
        assert image.min() == pytest.approx(0.0)

    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_mask_centered_and_nonempty(self, shape):
        mask = shape_mask(shape, 48, jitter=False)
        assert mask[24, 24]
        fraction = mask.mean()
        assert 0.1 < fraction < 0.7

    def test_unknown_shape_raises(self):
        with pytest.raises(KeyError):
            shape_image("pentagon", 32)

    def test_star_has_less_area_than_circle(self):
        star = shape_mask("star", 64, jitter=False).mean()
        circle = shape_mask("circle", 64, jitter=False).mean()
        assert star < circle

    def test_jitter_varies_instances(self, rng):
        a = shape_image("star", 32, rng)
        b = shape_image("star", 32, rng)
        assert not np.allclose(a, b)

    def test_sample_batch_shape(self, rng):
        batch = sample_batch("triangle", 24, 5, rng)
        assert batch.shape == (5, 1, 24, 24)

    @given(size=st.integers(min_value=10, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_any_size_valid(self, size):
        image = shape_image("square", size, np.random.default_rng(0))
        assert image.shape == (1, size, size)
        assert ((image >= 0) & (image <= 1)).all()


class TestMasks:
    def test_soft_mask_high_on_ink(self):
        patch = Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32))
        mask = soft_background_mask(patch)
        assert (mask.data > 0.99).all()

    def test_soft_mask_low_on_background(self):
        patch = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        mask = soft_background_mask(patch)
        assert (mask.data < 0.01).all()

    def test_soft_mask_differentiable(self, rng):
        patch = Tensor(rng.random((1, 1, 8, 8)).astype(np.float32),
                       requires_grad=True)
        soft_background_mask(patch).sum().backward()
        assert patch.grad is not None
        assert np.abs(patch.grad).sum() > 0

    def test_hard_mask_threshold(self):
        patch = np.asarray([[[0.1, 0.9]]], dtype=np.float32)
        mask = hard_background_mask(patch)
        np.testing.assert_allclose(mask, [[1.0, 0.0]])

    def test_hard_mask_accepts_2d(self):
        patch = np.asarray([[0.2, 0.8]], dtype=np.float32)
        np.testing.assert_allclose(hard_background_mask(patch), [[1.0, 0.0]])

    def test_hard_mask_rgb_uses_luminance(self):
        patch = np.zeros((3, 1, 2), dtype=np.float32)
        patch[:, 0, 1] = 1.0
        np.testing.assert_allclose(hard_background_mask(patch), [[1.0, 0.0]])

    def test_masks_agree_on_generated_shape(self, rng):
        image = shape_image("star", 32, rng)
        soft = soft_background_mask(Tensor(image[None])).data[0, 0]
        hard = hard_background_mask(image)
        agreement = ((soft > 0.5) == (hard > 0.5)).mean()
        assert agreement > 0.98
