"""Patch compositing (differentiable + perspective) and placement."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.patch import (
    DECAL_ELONGATION,
    PixelPlacement,
    apply_patches,
    paste_patch_perspective,
    patch_world_length,
    patch_world_size,
    placement_offsets,
    solve_homography,
)


def gray_frame(size=32, value=0.5):
    return np.full((3, size, size), value, dtype=np.float32)


def solid_patch(k=8, value=0.0):
    return Tensor(np.full((1, 1, k, k), value, dtype=np.float32))


def full_alpha(k=8):
    return Tensor(np.ones((1, 1, k, k), dtype=np.float32))


class TestApplyPatches:
    def test_patch_visible_at_placement(self):
        frame = gray_frame()
        out = apply_patches(frame, [solid_patch()], [full_alpha()],
                            [PixelPlacement(16, 16, 8)])
        assert out.data[0, :, 16, 16].max() < 0.01
        assert out.data[0, 0, 2, 2] == pytest.approx(0.5)

    def test_zero_alpha_leaves_frame(self):
        frame = gray_frame()
        alpha = Tensor(np.zeros((1, 1, 8, 8), dtype=np.float32))
        out = apply_patches(frame, [solid_patch()], [alpha],
                            [PixelPlacement(16, 16, 8)])
        np.testing.assert_allclose(out.data[0], frame, atol=1e-6)

    def test_anisotropic_paste_respects_height(self):
        frame = gray_frame()
        out = apply_patches(frame, [solid_patch()], [full_alpha()],
                            [PixelPlacement(16, 16, 12, height_px=4)])
        dark = out.data[0, 0] < 0.1
        rows = np.nonzero(dark.any(axis=1))[0]
        cols = np.nonzero(dark.any(axis=0))[0]
        assert len(rows) == pytest.approx(4, abs=1)
        assert len(cols) == pytest.approx(12, abs=1)

    def test_partially_outside_clipped(self):
        frame = gray_frame()
        out = apply_patches(frame, [solid_patch()], [full_alpha()],
                            [PixelPlacement(0, 0, 8)])
        assert out.data[0, 0, 0, 0] < 0.01  # visible corner
        assert out.shape == (1, 3, 32, 32)

    def test_fully_outside_skipped(self):
        frame = gray_frame()
        out = apply_patches(frame, [solid_patch()], [full_alpha()],
                            [PixelPlacement(-50, -50, 8)])
        np.testing.assert_allclose(out.data[0], frame)

    def test_tiny_placement_skipped(self):
        frame = gray_frame()
        out = apply_patches(frame, [solid_patch()], [full_alpha()],
                            [PixelPlacement(16, 16, 1)])
        np.testing.assert_allclose(out.data[0], frame)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            apply_patches(gray_frame(), [solid_patch()], [], [])

    def test_gradients_reach_patch(self):
        frame = gray_frame()
        patch = Tensor(np.full((1, 1, 8, 8), 0.3, dtype=np.float32),
                       requires_grad=True)
        out = apply_patches(frame, [patch], [full_alpha()],
                            [PixelPlacement(16, 16, 8)])
        out.sum().backward()
        assert patch.grad is not None
        assert np.abs(patch.grad).sum() > 0

    def test_multiple_patches_composite_in_order(self):
        frame = gray_frame()
        white = Tensor(np.ones((1, 1, 8, 8), dtype=np.float32))
        out = apply_patches(
            frame,
            [solid_patch(), white],
            [full_alpha(), full_alpha()],
            [PixelPlacement(16, 16, 8), PixelPlacement(16, 16, 8)],
        )
        # Second patch painted over the first.
        assert out.data[0, 0, 16, 16] == pytest.approx(1.0)


class TestHomography:
    def test_identity_square(self):
        src = np.asarray([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=np.float64)
        h = solve_homography(src, src)
        np.testing.assert_allclose(h, np.eye(3), atol=1e-8)

    def test_translation(self):
        src = np.asarray([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=np.float64)
        dst = src + [5, 7]
        h = solve_homography(src, dst)
        point = h @ np.asarray([0.5, 0.5, 1.0])
        np.testing.assert_allclose(point[:2] / point[2], [5.5, 7.5], atol=1e-6)

    def test_maps_all_corners(self, rng):
        src = np.asarray([[0, 0], [10, 0], [10, 10], [0, 10]], dtype=np.float64)
        dst = src + rng.normal(0, 1, size=(4, 2))
        h = solve_homography(src, dst)
        for s, d in zip(src, dst):
            mapped = h @ np.asarray([s[0], s[1], 1.0])
            np.testing.assert_allclose(mapped[:2] / mapped[2], d, atol=1e-6)


class TestPerspectivePaste:
    def test_paste_darkens_quad_region(self):
        frame = gray_frame(48)
        patch = np.zeros((3, 8, 8), dtype=np.float32)
        alpha = np.ones((8, 8), dtype=np.float32)
        quad = np.asarray([[40, 10], [40, 30], [20, 28], [20, 12]], dtype=np.float32)
        out = paste_patch_perspective(frame, patch, alpha, quad)
        assert out[0, 30, 20] < 0.05          # inside the quad
        assert out[0, 5, 5] == pytest.approx(0.5)  # outside untouched

    def test_offscreen_quad_noop(self):
        frame = gray_frame(32)
        patch = np.zeros((3, 8, 8), dtype=np.float32)
        alpha = np.ones((8, 8), dtype=np.float32)
        quad = np.asarray([[100, 100], [100, 120], [80, 120], [80, 100]],
                          dtype=np.float32)
        out = paste_patch_perspective(frame, patch, alpha, quad)
        np.testing.assert_allclose(out, frame)

    def test_input_frame_not_mutated(self):
        frame = gray_frame(48)
        original = frame.copy()
        patch = np.zeros((3, 8, 8), dtype=np.float32)
        alpha = np.ones((8, 8), dtype=np.float32)
        quad = np.asarray([[40, 10], [40, 30], [20, 28], [20, 12]], dtype=np.float32)
        paste_patch_perspective(frame, patch, alpha, quad)
        np.testing.assert_allclose(frame, original)


class TestPlacement:
    def test_world_size_scales_with_k(self):
        assert patch_world_size(60) == pytest.approx(1.5)
        assert patch_world_size(30) == pytest.approx(0.75)

    def test_world_length_elongated(self):
        assert patch_world_length(60) == pytest.approx(1.5 * DECAL_ELONGATION)

    def test_constant_total_area(self):
        ref = patch_world_size(60, n_patches=4)
        more = patch_world_size(60, n_patches=8, constant_total_area=True)
        assert 8 * more ** 2 == pytest.approx(4 * ref ** 2, rel=1e-6)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            patch_world_size(0)

    @pytest.mark.parametrize("n", [1, 2, 4, 6, 8])
    def test_offsets_count(self, n):
        assert len(placement_offsets(n)) == n

    def test_offsets_alternate_sides(self):
        offsets = placement_offsets(4)
        sides = [np.sign(o.dx) for o in offsets]
        assert sides == [-1, 1, -1, 1]

    def test_offsets_centered_along_road(self):
        offsets = placement_offsets(6)
        assert np.mean([o.dz for o in offsets]) == pytest.approx(0.0)

    def test_zero_patches_rejected(self):
        with pytest.raises(ValueError):
            placement_offsets(0)
