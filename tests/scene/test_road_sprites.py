"""Scene rendering: sprites, scenes, ground truth, rotation."""

import numpy as np
import pytest

from repro.detection.config import CLASS_NAMES
from repro.scene import (
    OBJECT_SIZES,
    Camera,
    RoadScene,
    SceneObject,
    SceneStyle,
    render_scene,
    render_sprite,
    rotate_image,
)
from repro.scene.sprites import GROUND_CLASSES


class TestSprites:
    @pytest.mark.parametrize("name", CLASS_NAMES)
    def test_every_class_renders(self, name, rng):
        rgb, alpha = render_sprite(name, 24, 24, rng)
        assert rgb.shape == (3, 24, 24)
        assert alpha.shape == (24, 24)
        assert alpha.max() == 1.0  # something drawn
        assert ((rgb >= 0) & (rgb <= 1)).all()

    def test_unknown_class_raises(self, rng):
        with pytest.raises(KeyError):
            render_sprite("tank", 24, 24, rng)

    def test_tiny_sprite_clamped_not_crashing(self, rng):
        rgb, alpha = render_sprite("car", 1, 1, rng)
        assert rgb.shape[1] >= 3

    def test_sprites_vary_with_rng(self):
        a, _ = render_sprite("car", 24, 24, np.random.default_rng(1))
        b, _ = render_sprite("car", 24, 24, np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_sprites_deterministic_given_seed(self):
        a, _ = render_sprite("person", 30, 20, np.random.default_rng(9))
        b, _ = render_sprite("person", 30, 20, np.random.default_rng(9))
        np.testing.assert_allclose(a, b)

    def test_ground_classes_registered(self):
        assert GROUND_CLASSES == {"word", "mark"}
        assert set(OBJECT_SIZES) == set(CLASS_NAMES)


class TestRenderScene:
    def make_scene(self, *objects):
        return RoadScene(objects=list(objects), style=SceneStyle())

    def test_image_range_and_shape(self, rng):
        camera = Camera(image_size=64)
        scene = self.make_scene(SceneObject("car", z=8.0))
        image, truth = render_scene(scene, camera, rng)
        assert image.shape == (3, 64, 64)
        assert ((image >= 0) & (image <= 1)).all()

    def test_object_labeled_with_box(self, rng):
        camera = Camera(image_size=96)
        scene = self.make_scene(SceneObject("car", z=7.0))
        _, truth = render_scene(scene, camera, rng)
        assert list(truth.labels) == [CLASS_NAMES.index("car")]
        cx, cy, w, h = truth.boxes_xywh[0]
        assert 0 < cx < 96 and 0 < cy < 96
        assert w > 3 and h > 3

    def test_far_object_unlabeled(self, rng):
        camera = Camera(image_size=64)
        scene = self.make_scene(SceneObject("person", z=200.0))
        _, truth = render_scene(scene, camera, rng)
        assert len(truth.labels) == 0

    def test_too_close_object_skipped(self, rng):
        camera = Camera(image_size=64)
        scene = self.make_scene(SceneObject("car", z=0.5))
        _, truth = render_scene(scene, camera, rng)
        assert len(truth.labels) == 0

    def test_closer_object_bigger(self, rng):
        camera = Camera(image_size=96)
        _, near = render_scene(self.make_scene(SceneObject("car", z=5.0)), camera, rng)
        _, far = render_scene(self.make_scene(SceneObject("car", z=12.0)), camera, rng)
        assert near.boxes_xywh[0, 2] > far.boxes_xywh[0, 2]

    def test_ground_object_foreshortened(self, rng):
        camera = Camera(image_size=96)
        _, truth = render_scene(self.make_scene(SceneObject("mark", z=7.0)), camera, rng)
        cx, cy, w, h = truth.boxes_xywh[0]
        # A 5 m long, 1.6 m wide arrow appears wider than tall at 7 m.
        assert w > 0 and h > 0

    def test_multiple_objects_all_labeled(self, rng):
        camera = Camera(image_size=96)
        scene = self.make_scene(
            SceneObject("car", z=7.0, x=1.2),
            SceneObject("person", z=6.0, x=-2.0),
        )
        _, truth = render_scene(scene, camera, rng)
        assert len(truth.labels) == 2

    def test_lateral_offset_moves_box(self, rng):
        camera = Camera(image_size=96)
        _, left = render_scene(self.make_scene(SceneObject("car", z=8.0, x=-1.5)), camera, rng)
        _, right = render_scene(self.make_scene(SceneObject("car", z=8.0, x=1.5)), camera, rng)
        assert left.boxes_xywh[0, 0] < right.boxes_xywh[0, 0]


class TestRotation:
    def test_rotate_image_preserves_shape_and_range(self, rng):
        image = rng.random((3, 32, 32)).astype(np.float32)
        out = rotate_image(image, 7.0)
        assert out.shape == image.shape
        assert ((out >= 0) & (out <= 1 + 1e-5)).all()

    def test_rotate_zero_identity(self, rng):
        image = rng.random((3, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(rotate_image(image, 0.0), image, atol=1e-5)

    def test_rolled_scene_box_tracks_pixels(self, rng):
        camera = Camera(image_size=96, roll_degrees=8.0)
        scene = RoadScene(objects=[SceneObject("car", z=6.0, x=1.0)])
        image, truth = render_scene(scene, camera, rng)
        assert len(truth.labels) == 1
        cx, cy, w, h = truth.boxes_xywh[0]
        # The box region should contain the car's dark wheels / colored body:
        # verify the region differs from plain asphalt.
        x0, y0 = int(cx - w / 2), int(cy - h / 2)
        x1, y1 = int(cx + w / 2), int(cy + h / 2)
        region = image[:, max(y0, 0):y1, max(x0, 0):x1]
        assert region.std() > 0.03
