"""Scene styles and background rendering properties."""

import numpy as np
import pytest

from repro.scene import Camera, RoadScene, SceneStyle, render_scene


class TestSceneStyle:
    def test_sample_deterministic(self):
        a = SceneStyle.sample(np.random.default_rng(5))
        b = SceneStyle.sample(np.random.default_rng(5))
        assert a.asphalt_shade == b.asphalt_shade
        assert a.lane_half_width == b.lane_half_width

    def test_sample_varies_across_seeds(self):
        shades = {SceneStyle.sample(np.random.default_rng(s)).asphalt_shade
                  for s in range(8)}
        assert len(shades) > 4

    def test_sampled_values_in_range(self):
        for seed in range(10):
            style = SceneStyle.sample(np.random.default_rng(seed))
            assert 0.2 < style.asphalt_shade < 0.5
            assert 1.5 < style.lane_half_width < 2.3
            assert 0.7 < style.illumination < 1.2


class TestBackground:
    @pytest.fixture
    def rendered(self, rng):
        camera = Camera(image_size=96)
        image, _ = render_scene(RoadScene(), camera, rng)
        return camera, image

    def test_sky_above_horizon_is_blueish(self, rendered):
        camera, image = rendered
        horizon = int(camera.horizon_v)
        sky = image[:, : horizon - 2, :]
        # Blue channel dominates red in the sky gradient.
        assert sky[2].mean() > sky[0].mean()

    def test_road_below_horizon_is_gray(self, rendered):
        camera, image = rendered
        horizon = int(camera.horizon_v)
        # Central road region: channels nearly equal (gray asphalt).
        road = image[:, horizon + 5:, 30:66]
        channel_spread = road.mean(axis=(1, 2)).max() - road.mean(axis=(1, 2)).min()
        assert channel_spread < 0.1

    def test_lane_lines_brighter_than_asphalt(self, rendered):
        camera, image = rendered
        horizon = int(camera.horizon_v)
        row = horizon + (96 - horizon) // 2
        line_brightness = image[:, row, :].mean(axis=0).max()
        center_brightness = image[:, row, 44:52].mean()
        assert line_brightness > center_brightness

    def test_style_changes_brightness(self, rng):
        camera = Camera(image_size=64)
        dark, _ = render_scene(
            RoadScene(style=SceneStyle(asphalt_shade=0.26, illumination=0.85)),
            camera, np.random.default_rng(1),
        )
        bright, _ = render_scene(
            RoadScene(style=SceneStyle(asphalt_shade=0.4, illumination=1.1)),
            camera, np.random.default_rng(1),
        )
        horizon = int(camera.horizon_v)
        assert bright[:, horizon:, :].mean() > dark[:, horizon:, :].mean()
