"""Trajectories, video rendering and training-frame sampling."""

import numpy as np
import pytest

from repro.scene import (
    CHALLENGES,
    SPEED_KMH,
    AttackScenario,
    DeployedDecals,
    angle_trajectory,
    challenge_trajectory,
    render_frame,
    render_run,
    rotation_trajectory,
    speed_trajectory,
)
from repro.scene.video import sample_training_frames
from repro.patch import placement_offsets


@pytest.fixture
def scenario():
    return AttackScenario(image_size=96)


class TestTrajectories:
    def test_speed_settings_match_paper(self):
        assert SPEED_KMH == {"slow": 15.0, "normal": 25.0, "fast": 35.0}

    def test_faster_speed_fewer_frames(self):
        slow = speed_trajectory("slow")
        normal = speed_trajectory("normal")
        fast = speed_trajectory("fast")
        assert len(slow) > len(normal) > len(fast)

    def test_speed_distances_decrease(self):
        poses = speed_trajectory("normal")
        distances = [p.distance for p in poses]
        assert distances == sorted(distances, reverse=True)

    def test_rotation_fix_has_no_roll(self):
        assert all(p.roll_degrees == 0 for p in rotation_trajectory("fix"))

    def test_rotation_slight_shakes(self):
        rolls = [p.roll_degrees for p in rotation_trajectory("slight")]
        assert max(abs(r) for r in rolls) > 2.0

    def test_angle_sign_controls_side(self):
        left = angle_trajectory("-15")
        right = angle_trajectory("+15")
        assert left[0].lateral < 0 < right[0].lateral

    def test_angle_zero_centered(self):
        assert all(p.lateral == 0 for p in angle_trajectory("0"))

    def test_unknown_settings_raise(self):
        with pytest.raises(KeyError):
            speed_trajectory("ludicrous")
        with pytest.raises(KeyError):
            rotation_trajectory("wild")
        with pytest.raises(KeyError):
            challenge_trajectory("speed/ludicrous")

    def test_all_eight_challenges_build(self):
        assert len(CHALLENGES) == 8
        for name in CHALLENGES:
            assert len(challenge_trajectory(name)) > 0


class TestRenderFrame:
    def test_frame_has_target_box(self, scenario, rng):
        poses = challenge_trajectory("rotation/fix")
        frame = render_frame(scenario, poses[0], rng)
        assert frame.image.shape == (3, 96, 96)
        assert frame.target_box_xywh is not None

    def test_decals_change_pixels(self, scenario, rng):
        poses = challenge_trajectory("rotation/fix")
        decals = DeployedDecals(
            patch_rgb=np.zeros((3, 16, 16), dtype=np.float32),
            alpha=np.ones((16, 16), dtype=np.float32),
            world_size_m=1.5,
            offsets=placement_offsets(4),
        )
        clean = render_frame(scenario, poses[0], np.random.default_rng(3))
        patched = render_frame(scenario, poses[0], np.random.default_rng(3),
                               decals=decals)
        assert not np.allclose(clean.image, patched.image)

    def test_physical_adds_noise(self, scenario):
        poses = challenge_trajectory("speed/fast")
        clean = render_frame(scenario, poses[0], np.random.default_rng(3))
        degraded = render_frame(scenario, poses[0], np.random.default_rng(3),
                                physical=True)
        assert not np.allclose(clean.image, degraded.image)
        assert ((degraded.image >= 0) & (degraded.image <= 1)).all()

    def test_render_run_length_matches_poses(self, scenario, rng):
        poses = challenge_trajectory("speed/fast")
        frames = render_run(scenario, poses, rng)
        assert len(frames) == len(poses)

    def test_rolled_pose_rotates_frame(self, scenario):
        from repro.scene.trajectory import FramePose

        straight = render_frame(scenario, FramePose(7.0, 0.0, 0.0, 0.0),
                                np.random.default_rng(1))
        rolled = render_frame(scenario, FramePose(7.0, 0.0, 8.0, 0.0),
                              np.random.default_rng(1))
        assert not np.allclose(straight.image, rolled.image)


class TestTrainingFrames:
    def test_counts_and_metadata(self, scenario, rng):
        frames = sample_training_frames(
            scenario, rng, 6, placement_offsets(4), 1.5, consecutive=True
        )
        assert len(frames) == 6
        for frame in frames:
            assert frame.target_box_xywh is not None
            assert len(frame.placements) == 4
            for placement in frame.placements:
                assert placement.size_px > 0
                assert placement.paste_height > 0

    def test_consecutive_runs_decrease_distance(self, scenario, rng):
        frames = sample_training_frames(
            scenario, rng, 6, placement_offsets(2), 1.5,
            consecutive=True, group=3,
        )
        for start in (0, 3):
            run = frames[start:start + 3]
            distances = [f.pose.distance for f in run]
            assert distances == sorted(distances, reverse=True)

    def test_foreshortened_placements(self, scenario, rng):
        frames = sample_training_frames(
            scenario, rng, 2, placement_offsets(2), 1.5, consecutive=False
        )
        for frame in frames:
            for placement in frame.placements:
                # Elongation 3x roughly compensates foreshortening; the
                # apparent height should be within a sane band of the width.
                assert placement.paste_height < 2.5 * placement.size_px

    def test_nonconsecutive_mode_independent_frames(self, scenario):
        frames = sample_training_frames(
            scenario, np.random.default_rng(0), 6, placement_offsets(2), 1.5,
            consecutive=False,
        )
        laterals = {round(f.pose.lateral, 4) for f in frames}
        assert len(laterals) > 1  # independent samples vary laterally
