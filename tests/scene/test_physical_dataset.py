"""Physical degradation model and the synthetic dataset builder."""

import numpy as np
import pytest

from repro.detection.config import CLASS_NAMES
from repro.scene import (
    CaptureModel,
    DatasetConfig,
    PrintModel,
    build_dataset,
    camera_degrade,
    paper_split_sizes,
    print_patch,
)


class TestPrintModel:
    def test_monochrome_nearly_preserved(self, rng):
        black_and_white = np.zeros((3, 8, 8), dtype=np.float32)
        black_and_white[:, :, 4:] = 1.0
        printed = print_patch(black_and_white, rng)
        # Black stays dark, white stays bright, contrast mostly intact.
        assert printed[:, :, :4].mean() < 0.15
        assert printed[:, :, 4:].mean() > 0.75

    def test_saturated_color_heavily_distorted(self, rng):
        red = np.zeros((3, 8, 8), dtype=np.float32)
        red[0] = 1.0
        printed = print_patch(red, rng)
        error_red = np.abs(printed - red).mean()
        gray = np.full((3, 8, 8), 0.5, dtype=np.float32)
        error_gray = np.abs(print_patch(gray, rng) - gray).mean()
        assert error_red > 2 * error_gray

    def test_output_in_gamut(self, rng):
        noise = rng.random((3, 16, 16)).astype(np.float32)
        printed = print_patch(noise, rng)
        model = PrintModel()
        assert printed.min() >= model.gamut_low - 1e-5
        assert printed.max() <= model.gamut_high + 1e-5

    def test_grayscale_input_broadcast(self, rng):
        gray = rng.random((1, 8, 8)).astype(np.float32)
        assert print_patch(gray, rng).shape == (3, 8, 8)

    def test_print_is_stochastic_across_prints(self):
        patch = np.random.default_rng(0).random((3, 8, 8)).astype(np.float32)
        a = print_patch(patch, np.random.default_rng(1))
        b = print_patch(patch, np.random.default_rng(2))
        assert not np.allclose(a, b)


class TestCaptureModel:
    def test_output_valid_range(self, rng):
        frame = rng.random((3, 48, 48)).astype(np.float32)
        out = camera_degrade(frame, rng, speed_kmh=25.0)
        assert out.shape == frame.shape
        assert ((out >= 0) & (out <= 1)).all()

    def test_speed_increases_blur(self):
        # A sharp edge loses more contrast at higher speeds.
        frame = np.zeros((3, 48, 48), dtype=np.float32)
        frame[:, 24:, :] = 1.0
        model = CaptureModel(illumination_amplitude=0.0, shadow_probability=0.0,
                             noise_sigma=0.0, defocus_sigma=0.0)

        def edge_sharpness(speed):
            out = camera_degrade(frame, np.random.default_rng(0),
                                 speed_kmh=speed, model=model)
            return np.abs(np.diff(out[0, :, 24])).max()

        assert edge_sharpness(35.0) < edge_sharpness(0.0)

    def test_input_not_mutated(self, rng):
        frame = rng.random((3, 32, 32)).astype(np.float32)
        original = frame.copy()
        camera_degrade(frame, rng, speed_kmh=15.0)
        np.testing.assert_allclose(frame, original)


class TestDataset:
    def test_paper_split_sizes(self):
        assert paper_split_sizes() == (1000, 71)

    def test_requested_count_returned(self):
        samples = build_dataset(12, DatasetConfig(image_size=64, seed=3))
        assert len(samples) == 12

    def test_every_sample_labeled(self):
        samples = build_dataset(10, DatasetConfig(image_size=64, seed=4))
        for image, truth in samples:
            assert image.shape == (3, 64, 64)
            assert len(truth.labels) >= 1
            assert ((image >= 0) & (image <= 1)).all()

    def test_class_balance_covers_all_classes(self):
        samples = build_dataset(25, DatasetConfig(image_size=64, seed=5))
        seen = set()
        for _, truth in samples:
            seen.update(int(l) for l in truth.labels)
        assert seen == set(range(len(CLASS_NAMES)))

    def test_deterministic_given_seed(self):
        a = build_dataset(3, DatasetConfig(image_size=64, seed=9))
        b = build_dataset(3, DatasetConfig(image_size=64, seed=9))
        for (img_a, t_a), (img_b, t_b) in zip(a, b):
            np.testing.assert_allclose(img_a, img_b)
            np.testing.assert_allclose(t_a.boxes_xywh, t_b.boxes_xywh)

    def test_different_seeds_differ(self):
        a = build_dataset(3, DatasetConfig(image_size=64, seed=1))
        b = build_dataset(3, DatasetConfig(image_size=64, seed=2))
        assert any(
            not np.allclose(img_a, img_b) for (img_a, _), (img_b, _) in zip(a, b)
        )

    def test_boxes_inside_image(self):
        samples = build_dataset(10, DatasetConfig(image_size=64, seed=6))
        for _, truth in samples:
            for cx, cy, w, h in truth.boxes_xywh:
                assert 0 <= cx <= 64 and 0 <= cy <= 64
                assert w > 0 and h > 0
