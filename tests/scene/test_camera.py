"""Pinhole camera geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scene import Camera


@pytest.fixture
def camera():
    return Camera(image_size=96)


class TestProjection:
    def test_center_of_road_projects_to_center_column(self, camera):
        v, u = camera.project_ground(10.0, 0.0)
        assert u == pytest.approx(48.0)

    def test_closer_points_lower_in_image(self, camera):
        v_near, _ = camera.project_ground(4.0, 0.0)
        v_far, _ = camera.project_ground(20.0, 0.0)
        assert v_near > v_far

    def test_far_points_approach_horizon(self, camera):
        v, _ = camera.project_ground(1000.0, 0.0)
        assert v == pytest.approx(camera.horizon_v, abs=0.5)

    def test_right_offset_projects_right(self, camera):
        _, u_left = camera.project_ground(8.0, -1.0)
        _, u_right = camera.project_ground(8.0, 1.0)
        assert u_right > camera.center_u > u_left

    def test_behind_camera_raises(self, camera):
        with pytest.raises(ValueError):
            camera.project_ground(-1.0, 0.0)

    @given(z=st.floats(min_value=2.0, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_apparent_size_inverse_in_distance(self, z):
        camera = Camera(image_size=96)
        near = camera.vertical_extent(z, 2.0)
        far = camera.vertical_extent(2 * z, 2.0)
        assert near == pytest.approx(2 * far, rel=1e-6)

    def test_horizontal_extent_matches_vertical_at_same_distance(self, camera):
        assert camera.horizontal_extent(7.0, 1.0) == pytest.approx(
            camera.vertical_extent(7.0, 1.0)
        )


class TestGroundQuad:
    def test_quad_order_and_foreshortening(self, camera):
        quad = camera.ground_patch_quad(8.0, 0.0, 1.5)
        # Near edge (rows 0, 1) lower in image than far edge (rows 2, 3).
        assert quad[0, 0] > quad[2, 0]
        # Near edge wider than far edge.
        near_width = abs(quad[1, 1] - quad[0, 1])
        far_width = abs(quad[2, 1] - quad[3, 1])
        assert near_width > far_width

    def test_elongated_quad_taller(self, camera):
        square = camera.ground_patch_quad(8.0, 0.0, 1.5)
        elongated = camera.ground_patch_quad(8.0, 0.0, 1.5, length_m=4.5)
        height_sq = square[0, 0] - square[3, 0]
        height_el = elongated[0, 0] - elongated[3, 0]
        assert height_el > 2 * height_sq


class TestRoll:
    def test_zero_roll_is_identity(self, camera):
        v0, u0 = camera.project_ground(8.0, 0.5)
        v1, u1 = camera.with_roll(0.0).project_ground(8.0, 0.5)
        assert (v0, u0) == (v1, u1)

    def test_roll_moves_offcenter_points(self, camera):
        rolled = camera.with_roll(10.0)
        v0, u0 = camera.project_ground(8.0, 1.0)
        v1, u1 = rolled.project_ground(8.0, 1.0)
        assert (v0, u0) != (v1, u1)

    def test_roll_preserves_distance_from_center(self, camera):
        rolled = camera.with_roll(25.0)
        center = camera.image_size / 2
        v0, u0 = camera.project_ground(8.0, 1.0)
        v1, u1 = rolled.project_ground(8.0, 1.0)
        r0 = np.hypot(v0 - center, u0 - center)
        r1 = np.hypot(v1 - center, u1 - center)
        assert r0 == pytest.approx(r1, rel=1e-6)

    def test_with_roll_preserves_other_attributes(self, camera):
        rolled = camera.with_roll(5.0)
        assert rolled.image_size == camera.image_size
        assert rolled.height == camera.height
        assert rolled.roll_degrees == 5.0
