"""Regression tests for decal projection geometry edge cases."""

import numpy as np
import pytest

from repro.patch import DECAL_ELONGATION, placement_offsets
from repro.scene import AttackScenario, DeployedDecals, render_frame
from repro.scene.trajectory import FramePose
from repro.scene.video import _decal_placements


@pytest.fixture
def decals():
    return DeployedDecals(
        patch_rgb=np.zeros((3, 16, 16), dtype=np.float32),
        alpha=np.ones((16, 16), dtype=np.float32),
        world_size_m=2.0,  # elongated to 6 m along the road
        offsets=placement_offsets(4),
    )


class TestNearEdgeGuard:
    def test_decal_passing_under_camera_skipped(self, decals):
        """A decal whose near edge is behind the camera must be skipped,
        not crash the projection (regression: ValueError at z<0)."""
        scenario = AttackScenario(image_size=96)
        pose = FramePose(distance=3.0, lateral=0.0, roll_degrees=0.0,
                         speed_kmh=15.0)
        frame = render_frame(scenario, pose, np.random.default_rng(0),
                             decals=decals)
        assert frame.image.shape == (3, 96, 96)

    def test_training_placements_guarded_too(self):
        from repro.scene import Camera

        camera = Camera(image_size=96)
        pose = FramePose(distance=3.0, lateral=0.0, roll_degrees=0.0,
                         speed_kmh=15.0)
        placements = _decal_placements(camera, pose, placement_offsets(4), 2.0)
        # Some decals survive (the far row), none crash.
        assert all(p.size_px > 0 for p in placements)

    def test_all_decals_visible_at_safe_distance(self, decals):
        scenario = AttackScenario(image_size=96)
        pose = FramePose(distance=10.0, lateral=0.0, roll_degrees=0.0,
                         speed_kmh=15.0)
        clean = render_frame(scenario, pose, np.random.default_rng(1))
        attacked = render_frame(scenario, pose, np.random.default_rng(1),
                                decals=decals)
        changed = np.abs(clean.image - attacked.image).sum()
        assert changed > 1.0  # decals visibly composited


class TestElongation:
    def test_projected_footprint_taller_with_elongation(self):
        from repro.scene import Camera

        camera = Camera(image_size=96)
        pose = FramePose(distance=8.0, lateral=0.0, roll_degrees=0.0,
                         speed_kmh=0.0)
        placements = _decal_placements(camera, pose, placement_offsets(2), 1.5)
        for placement in placements:
            # With 3x elongation the apparent aspect is near-square rather
            # than the ~5:1 sliver a square decal would project to.
            ratio = placement.paste_height / placement.size_px
            assert 0.2 < ratio < 2.0

    def test_elongation_constant_exported(self):
        assert DECAL_ELONGATION == pytest.approx(3.0)
