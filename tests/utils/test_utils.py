"""Utilities: RNG derivation, image I/O, drawing, logging, timers."""

import io
import time

import numpy as np
import pytest

from repro.utils import (
    Budget,
    Stopwatch,
    TrainLog,
    ascii_preview,
    circle_mask,
    derive_seed,
    draw_line,
    fill_circle,
    fill_polygon,
    fill_rect,
    from_uint8,
    load_image,
    make_rng,
    polygon_mask,
    regular_polygon_points,
    save_image,
    spawn_rngs,
    star_points,
    to_uint8,
)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_derive_seed_varies_with_labels(self):
        seeds = {derive_seed(42, label) for label in ("a", "b", "c", "d")}
        assert len(seeds) == 4

    def test_derive_seed_varies_with_parent(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3)
        values = [rng.random() for rng in rngs]
        assert len(set(values)) == 3

    def test_make_rng_reproducible(self):
        assert make_rng(5).random() == make_rng(5).random()


class TestImageIO:
    def test_uint8_roundtrip(self, rng):
        image = rng.random((3, 8, 8)).astype(np.float32)
        back = from_uint8(to_uint8(image))
        np.testing.assert_allclose(back, image, atol=1 / 255)

    def test_to_uint8_clips(self):
        image = np.asarray([[[1.5]], [[-0.5]], [[0.5]]], dtype=np.float32)
        pixels = to_uint8(image)
        assert pixels[0, 0, 0] == 255
        assert pixels[0, 0, 1] == 0

    def test_ppm_roundtrip(self, tmp_path, rng):
        image = rng.random((3, 10, 12)).astype(np.float32)
        path = str(tmp_path / "image.ppm")
        save_image(image, path)
        back = load_image(path)
        np.testing.assert_allclose(back, image, atol=1 / 255)

    def test_pgm_roundtrip(self, tmp_path, rng):
        image = rng.random((1, 6, 7)).astype(np.float32)
        path = str(tmp_path / "image.pgm")
        save_image(image, path)
        back = load_image(path)
        np.testing.assert_allclose(back, image, atol=1 / 255)

    def test_bad_channel_count_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_image(np.zeros((2, 4, 4), dtype=np.float32),
                       str(tmp_path / "x.ppm"))

    def test_ascii_preview_dimensions(self, rng):
        art = ascii_preview(rng.random((3, 32, 64)).astype(np.float32), width=32)
        lines = art.splitlines()
        assert len(lines[0]) == 32
        assert len(lines) >= 1


class TestDrawing:
    def canvas(self):
        return np.zeros((3, 20, 20), dtype=np.float32)

    def test_fill_rect(self):
        img = self.canvas()
        fill_rect(img, 2, 3, 6, 8, (1.0, 0.5, 0.0))
        assert img[0, 3, 4] == 1.0
        assert img[1, 3, 4] == 0.5
        assert img[0, 0, 0] == 0.0

    def test_fill_rect_clips_to_canvas(self):
        img = self.canvas()
        fill_rect(img, -5, -5, 50, 50, 1.0)
        assert (img == 1.0).all()

    def test_fill_circle(self):
        img = self.canvas()
        fill_circle(img, 10, 10, 4, 1.0)
        assert img[0, 10, 10] == 1.0
        assert img[0, 0, 0] == 0.0

    def test_circle_mask_area_reasonable(self):
        mask = circle_mask((40, 40), 20, 20, 10)
        area = mask.sum()
        assert area == pytest.approx(np.pi * 100, rel=0.1)

    def test_polygon_mask_square(self):
        mask = polygon_mask((20, 20), [(5, 5), (5, 15), (15, 15), (15, 5)])
        assert mask[10, 10]
        assert not mask[2, 2]
        assert mask.sum() == pytest.approx(100, rel=0.15)

    def test_fill_polygon_triangle(self):
        img = self.canvas()
        fill_polygon(img, [(2, 10), (18, 2), (18, 18)], 1.0)
        assert img[0, 15, 10] == 1.0

    def test_draw_line_thickness(self):
        img = self.canvas()
        draw_line(img, 10, 2, 10, 18, 1.0, thickness=3.0)
        assert img[0, 10, 10] == 1.0
        assert img[0, 2, 10] == 0.0

    def test_star_points_count(self):
        points = star_points(10, 10, 8, 4, spikes=5)
        assert len(points) == 10

    def test_regular_polygon_points(self):
        points = regular_polygon_points(10, 10, 5, 6)
        assert len(points) == 6
        radii = [np.hypot(y - 10, x - 10) for y, x in points]
        np.testing.assert_allclose(radii, 5.0, rtol=1e-6)

    def test_color_size_mismatch_raises(self):
        img = self.canvas()
        with pytest.raises(ValueError):
            fill_rect(img, 0, 0, 5, 5, (1.0, 0.5))


class TestLoggingTimers:
    def test_trainlog_records_and_series(self):
        log = TrainLog("test")
        log.log(0, loss=1.0)
        log.log(1, loss=0.5, extra=2.0)
        assert log.series("loss") == [1.0, 0.5]
        assert log.last("extra") == 2.0

    def test_trainlog_last_default(self):
        log = TrainLog("test")
        assert np.isnan(log.last("missing"))

    def test_trainlog_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = TrainLog("round")
        log.log(0, loss=1.0)
        log.log(1, loss=0.5, extra=2.0)
        log.event(1, "divergence_recovery", reason="non-finite", attempt=1)
        log.to_jsonl(path)

        restored = TrainLog.from_jsonl(path)
        assert restored.name == "round"
        assert restored.series("loss") == [1.0, 0.5]
        assert restored.last("extra") == 2.0
        events = restored.events_of("divergence_recovery")
        assert len(events) == 1
        assert events[0]["reason"] == "non-finite"
        assert events[0]["attempt"] == 1
        assert events[0]["step"] == 1

    def test_trainlog_jsonl_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"type": "meta", "schema_version": 999}\n')
        with pytest.raises(ValueError, match="schema_version"):
            TrainLog.from_jsonl(str(path))

    def test_trainlog_echo_flushes_every_line(self):
        class FlushCounter(io.StringIO):
            def __init__(self):
                super().__init__()
                self.flushes = 0

            def flush(self):
                self.flushes += 1
                super().flush()

        stream = FlushCounter()
        log = TrainLog("echo", echo=True, stream=stream)
        log.log(0, loss=1.0)
        log.event(0, "checkpoint_restore")
        # One flush per write: a SIGKILLed run keeps every echoed line.
        assert stream.flushes == 2
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "loss=1" in lines[0]
        assert "!checkpoint_restore" in lines[1]

    def test_trainlog_echo_survives_closed_stream(self):
        stream = io.StringIO()
        log = TrainLog("echo", echo=True, stream=stream)
        log.log(0, loss=1.0)
        stream.close()  # flush on a closed stream must not raise

        class NoFlushWrite(io.StringIO):
            def flush(self):
                raise ValueError("closed")

        log.stream = NoFlushWrite()
        log.log(1, loss=0.5)  # write ok, flush failure swallowed
        assert log.series("loss") == [1.0, 0.5]

    def test_stopwatch_monotonic(self):
        watch = Stopwatch()
        first = watch.lap()
        second = watch.lap()
        assert first >= 0 and second >= 0
        assert watch.total() >= first

    def test_budget_unlimited(self):
        budget = Budget(None)
        assert not budget.exhausted()
        assert budget.remaining() == float("inf")

    def test_budget_expires(self):
        budget = Budget(0.0)
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    def test_budget_clock_starts_at_first_poll_not_construction(self):
        budget = Budget(0.02)
        assert not budget.started
        time.sleep(0.05)  # setup work the budget must not count
        assert not budget.exhausted()  # first poll starts the clock
        assert budget.started
        time.sleep(0.05)
        assert budget.exhausted()

    def test_budget_explicit_start_counts_from_there(self):
        budget = Budget(0.02).start()
        assert budget.started
        time.sleep(0.05)
        assert budget.exhausted()

    def test_budget_start_is_idempotent(self):
        budget = Budget(10.0)
        assert budget.elapsed() == 0.0
        assert budget.start() is budget
        time.sleep(0.02)
        budget.start()  # must not rewind the clock
        assert budget.elapsed() >= 0.02

    def test_unlimited_budget_never_starts_clock(self):
        budget = Budget(None)
        assert not budget.exhausted()
        assert budget.remaining() == float("inf")
        assert not budget.started
