"""Shared test fixtures and numerical-gradient helpers."""

from __future__ import annotations

import numpy as np
import pytest


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array, dtype=np.float64)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = fn()
        array[index] = original - eps
        lower = fn()
        array[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        iterator.iternext()
    return grad.astype(np.float32)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def numgrad():
    return numerical_gradient
