"""Failure injection: the pipeline fails loudly, not silently.

DESIGN.md §6 promises NaN guards and graceful handling of degenerate
inputs; these tests inject the failures and verify the behaviour.
"""

import numpy as np
import pytest

from repro.attack import AttackConfig, train_patch_attack
from repro.detection import (
    DetectorTrainConfig,
    GroundTruth,
    TinyYolo,
    detections_from_outputs,
    reduced_config,
    train_detector,
    yolo_loss,
)
from repro.nn import Tensor, no_grad
from repro.scene import AttackScenario, DatasetConfig, build_dataset


class TestNanGuards:
    def test_detector_training_raises_on_nan_weights(self):
        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)
        model.conv1.conv.weight.data[0, 0, 0, 0] = np.nan
        samples = build_dataset(4, DatasetConfig(image_size=64, seed=41))
        with pytest.raises(FloatingPointError):
            train_detector(model, samples,
                           DetectorTrainConfig(epochs=1, batch_size=4))

    def test_attack_training_raises_on_nan_detector(self):
        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)
        model.head_fine.weight.data[0, 0, 0, 0] = np.nan
        scenario = AttackScenario(image_size=64)
        config = AttackConfig(steps=2, warmup_steps=0, batch_frames=6,
                              frame_pool=6, gan_batch=4, k=20)
        with pytest.raises(FloatingPointError):
            train_patch_attack(model, scenario, config)


class TestDegenerateInputs:
    @pytest.fixture(scope="class")
    def model(self):
        return TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)

    def test_all_background_batch_trains(self, model):
        images = np.zeros((2, 3, 64, 64), dtype=np.float32)
        truths = [GroundTruth(np.zeros((0, 4)), np.zeros(0, dtype=int))] * 2
        result = yolo_loss(model(Tensor(images)), truths, model.config)
        model.zero_grad()
        result.total.backward()  # must not crash with zero positives
        assert np.isfinite(result.total.data)

    def test_degenerate_boxes_do_not_poison_loss(self, model):
        images = np.zeros((1, 3, 64, 64), dtype=np.float32)
        truths = [GroundTruth(np.asarray([[10.0, 10.0, 0.0, 0.0]]),
                              np.asarray([0]))]
        result = yolo_loss(model(Tensor(images)), truths, model.config)
        assert np.isfinite(result.total.data)

    def test_saturated_input_image(self, model):
        images = np.ones((1, 3, 64, 64), dtype=np.float32) * 255.0  # out of range
        with no_grad():
            outputs = model(Tensor(images))
        detections = detections_from_outputs(outputs, model.config)
        assert isinstance(detections[0], list)  # finite path, no crash

    def test_empty_detection_list_through_eval(self):
        from repro.eval import classify_frame, score_video

        outcome = classify_frame([], np.asarray([10.0, 10.0, 5.0, 5.0]))
        assert outcome.predicted_class is None
        result = score_video([outcome], target_label=1)
        assert result.pwc == 0.0
        assert not result.cwc


class TestFullScaleConstruction:
    def test_paper_scale_forward_pass(self):
        """The paper's full 416² width-1.0 network is constructible and
        produces correctly shaped heads (one forward pass only)."""
        model = TinyYolo(reduced_config(input_size=416, width_multiplier=1.0),
                         seed=0)
        with no_grad():
            coarse, fine = model(Tensor(np.zeros((1, 3, 416, 416),
                                                 dtype=np.float32)))
        assert coarse.shape == (1, 30, 13, 13)
        assert fine.shape == (1, 30, 26, 26)
