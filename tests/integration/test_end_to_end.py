"""End-to-end integration at smoke scale.

These tests exercise the whole pipeline — dataset → detector → attack →
evaluation — with tiny budgets. They verify wiring, not attack quality
(quality is the benchmarks' job).
"""

import numpy as np
import pytest

from repro.attack import AttackConfig, train_patch_attack, train_sava_baseline
from repro.detection import (
    DetectorTrainConfig,
    TinyYolo,
    detections_from_outputs,
    reduced_config,
    train_detector,
)
from repro.eval import evaluate_challenges, run_challenge
from repro.nn import Tensor, no_grad
from repro.scene import AttackScenario, DatasetConfig, build_dataset


@pytest.fixture(scope="module")
def tiny_detector():
    """A minimally trained detector shared by the integration tests."""
    config = reduced_config(input_size=64, width_multiplier=0.25)
    model = TinyYolo(config, seed=0)
    samples = build_dataset(24, DatasetConfig(image_size=64, seed=11))
    train_detector(model, samples,
                   DetectorTrainConfig(epochs=4, batch_size=8, seed=0))
    return model


@pytest.fixture(scope="module")
def scenario():
    return AttackScenario(image_size=64)


def tiny_attack_config(**overrides):
    base = dict(steps=4, warmup_steps=2, batch_frames=6, frame_pool=12,
                gan_batch=6, k=20)
    base.update(overrides)
    return AttackConfig(**base)


class TestDetectorPipeline:
    def test_training_reduces_loss(self, tiny_detector):
        # Fixture already trained; retrain two more epochs and compare logs.
        samples = build_dataset(8, DatasetConfig(image_size=64, seed=12))
        log = train_detector(
            tiny_detector, samples,
            DetectorTrainConfig(epochs=2, batch_size=8, seed=1, log_every=1),
        )
        losses = log.series("loss")
        assert len(losses) >= 2
        assert all(np.isfinite(l) for l in losses)

    def test_inference_runs_after_training(self, tiny_detector):
        image = build_dataset(1, DatasetConfig(image_size=64, seed=13))[0][0]
        with no_grad():
            outputs = tiny_detector(Tensor(image[None]))
        detections = detections_from_outputs(outputs, tiny_detector.config,
                                             conf_threshold=0.05)
        assert isinstance(detections[0], list)


class TestAttackPipeline:
    def test_attack_trains_and_deploys(self, tiny_detector, scenario):
        result = train_patch_attack(tiny_detector, scenario, tiny_attack_config())
        assert result.patch.shape == (1, 20, 20)
        assert result.alpha.shape == (20, 20)
        assert ((result.patch >= 0) & (result.patch <= 1)).all()
        decals = result.deploy(physical=False)
        assert decals.patch_rgb.shape == (3, 20, 20)
        assert len(decals.offsets) == result.config.n_patches

    def test_attack_leaves_detector_unchanged(self, tiny_detector, scenario):
        before = {name: p.data.copy() for name, p in tiny_detector.named_parameters()}
        train_patch_attack(tiny_detector, scenario, tiny_attack_config(seed=5))
        for name, p in tiny_detector.named_parameters():
            np.testing.assert_allclose(p.data, before[name])

    def test_attack_restores_requires_grad(self, tiny_detector, scenario):
        train_patch_attack(tiny_detector, scenario, tiny_attack_config(seed=6))
        assert all(p.requires_grad for p in tiny_detector.parameters())

    def test_scenario_mismatch_rejected(self, tiny_detector):
        wrong = AttackScenario(image_size=64, target_class="car")
        with pytest.raises(ValueError):
            train_patch_attack(tiny_detector, wrong, tiny_attack_config())

    def test_baseline_trains(self, tiny_detector, scenario):
        result = train_sava_baseline(
            tiny_detector, scenario,
            tiny_attack_config(consecutive=False),
        )
        assert result.patch_rgb.shape == (3, 20, 20)
        # Colored patch: channels should differ somewhere.
        assert result.patch_rgb.std(axis=0).max() > 1e-4


class TestEvaluationPipeline:
    def test_run_challenge_returns_sane_result(self, tiny_detector, scenario):
        result = run_challenge(tiny_detector, scenario, "speed/fast",
                               artifact=None, n_runs=1)
        assert 0.0 <= result.pwc <= 100.0
        assert isinstance(result.cwc, bool)
        assert len(result.runs) == 1

    def test_evaluate_challenges_covers_requested(self, tiny_detector, scenario):
        results = evaluate_challenges(
            tiny_detector, scenario, challenges=("rotation/fix", "angle/0"),
            n_runs=1,
        )
        assert set(results) == {"rotation/fix", "angle/0"}

    def test_physical_evaluation_runs(self, tiny_detector, scenario):
        result = run_challenge(tiny_detector, scenario, "speed/fast",
                               artifact=None, physical=True, n_runs=1)
        assert 0.0 <= result.pwc <= 100.0

    def test_unknown_challenge_rejected(self, tiny_detector, scenario):
        with pytest.raises(KeyError):
            run_challenge(tiny_detector, scenario, "speed/warp", n_runs=1)

    def test_cell_formatting(self, tiny_detector, scenario):
        result = run_challenge(tiny_detector, scenario, "rotation/fix", n_runs=1)
        cell = result.cell()
        assert "%" in cell and "/" in cell
