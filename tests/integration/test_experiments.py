"""The Workbench harness: caching, profiles, reproducibility."""

import os

import numpy as np
import pytest

from repro.experiments import Workbench, WorkbenchProfile


@pytest.fixture()
def bench(tmp_path):
    profile = WorkbenchProfile(
        name="unit",
        image_size=64,
        width_multiplier=0.25,
        train_images=20,
        test_images=5,
        detector_epochs=2,
        detector_batch=8,
        attack_steps=3,
        attack_warmup=1,
        attack_batch_frames=6,
        frame_pool=12,
        eval_runs=1,
    )
    return Workbench(profile, seed=0, cache_dir=str(tmp_path))


class TestProfiles:
    def test_paper_profile_matches_paper_constants(self):
        profile = WorkbenchProfile.paper_scale()
        assert profile.image_size == 416
        assert profile.width_multiplier == 1.0
        assert profile.train_images == 1000
        assert profile.test_images == 71
        assert profile.attack_batch_frames == 18
        assert profile.attack_steps == 800

    def test_paper_scale_detector_constructible(self):
        bench = Workbench.paper_scale(cache_dir="/tmp/unused-cache")
        # Building the dataset for anchors would be slow; use defaults.
        bench._anchors = tuple([(10, 14), (23, 27), (37, 58),
                                (81, 82), (135, 169), (344, 319)])
        config = bench.detector_config()
        assert config.input_size == 416


class TestWorkbench:
    def test_dataset_sizes(self, bench):
        assert len(bench.train_samples()) == 20
        assert len(bench.test_samples()) == 5

    def test_fitted_anchors_sorted_by_area(self, bench):
        anchors = bench.fitted_anchors()
        areas = [w * h for w, h in anchors]
        assert areas == sorted(areas)
        assert len(anchors) == 6

    def test_detector_cached_to_disk(self, bench):
        model = bench.detector()
        cache_files = os.listdir(bench.cache_dir)
        assert any(f.startswith("detector_") for f in cache_files)
        # Second call returns the in-memory instance.
        assert bench.detector() is model

    def test_detector_reload_reproduces_weights(self, bench, tmp_path):
        model = bench.detector()
        fresh = Workbench(bench.profile, seed=0, cache_dir=str(tmp_path))
        reloaded = fresh.detector()
        for (name_a, a), (name_b, b) in zip(
            model.named_parameters(), reloaded.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(a.data, b.data)

    def test_attack_artifact_cached(self, bench):
        bench.detector()
        first = bench.train_attack()
        cache_files = [f for f in os.listdir(bench.cache_dir) if f.startswith("attack_")]
        assert cache_files
        second = bench.train_attack()  # loads from cache
        np.testing.assert_allclose(first.patch, second.patch)

    def test_attack_config_profile_scaling(self, bench):
        config = bench.attack_config()
        assert config.steps == bench.profile.attack_steps
        assert config.batch_frames == bench.profile.attack_batch_frames

    def test_attack_config_overrides(self, bench):
        config = bench.attack_config(n_patches=6, k=20)
        assert config.n_patches == 6
        assert config.k == 20

    def test_evaluate_without_artifact(self, bench):
        bench.detector()
        results = bench.evaluate(None, challenges=("speed/fast",),
                                 physical=False, n_runs=1)
        assert "speed/fast" in results

    def test_evaluate_uses_artifact_target_class(self, bench):
        bench.detector()
        attack = bench.train_attack(bench.attack_config(target_class="person", k=20))
        results = bench.evaluate(attack, challenges=("speed/fast",), n_runs=1)
        assert "speed/fast" in results
