"""Non-maximum suppression behaviour."""

import numpy as np
import pytest

from repro.detection import non_max_suppression, non_max_suppression_reference
from repro.detection import nms as nms_module


def boxes_of(*rows):
    return np.asarray(rows, dtype=np.float32)


class TestNms:
    def test_keeps_highest_score_of_overlapping_pair(self):
        boxes = boxes_of([0, 0, 10, 10], [1, 1, 11, 11])
        kept = non_max_suppression(boxes, np.asarray([0.5, 0.9]), iou_threshold=0.5)
        assert kept == [1]

    def test_keeps_disjoint_boxes(self):
        boxes = boxes_of([0, 0, 10, 10], [20, 20, 30, 30])
        kept = non_max_suppression(boxes, np.asarray([0.9, 0.5]))
        assert sorted(kept) == [0, 1]

    def test_different_classes_not_suppressed(self):
        boxes = boxes_of([0, 0, 10, 10], [0, 0, 10, 10])
        kept = non_max_suppression(
            boxes, np.asarray([0.9, 0.8]), class_ids=np.asarray([0, 1])
        )
        assert sorted(kept) == [0, 1]

    def test_same_class_suppressed(self):
        boxes = boxes_of([0, 0, 10, 10], [0, 0, 10, 10])
        kept = non_max_suppression(
            boxes, np.asarray([0.9, 0.8]), class_ids=np.asarray([0, 0])
        )
        assert kept == [0]

    def test_max_detections_cap(self):
        boxes = np.stack(
            [np.asarray([i * 20, 0, i * 20 + 10, 10], dtype=np.float32) for i in range(10)]
        )
        kept = non_max_suppression(boxes, np.linspace(1, 0.1, 10), max_detections=3)
        assert len(kept) == 3

    def test_results_ordered_by_score(self):
        boxes = boxes_of([0, 0, 5, 5], [20, 20, 25, 25], [40, 40, 45, 45])
        scores = np.asarray([0.2, 0.9, 0.5])
        kept = non_max_suppression(boxes, scores)
        assert kept == [1, 2, 0]

    def test_empty_input(self):
        assert non_max_suppression(np.zeros((0, 4)), np.zeros(0)) == []

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            non_max_suppression(np.zeros((2, 4)), np.zeros(3))

    def test_chain_suppression_is_greedy(self):
        # b overlaps a, c overlaps b but not a: greedy keeps a and c.
        boxes = boxes_of([0, 0, 10, 10], [6, 0, 16, 10], [12, 0, 22, 10])
        kept = non_max_suppression(boxes, np.asarray([0.9, 0.8, 0.7]),
                                   iou_threshold=0.2)
        assert kept == [0, 2]


def random_candidates(rng, n, n_classes=3, span=40.0):
    """Dense random boxes with plenty of cross-box overlap."""
    xy = rng.random((n, 2)).astype(np.float32) * span
    wh = (rng.random((n, 2)).astype(np.float32) * 15 + 1).astype(np.float32)
    boxes = np.concatenate([xy, xy + wh], axis=1)
    scores = rng.random(n).astype(np.float32)
    class_ids = rng.integers(0, n_classes, size=n)
    return boxes, scores, class_ids


@pytest.mark.perf
class TestVectorizedParity:
    """The vectorized production NMS must return exactly the indices of
    the O(n²) pair-loop reference, in the same order."""

    def test_randomized_inputs(self, rng):
        for trial in range(25):
            n = int(rng.integers(0, 120))
            boxes, scores, class_ids = random_candidates(rng, n)
            for threshold in (0.1, 0.45, 0.9):
                kept = non_max_suppression(boxes, scores, class_ids,
                                           iou_threshold=threshold)
                oracle = non_max_suppression_reference(
                    boxes, scores, class_ids, iou_threshold=threshold)
                assert kept == oracle

    def test_class_agnostic_parity(self, rng):
        boxes, scores, _ = random_candidates(rng, 80)
        assert (non_max_suppression(boxes, scores)
                == non_max_suppression_reference(boxes, scores))

    def test_tie_heavy_scores(self, rng):
        """Quantized scores force ties; the stable sort must break them
        identically in both implementations."""
        for _ in range(10):
            boxes, scores, class_ids = random_candidates(rng, 60)
            scores = np.round(scores * 4) / 4  # only 5 distinct values
            kept = non_max_suppression(boxes, scores, class_ids)
            oracle = non_max_suppression_reference(boxes, scores, class_ids)
            assert kept == oracle

    def test_max_detections_parity(self, rng):
        boxes, scores, class_ids = random_candidates(rng, 100)
        for cap in (1, 5, 17):
            assert (non_max_suppression(boxes, scores, class_ids,
                                        max_detections=cap)
                    == non_max_suppression_reference(boxes, scores, class_ids,
                                                     max_detections=cap))

    def test_row_fallback_path_parity(self, rng, monkeypatch):
        """Above _FULL_MATRIX_LIMIT the per-row branch runs; shrink the
        limit so the test exercises it cheaply."""
        monkeypatch.setattr(nms_module, "_FULL_MATRIX_LIMIT", 4)
        boxes, scores, class_ids = random_candidates(rng, 50)
        assert (non_max_suppression(boxes, scores, class_ids)
                == non_max_suppression_reference(boxes, scores, class_ids))
