"""Non-maximum suppression behaviour."""

import numpy as np
import pytest

from repro.detection import non_max_suppression


def boxes_of(*rows):
    return np.asarray(rows, dtype=np.float32)


class TestNms:
    def test_keeps_highest_score_of_overlapping_pair(self):
        boxes = boxes_of([0, 0, 10, 10], [1, 1, 11, 11])
        kept = non_max_suppression(boxes, np.asarray([0.5, 0.9]), iou_threshold=0.5)
        assert kept == [1]

    def test_keeps_disjoint_boxes(self):
        boxes = boxes_of([0, 0, 10, 10], [20, 20, 30, 30])
        kept = non_max_suppression(boxes, np.asarray([0.9, 0.5]))
        assert sorted(kept) == [0, 1]

    def test_different_classes_not_suppressed(self):
        boxes = boxes_of([0, 0, 10, 10], [0, 0, 10, 10])
        kept = non_max_suppression(
            boxes, np.asarray([0.9, 0.8]), class_ids=np.asarray([0, 1])
        )
        assert sorted(kept) == [0, 1]

    def test_same_class_suppressed(self):
        boxes = boxes_of([0, 0, 10, 10], [0, 0, 10, 10])
        kept = non_max_suppression(
            boxes, np.asarray([0.9, 0.8]), class_ids=np.asarray([0, 0])
        )
        assert kept == [0]

    def test_max_detections_cap(self):
        boxes = np.stack(
            [np.asarray([i * 20, 0, i * 20 + 10, 10], dtype=np.float32) for i in range(10)]
        )
        kept = non_max_suppression(boxes, np.linspace(1, 0.1, 10), max_detections=3)
        assert len(kept) == 3

    def test_results_ordered_by_score(self):
        boxes = boxes_of([0, 0, 5, 5], [20, 20, 25, 25], [40, 40, 45, 45])
        scores = np.asarray([0.2, 0.9, 0.5])
        kept = non_max_suppression(boxes, scores)
        assert kept == [1, 2, 0]

    def test_empty_input(self):
        assert non_max_suppression(np.zeros((0, 4)), np.zeros(0)) == []

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            non_max_suppression(np.zeros((2, 4)), np.zeros(3))

    def test_chain_suppression_is_greedy(self):
        # b overlaps a, c overlaps b but not a: greedy keeps a and c.
        boxes = boxes_of([0, 0, 10, 10], [6, 0, 16, 10], [12, 0, 22, 10])
        kept = non_max_suppression(boxes, np.asarray([0.9, 0.8, 0.7]),
                                   iou_threshold=0.2)
        assert kept == [0, 2]
