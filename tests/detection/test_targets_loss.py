"""Target assignment and the YOLO loss."""

import numpy as np
import pytest

from repro.detection import (
    GroundTruth,
    TinyYolo,
    build_targets,
    reduced_config,
    yolo_loss,
)
from repro.nn import Tensor


@pytest.fixture
def config():
    return reduced_config(input_size=64, width_multiplier=0.25)


class TestGroundTruth:
    def test_misaligned_boxes_labels_raise(self):
        with pytest.raises(ValueError):
            GroundTruth(np.zeros((2, 4)), np.zeros(3, dtype=int))

    def test_empty_ground_truth_allowed(self):
        gt = GroundTruth(np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert len(gt.labels) == 0


class TestBuildTargets:
    def test_exactly_one_positive_per_box(self, config):
        gt = GroundTruth(np.asarray([[32.0, 32.0, 10.0, 12.0]]), np.asarray([2]))
        heads = build_targets([gt], config)
        total_pos = sum(h.obj_mask.sum() for h in heads)
        assert total_pos == 1

    def test_positive_in_center_cell(self, config):
        gt = GroundTruth(np.asarray([[40.0, 24.0, 6.0, 6.0]]), np.asarray([0]))
        heads = build_targets([gt], config)
        for head in heads:
            positions = np.argwhere(head.obj_mask)
            for _, _, row, col in positions:
                stride = head.stride
                assert col == int(40.0 / stride)
                assert row == int(24.0 / stride)

    def test_positive_excluded_from_noobj(self, config):
        gt = GroundTruth(np.asarray([[32.0, 32.0, 10.0, 12.0]]), np.asarray([1]))
        heads = build_targets([gt], config)
        for head in heads:
            assert not (head.obj_mask & head.noobj_mask).any()

    def test_offsets_in_unit_range(self, config):
        gt = GroundTruth(np.asarray([[37.0, 41.0, 8.0, 8.0]]), np.asarray([3]))
        heads = build_targets([gt], config)
        for head in heads:
            offsets = head.txy[head.obj_mask]
            assert ((offsets >= 0) & (offsets < 1)).all()

    def test_one_hot_class_target(self, config):
        gt = GroundTruth(np.asarray([[32.0, 32.0, 10.0, 12.0]]), np.asarray([4]))
        heads = build_targets([gt], config)
        for head in heads:
            classes = head.classes[head.obj_mask]
            for row in classes:
                np.testing.assert_allclose(row, [0, 0, 0, 0, 1])

    def test_degenerate_boxes_skipped(self, config):
        gt = GroundTruth(np.asarray([[32.0, 32.0, 0.5, 0.5]]), np.asarray([0]))
        heads = build_targets([gt], config)
        assert sum(h.obj_mask.sum() for h in heads) == 0

    def test_out_of_range_label_raises(self, config):
        gt = GroundTruth(np.asarray([[32.0, 32.0, 10.0, 10.0]]), np.asarray([9]))
        with pytest.raises(ValueError):
            build_targets([gt], config)

    def test_box_at_image_edge_clamps_to_grid(self, config):
        gt = GroundTruth(np.asarray([[63.9, 63.9, 10.0, 10.0]]), np.asarray([0]))
        heads = build_targets([gt], config)  # must not raise IndexError
        assert sum(h.obj_mask.sum() for h in heads) == 1

    def test_batch_dimension_respected(self, config):
        gts = [
            GroundTruth(np.asarray([[20.0, 20.0, 8.0, 8.0]]), np.asarray([0])),
            GroundTruth(np.zeros((0, 4)), np.zeros(0, dtype=int)),
        ]
        heads = build_targets(gts, config)
        for head in heads:
            assert not head.obj_mask[1].any()


class TestYoloLoss:
    def test_loss_is_finite_and_positive(self, config):
        model = TinyYolo(config, seed=0)
        images = np.random.default_rng(0).random((2, 3, 64, 64)).astype(np.float32)
        gts = [
            GroundTruth(np.asarray([[30.0, 30.0, 10.0, 14.0]]), np.asarray([2])),
            GroundTruth(np.asarray([[12.0, 40.0, 8.0, 8.0]]), np.asarray([0])),
        ]
        result = yolo_loss(model(Tensor(images)), gts, config)
        assert np.isfinite(result.total.data)
        assert float(result.total.data) > 0

    def test_empty_truth_only_objectness(self, config):
        model = TinyYolo(config, seed=0)
        images = np.zeros((1, 3, 64, 64), dtype=np.float32)
        gts = [GroundTruth(np.zeros((0, 4)), np.zeros(0, dtype=int))]
        result = yolo_loss(model(Tensor(images)), gts, config)
        assert result.xy == 0.0
        assert result.wh == 0.0
        assert result.classification == 0.0
        assert result.objectness > 0.0

    def test_loss_decreases_with_training_step(self, config):
        from repro.nn import Adam

        model = TinyYolo(config, seed=0)
        images = np.random.default_rng(1).random((2, 3, 64, 64)).astype(np.float32)
        gts = [
            GroundTruth(np.asarray([[30.0, 30.0, 10.0, 14.0]]), np.asarray([2])),
            GroundTruth(np.asarray([[12.0, 40.0, 8.0, 8.0]]), np.asarray([0])),
        ]
        optimizer = Adam(model.parameters(), lr=1e-3)
        first = None
        for _ in range(15):
            result = yolo_loss(model(Tensor(images)), gts, config)
            if first is None:
                first = float(result.total.data)
            optimizer.zero_grad()
            result.total.backward()
            optimizer.step()
        assert float(result.total.data) < first

    def test_gradients_flow_to_all_heads(self, config):
        model = TinyYolo(config, seed=0)
        images = np.random.default_rng(2).random((1, 3, 64, 64)).astype(np.float32)
        gts = [GroundTruth(np.asarray([[30.0, 30.0, 10.0, 14.0]]), np.asarray([2]))]
        result = yolo_loss(model(Tensor(images)), gts, config)
        model.zero_grad()
        result.total.backward()
        assert model.head_coarse.weight.grad is not None
        assert model.head_fine.weight.grad is not None
