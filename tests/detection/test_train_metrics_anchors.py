"""Detector training loop, mAP evaluation and anchor fitting."""

import numpy as np
import pytest

from repro.detection import (
    Detection,
    DetectorTrainConfig,
    GroundTruth,
    TinyYolo,
    anchor_fitness,
    average_precision,
    evaluate_map,
    kmeans_anchors,
    reduced_config,
    train_detector,
)
from repro.scene import DatasetConfig, build_dataset


def make_detection(box_xyxy, score, class_id):
    return Detection(
        box_xyxy=np.asarray(box_xyxy, dtype=np.float32),
        score=score,
        class_id=class_id,
        class_probs=np.zeros(5, dtype=np.float32),
    )


class TestTrainDetector:
    def test_empty_samples_rejected(self):
        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25))
        with pytest.raises(ValueError):
            train_detector(model, [])

    def test_short_training_runs_and_logs(self):
        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=2)
        samples = build_dataset(8, DatasetConfig(image_size=64, seed=21))
        log = train_detector(
            model, samples,
            DetectorTrainConfig(epochs=2, batch_size=4, log_every=1),
        )
        assert log.series("loss")
        assert not model.training  # left in eval mode

    def test_time_budget_stops_early(self):
        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=3)
        samples = build_dataset(8, DatasetConfig(image_size=64, seed=22))
        log = train_detector(
            model, samples,
            DetectorTrainConfig(epochs=1000, batch_size=4,
                                time_budget_seconds=1.0, log_every=1),
        )
        assert log.last("stopped_early", 0.0) == 1.0

    def test_deterministic_given_seed(self):
        samples = build_dataset(8, DatasetConfig(image_size=64, seed=23))
        losses = []
        for _ in range(2):
            model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25),
                             seed=7)
            log = train_detector(
                model, samples,
                DetectorTrainConfig(epochs=1, batch_size=4, seed=9, log_every=1),
            )
            losses.append(log.series("loss"))
        np.testing.assert_allclose(losses[0], losses[1], rtol=1e-5)


class TestAveragePrecision:
    def test_perfect_curve(self):
        ap = average_precision(np.asarray([0.5, 1.0]), np.asarray([1.0, 1.0]))
        assert ap == pytest.approx(1.0)

    def test_zero_precision(self):
        ap = average_precision(np.asarray([0.5, 1.0]), np.asarray([0.0, 0.0]))
        assert ap == pytest.approx(0.0)

    def test_monotone_interpolation(self):
        # Dips in precision are filled by the running maximum.
        ap = average_precision(np.asarray([0.5, 1.0]), np.asarray([0.2, 0.8]))
        assert ap == pytest.approx(0.8)


class TestEvaluateMap:
    def truth(self, *boxes_and_labels):
        boxes = np.asarray([b for b, _ in boxes_and_labels], dtype=np.float32)
        labels = np.asarray([l for _, l in boxes_and_labels], dtype=np.int64)
        return GroundTruth(boxes.reshape(-1, 4), labels)

    def test_perfect_detection_full_map(self):
        truth = self.truth(([20, 20, 10, 10], 0))
        detections = [[make_detection([15, 15, 25, 25], 0.9, 0)]]
        result = evaluate_map(detections, [truth], num_classes=5)
        assert result.per_class_ap[0] == pytest.approx(1.0)

    def test_wrong_class_zero_ap(self):
        truth = self.truth(([20, 20, 10, 10], 0))
        detections = [[make_detection([15, 15, 25, 25], 0.9, 1)]]
        result = evaluate_map(detections, [truth], num_classes=5)
        assert result.per_class_ap[0] == pytest.approx(0.0)

    def test_duplicate_detection_counts_one_tp(self):
        truth = self.truth(([20, 20, 10, 10], 0))
        detections = [[
            make_detection([15, 15, 25, 25], 0.9, 0),
            make_detection([15, 15, 25, 25], 0.8, 0),
        ]]
        result = evaluate_map(detections, [truth], num_classes=5)
        # One TP one FP at full recall: AP stays 1.0 under VOC interpolation
        # because precision at recall 1.0 is reached before the FP.
        assert 0.5 <= result.per_class_ap[0] <= 1.0

    def test_counts_reported(self):
        truth = self.truth(([20, 20, 10, 10], 2), ([50, 50, 10, 10], 2))
        result = evaluate_map([[]], [truth], num_classes=5)
        assert result.per_class_counts[2] == 2

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_map([[]], [], num_classes=5)


class TestAnchors:
    def test_kmeans_recovers_two_clusters(self):
        rng = np.random.default_rng(0)
        small = rng.normal([10, 10], 0.5, size=(50, 2))
        large = rng.normal([40, 40], 0.5, size=(50, 2))
        anchors = kmeans_anchors(np.vstack([small, large]), k=2, seed=1)
        widths = sorted(a[0] for a in anchors)
        assert widths[0] == pytest.approx(10, abs=2)
        assert widths[1] == pytest.approx(40, abs=2)

    def test_anchors_sorted_by_area(self):
        rng = np.random.default_rng(1)
        sizes = rng.uniform(2, 50, size=(100, 2))
        anchors = kmeans_anchors(sizes, k=6, seed=0)
        areas = [w * h for w, h in anchors]
        assert areas == sorted(areas)

    def test_too_few_boxes_rejected(self):
        with pytest.raises(ValueError):
            kmeans_anchors([(1, 1)], k=6)

    def test_fitness_perfect_for_matching_anchors(self):
        sizes = [(10.0, 10.0)] * 5
        assert anchor_fitness(sizes, [(10.0, 10.0)]) == pytest.approx(1.0)

    def test_fitted_anchors_beat_random(self):
        rng = np.random.default_rng(2)
        sizes = rng.uniform(3, 30, size=(80, 2))
        fitted = kmeans_anchors(sizes, k=6, seed=0)
        random_anchors = [(100.0, 100.0)] * 6
        assert anchor_fitness(sizes, fitted) > anchor_fitness(sizes, random_anchors)
