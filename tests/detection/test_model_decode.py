"""TinyYolo architecture and head decoding."""

import numpy as np
import pytest

from repro.detection import (
    TinyYolo,
    TinyYoloConfig,
    decode_head,
    decode_heads,
    detections_from_outputs,
    reduced_config,
)
from repro.nn import Tensor, no_grad


@pytest.fixture(scope="module")
def small_model():
    return TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)


class TestConfig:
    def test_input_size_must_be_multiple_of_32(self):
        with pytest.raises(ValueError):
            TinyYoloConfig(input_size=100)

    def test_class_names_length_checked(self):
        with pytest.raises(ValueError):
            TinyYoloConfig(num_classes=3)

    def test_grid_sizes(self):
        config = reduced_config(input_size=96)
        assert config.grid_sizes == (3, 6)

    def test_anchor_scaling(self):
        full = TinyYoloConfig(input_size=416)
        coarse, fine = full.anchors()
        assert coarse[0] == (81.0, 82.0)
        double = reduced_config(input_size=832, width_multiplier=1.0)
        coarse_double, _ = double.anchors()
        assert coarse_double[0] == (162.0, 164.0)

    def test_custom_anchors_split_by_area(self):
        anchors = ((4, 4), (30, 30), (6, 6), (20, 20), (10, 10), (2, 2))
        config = reduced_config(input_size=96, custom_anchors=anchors)
        coarse, fine = config.anchors()
        assert fine == [(2.0, 2.0), (4.0, 4.0), (6.0, 6.0)]
        assert coarse == [(10.0, 10.0), (20.0, 20.0), (30.0, 30.0)]

    def test_custom_anchors_validated(self):
        with pytest.raises(ValueError):
            reduced_config(custom_anchors=((1, 2), (3, 4)))

    def test_head_channels(self):
        config = reduced_config()
        assert config.head_channels == 3 * (5 + 5)

    def test_channels_scaled_and_rounded(self):
        config = reduced_config(width_multiplier=0.25)
        assert config.channels(1024) == 256
        assert config.channels(16) == 8  # floor at 8


class TestModel:
    def test_forward_shapes(self, small_model):
        out_coarse, out_fine = small_model(
            Tensor(np.zeros((2, 3, 64, 64), dtype=np.float32))
        )
        assert out_coarse.shape == (2, 30, 2, 2)
        assert out_fine.shape == (2, 30, 4, 4)

    def test_wrong_input_size_raises(self, small_model):
        with pytest.raises(ValueError):
            small_model(Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32)))

    def test_full_scale_parameter_count_matches_darknet(self):
        # The real yolov3-tiny has ~8.7M parameters; ours should be close
        # (clustered batch-norm bookkeeping differs slightly).
        model = TinyYolo(reduced_config(input_size=416, width_multiplier=1.0))
        assert 8.0e6 < model.num_parameters() < 9.5e6

    def test_objectness_bias_initialized_negative(self, small_model):
        per_anchor = 5 + small_model.config.num_classes
        bias = small_model.head_coarse.bias.data.reshape(3, per_anchor)
        assert (bias[:, 4] < -2).all()

    def test_gradients_reach_input(self):
        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=1)
        x = Tensor(np.random.default_rng(0).random((1, 3, 64, 64)).astype(np.float32),
                   requires_grad=True)
        coarse, fine = model(x)
        (coarse.sum() + fine.sum()).backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestDecode:
    def test_boxes_land_in_correct_cell(self):
        config = reduced_config(input_size=64)
        raw = np.zeros((1, 30, 2, 2), dtype=np.float32)
        decoded = decode_head(Tensor(raw), config.anchors()[0], 32, 5)
        # With tx=ty=0, sigmoid=0.5: center at (cell + 0.5) * stride.
        np.testing.assert_allclose(decoded.boxes_xywh.data[0, 0, 0, 0, :2], [16.0, 16.0])
        np.testing.assert_allclose(decoded.boxes_xywh.data[0, 0, 1, 1, :2], [48.0, 48.0])

    def test_anchor_size_at_zero_twth(self):
        config = reduced_config(input_size=64)
        anchors = config.anchors()[0]
        raw = np.zeros((1, 30, 2, 2), dtype=np.float32)
        decoded = decode_head(Tensor(raw), anchors, 32, 5)
        np.testing.assert_allclose(
            decoded.boxes_xywh.data[0, 0, 0, 0, 2:], anchors[0], rtol=1e-5
        )

    def test_bad_channel_count_raises(self):
        config = reduced_config(input_size=64)
        with pytest.raises(ValueError):
            decode_head(Tensor(np.zeros((1, 31, 2, 2), dtype=np.float32)),
                        config.anchors()[0], 32, 5)

    def test_extreme_twth_clamped(self):
        config = reduced_config(input_size=64)
        raw = np.full((1, 30, 2, 2), 100.0, dtype=np.float32)
        decoded = decode_head(Tensor(raw), config.anchors()[0], 32, 5)
        assert np.isfinite(decoded.boxes_xywh.data).all()

    def test_decode_heads_returns_both_strides(self, small_model):
        outputs = small_model(Tensor(np.zeros((1, 3, 64, 64), dtype=np.float32)))
        heads = decode_heads(outputs, small_model.config)
        assert [h.stride for h in heads] == [32, 16]


class TestDetections:
    def test_high_threshold_gives_empty(self, small_model):
        with no_grad():
            outputs = small_model(Tensor(np.zeros((1, 3, 64, 64), dtype=np.float32)))
        detections = detections_from_outputs(outputs, small_model.config,
                                             conf_threshold=0.999)
        assert detections == [[]]

    def test_batch_results_align(self, small_model):
        with no_grad():
            outputs = small_model(Tensor(np.zeros((3, 3, 64, 64), dtype=np.float32)))
        detections = detections_from_outputs(outputs, small_model.config,
                                             conf_threshold=0.0, max_detections=5)
        assert len(detections) == 3
        assert all(len(d) <= 5 for d in detections)

    def test_detection_fields(self, small_model):
        with no_grad():
            outputs = small_model(
                Tensor(np.random.default_rng(0).random((1, 3, 64, 64)).astype(np.float32))
            )
        detections = detections_from_outputs(outputs, small_model.config,
                                             conf_threshold=0.0, max_detections=3)[0]
        det = detections[0]
        assert det.box_xyxy.shape == (4,)
        assert 0.0 <= det.score <= 1.0
        assert 0 <= det.class_id < 5
        assert det.class_probs.shape == (5,)
