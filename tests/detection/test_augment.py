"""Detector data augmentation."""

import numpy as np
import pytest

from repro.detection import GroundTruth
from repro.detection.augment import (
    AugmentConfig,
    augment_sample,
    horizontal_flip,
    photometric_jitter,
    translate,
)


@pytest.fixture
def sample(rng):
    image = rng.random((3, 32, 32)).astype(np.float32)
    truth = GroundTruth(np.asarray([[10.0, 20.0, 6.0, 8.0]]), np.asarray([2]))
    return image, truth


class TestFlip:
    def test_mirrors_pixels(self, sample):
        image, truth = sample
        flipped, _ = horizontal_flip(image, truth)
        np.testing.assert_allclose(flipped[:, :, 0], image[:, :, -1])

    def test_reflects_box_center(self, sample):
        image, truth = sample
        _, new_truth = horizontal_flip(image, truth)
        assert new_truth.boxes_xywh[0, 0] == pytest.approx(32 - 10.0)
        assert new_truth.boxes_xywh[0, 1] == pytest.approx(20.0)  # y unchanged

    def test_double_flip_identity(self, sample):
        image, truth = sample
        twice_img, twice_truth = horizontal_flip(*horizontal_flip(image, truth))
        np.testing.assert_allclose(twice_img, image)
        np.testing.assert_allclose(twice_truth.boxes_xywh, truth.boxes_xywh)

    def test_empty_truth_ok(self, rng):
        image = rng.random((3, 16, 16)).astype(np.float32)
        truth = GroundTruth(np.zeros((0, 4)), np.zeros(0, dtype=int))
        _, out = horizontal_flip(image, truth)
        assert len(out.labels) == 0


class TestJitter:
    def test_output_in_range(self, sample, rng):
        image, _ = sample
        out = photometric_jitter(image, rng, AugmentConfig())
        assert ((out >= 0) & (out <= 1)).all()

    def test_changes_pixels(self, sample):
        image, _ = sample
        out = photometric_jitter(image, np.random.default_rng(3), AugmentConfig())
        assert not np.allclose(out, image)


class TestTranslate:
    def test_box_follows_shift(self, sample):
        config = AugmentConfig(max_translate_fraction=0.25)
        image, truth = sample
        rng = np.random.default_rng(1)
        out_image, out_truth = translate(image, truth, rng, config)
        assert out_image.shape == image.shape
        if len(out_truth.labels):
            # The box stays inside the frame.
            cx, cy = out_truth.boxes_xywh[0, :2]
            assert 0 < cx < 32 and 0 < cy < 32

    def test_box_dropped_when_pushed_out(self, rng):
        config = AugmentConfig(max_translate_fraction=0.5)
        image = rng.random((3, 20, 20)).astype(np.float32)
        truth = GroundTruth(np.asarray([[1.0, 1.0, 2.0, 2.0]]), np.asarray([0]))
        # Force a large shift by trying several seeds.
        dropped = False
        for seed in range(20):
            _, out = translate(image, truth, np.random.default_rng(seed), config)
            if len(out.labels) == 0:
                dropped = True
                break
        assert dropped

    def test_zero_translate_identity(self, sample):
        config = AugmentConfig(max_translate_fraction=0.0)
        image, truth = sample
        out_image, out_truth = translate(image, truth, np.random.default_rng(0),
                                         config)
        np.testing.assert_allclose(out_image, image)
        np.testing.assert_allclose(out_truth.boxes_xywh, truth.boxes_xywh)


class TestPipeline:
    def test_augment_sample_valid_output(self, sample):
        image, truth = sample
        for seed in range(5):
            out_image, out_truth = augment_sample(
                image, truth, np.random.default_rng(seed)
            )
            assert out_image.shape == image.shape
            assert ((out_image >= 0) & (out_image <= 1)).all()
            assert len(out_truth.boxes_xywh) == len(out_truth.labels)

    def test_training_with_augmentation_runs(self):
        from repro.detection import DetectorTrainConfig, TinyYolo, reduced_config, train_detector
        from repro.scene import DatasetConfig, build_dataset

        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=4)
        samples = build_dataset(8, DatasetConfig(image_size=64, seed=31))
        log = train_detector(
            model, samples,
            DetectorTrainConfig(epochs=1, batch_size=4, augment=True, log_every=1),
        )
        assert all(np.isfinite(l) for l in log.series("loss"))
