"""Box geometry: conversions, IoU, clipping — including hypothesis laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    box_area,
    clip_boxes,
    iou_matrix,
    iou_pairwise,
    xywh_to_xyxy,
    xyxy_to_xywh,
)

finite_coord = st.floats(min_value=-500, max_value=500, width=32)
positive_size = st.floats(min_value=0.125, max_value=200, width=32)


class TestConversions:
    def test_xywh_to_xyxy_known_value(self):
        out = xywh_to_xyxy(np.asarray([10.0, 20.0, 4.0, 8.0]))
        np.testing.assert_allclose(out, [8.0, 16.0, 12.0, 24.0])

    def test_xyxy_to_xywh_known_value(self):
        out = xyxy_to_xywh(np.asarray([8.0, 16.0, 12.0, 24.0]))
        np.testing.assert_allclose(out, [10.0, 20.0, 4.0, 8.0])

    @given(cx=finite_coord, cy=finite_coord, w=positive_size, h=positive_size)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, cx, cy, w, h):
        box = np.asarray([cx, cy, w, h], dtype=np.float32)
        back = xyxy_to_xywh(xywh_to_xyxy(box))
        np.testing.assert_allclose(back, box, atol=1e-2)

    def test_batched_conversion(self):
        boxes = np.asarray([[[0, 0, 2, 2], [5, 5, 2, 4]]], dtype=np.float32)
        out = xywh_to_xyxy(boxes)
        assert out.shape == (1, 2, 4)


class TestIoU:
    def test_identical_boxes_iou_one(self):
        box = np.asarray([0.0, 0.0, 10.0, 10.0])
        assert iou_pairwise(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes_iou_zero(self):
        a = np.asarray([0.0, 0.0, 1.0, 1.0])
        b = np.asarray([5.0, 5.0, 6.0, 6.0])
        assert iou_pairwise(a, b) == pytest.approx(0.0)

    def test_half_overlap(self):
        a = np.asarray([0.0, 0.0, 2.0, 2.0])
        b = np.asarray([1.0, 0.0, 3.0, 2.0])
        # Intersection 2, union 6.
        assert iou_pairwise(a, b) == pytest.approx(1 / 3)

    def test_degenerate_box_iou_zero(self):
        a = np.asarray([1.0, 1.0, 1.0, 1.0])  # zero-area
        b = np.asarray([0.0, 0.0, 2.0, 2.0])
        assert iou_pairwise(a, b) == pytest.approx(0.0)

    def test_iou_matrix_shape_and_symmetry(self, rng):
        a = np.abs(rng.normal(size=(4, 4))) * 10
        a[:, 2:] += a[:, :2] + 1
        b = np.abs(rng.normal(size=(3, 4))) * 10
        b[:, 2:] += b[:, :2] + 1
        matrix = iou_matrix(a, b)
        assert matrix.shape == (4, 3)
        np.testing.assert_allclose(matrix, iou_matrix(b, a).T, rtol=1e-5)

    @given(
        data=st.lists(
            st.tuples(finite_coord, finite_coord, positive_size, positive_size),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_iou_bounded_property(self, data):
        boxes = xywh_to_xyxy(np.asarray(data, dtype=np.float32))
        matrix = iou_matrix(boxes, boxes)
        assert ((matrix >= 0) & (matrix <= 1.0 + 1e-5)).all()
        np.testing.assert_allclose(np.diag(matrix), 1.0, atol=1e-5)


class TestAreaAndClip:
    def test_box_area(self):
        assert box_area(np.asarray([0.0, 0.0, 3.0, 4.0])) == pytest.approx(12.0)

    def test_negative_extent_clamps_to_zero(self):
        assert box_area(np.asarray([5.0, 5.0, 1.0, 1.0])) == pytest.approx(0.0)

    def test_clip_boxes(self):
        boxes = np.asarray([[-5.0, -5.0, 200.0, 50.0]])
        out = clip_boxes(boxes, width=100, height=40)
        np.testing.assert_allclose(out, [[0.0, 0.0, 100.0, 40.0]])

    def test_clip_does_not_mutate_input(self):
        boxes = np.asarray([[-5.0, 0.0, 5.0, 5.0]], dtype=np.float32)
        clip_boxes(boxes, 10, 10)
        assert boxes[0, 0] == -5.0
