"""Attack configuration validation and artifact persistence."""

import numpy as np
import pytest

from repro.attack import (
    PAPER_TRICKS,
    AttackConfig,
    AttackResult,
    SavaBaselineResult,
    cached_path,
    load_attack,
    load_baseline,
    save_attack,
    save_baseline,
)
from repro.utils.logging import TrainLog


class TestConfig:
    def test_defaults_match_paper_tricks(self):
        config = AttackConfig()
        assert config.tricks == PAPER_TRICKS
        assert config.tricks == frozenset({"resize", "rotation", "gamma", "perspective"})

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(shape="hexagon")

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(n_patches=0)

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(k=4)

    def test_unknown_trick_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(tricks=frozenset({"hologram"}))

    def test_consecutive_batch_divisibility(self):
        with pytest.raises(ValueError):
            AttackConfig(consecutive=True, batch_frames=7, group=3)

    def test_same_target_victim_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(target_class="mark", victim_class="mark")

    def test_cache_key_stable_and_distinct(self):
        a = AttackConfig()
        b = AttackConfig(n_patches=6)
        assert a.cache_key() == AttackConfig().cache_key()
        assert a.cache_key() != b.cache_key()

    def test_cache_key_reflects_tricks(self):
        a = AttackConfig(tricks=frozenset({"resize"}))
        b = AttackConfig(tricks=frozenset({"rotation"}))
        assert a.cache_key() != b.cache_key()


class TestArtifacts:
    def make_attack(self):
        return AttackResult(
            patch=np.random.default_rng(0).random((1, 20, 20)).astype(np.float32),
            alpha=np.ones((20, 20), dtype=np.float32),
            config=AttackConfig(k=20, steps=3, warmup_steps=1),
            history=TrainLog("test"),
            world_size_m=0.5,
        )

    def test_attack_roundtrip(self, tmp_path):
        result = self.make_attack()
        path = str(tmp_path / "attack.npz")
        save_attack(result, path)
        loaded = load_attack(path)
        np.testing.assert_allclose(loaded.patch, result.patch)
        np.testing.assert_allclose(loaded.alpha, result.alpha)
        assert loaded.config == result.config
        assert loaded.world_size_m == result.world_size_m

    def test_baseline_roundtrip(self, tmp_path):
        result = SavaBaselineResult(
            patch_rgb=np.random.default_rng(1).random((3, 20, 20)).astype(np.float32),
            config=AttackConfig(k=20, consecutive=False),
            history=TrainLog("test"),
            world_size_m=0.5,
        )
        path = str(tmp_path / "sava.npz")
        save_baseline(result, path)
        loaded = load_baseline(path)
        np.testing.assert_allclose(loaded.patch_rgb, result.patch_rgb)
        assert loaded.config == result.config

    def test_cached_path_distinguishes_kinds(self, tmp_path):
        config = AttackConfig()
        assert cached_path(str(tmp_path), config, "attack") != cached_path(
            str(tmp_path), config, "sava"
        )

    def test_deploy_digital_uses_patch_verbatim(self):
        result = self.make_attack()
        decals = result.deploy(physical=False)
        np.testing.assert_allclose(decals.patch_rgb[0], result.patch[0])
        assert len(decals.offsets) == result.config.n_patches

    def test_deploy_physical_prints_patch(self):
        result = self.make_attack()
        digital = result.deploy(physical=False)
        physical = result.deploy(physical=True, rng=np.random.default_rng(0))
        assert not np.allclose(digital.patch_rgb, physical.patch_rgb)
