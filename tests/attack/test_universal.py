"""Universal (cross-scene) decal training — future-work extension."""

import numpy as np
import pytest

from repro.attack import AttackConfig, load_attack, save_attack, train_patch_attack
from repro.attack.trainer import AttackResult
from repro.detection import TinyYolo, reduced_config
from repro.scene import AttackScenario
from repro.utils.logging import TrainLog


class TestUniversalConfig:
    def test_cache_key_reflects_universal_styles(self):
        plain = AttackConfig()
        universal = AttackConfig(universal_styles=(1, 2, 3))
        assert plain.cache_key() != universal.cache_key()

    def test_artifact_roundtrip_preserves_styles(self, tmp_path):
        result = AttackResult(
            patch=np.zeros((1, 20, 20), dtype=np.float32),
            alpha=np.zeros((20, 20), dtype=np.float32),
            config=AttackConfig(k=20, universal_styles=(5, 6)),
            history=TrainLog("t"),
            world_size_m=0.5,
        )
        path = str(tmp_path / "u.npz")
        save_attack(result, path)
        loaded = load_attack(path)
        assert loaded.config.universal_styles == (5, 6)
        assert loaded.config == result.config

    def test_universal_attack_trains(self):
        model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25),
                         seed=0)
        scenario = AttackScenario(image_size=64)
        config = AttackConfig(universal_styles=(3, 4, 5), steps=2,
                              warmup_steps=1, batch_frames=6, frame_pool=12,
                              gan_batch=4, k=20)
        result = train_patch_attack(model, scenario, config)
        assert result.patch.shape == (1, 20, 20)


class TestStyleSeedsSampling:
    def test_styles_vary_across_runs(self):
        from repro.patch import placement_offsets
        from repro.scene.video import sample_training_frames

        scenario = AttackScenario(image_size=64)
        frames = sample_training_frames(
            scenario, np.random.default_rng(0), 12, placement_offsets(2), 1.5,
            consecutive=True, group=3, style_seeds=[1, 2, 3, 4],
            degrade_fraction=0.0,
        )
        # Different style seeds give visually different backgrounds: compare
        # mean asphalt brightness across runs.
        run_means = [np.mean([f.image.mean() for f in frames[i:i + 3]])
                     for i in range(0, 12, 3)]
        assert max(run_means) - min(run_means) > 1e-4
