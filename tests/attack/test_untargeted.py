"""Untargeted (disappearance) attack mode — extension beyond the paper."""

import numpy as np
import pytest

from repro.attack import AttackConfig, attack_loss, train_patch_attack
from repro.detection import TinyYolo, reduced_config
from repro.eval import FrameOutcome, missed_rate
from repro.nn import Tensor
from repro.scene import AttackScenario


@pytest.fixture(scope="module")
def model():
    return TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)


class TestUntargetedLoss:
    def test_untargeted_loss_finite(self, model, rng):
        outputs = model(Tensor(rng.random((1, 3, 64, 64)).astype(np.float32)))
        loss = attack_loss(outputs, [np.asarray([32.0, 32.0, 10.0, 10.0])],
                           model, target_label=1, objectness_weight=0.3,
                           targeted=False)
        assert np.isfinite(loss.data)

    def test_untargeted_differs_from_targeted(self, model, rng):
        outputs = model(Tensor(rng.random((1, 3, 64, 64)).astype(np.float32)))
        box = [np.asarray([32.0, 32.0, 10.0, 10.0])]
        targeted = attack_loss(outputs, box, model, 1, 0.3, targeted=True)
        untargeted = attack_loss(outputs, box, model, 1, 0.3, targeted=False)
        assert float(targeted.data) != pytest.approx(float(untargeted.data))

    def test_untargeted_decreases_objectness_under_optimization(self, model, rng):
        from repro.nn import Adam, Parameter
        from repro.nn import functional as F

        theta = Parameter(rng.normal(0, 0.1, size=(1, 3, 64, 64)))
        optimizer = Adam([theta], lr=0.05)
        for p in model.parameters():
            p.requires_grad = False
        try:
            first = None
            for _ in range(6):
                outputs = model(F.sigmoid(theta))
                loss = attack_loss(outputs, [np.asarray([32.0, 32.0, 10.0, 10.0])],
                                   model, 1, 0.3, targeted=False)
                if first is None:
                    first = float(loss.data)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            assert float(loss.data) <= first
        finally:
            for p in model.parameters():
                p.requires_grad = True


class TestUntargetedConfig:
    def test_cache_key_distinguishes_modes(self):
        targeted = AttackConfig()
        untargeted = AttackConfig(targeted=False)
        assert targeted.cache_key() != untargeted.cache_key()

    def test_untargeted_attack_trains(self, model):
        scenario = AttackScenario(image_size=64)
        config = AttackConfig(targeted=False, steps=3, warmup_steps=1,
                              batch_frames=6, frame_pool=12, gan_batch=6, k=20)
        result = train_patch_attack(model, scenario, config)
        assert result.patch.shape == (1, 20, 20)


class TestMissedRate:
    def test_all_detected_zero(self):
        outcomes = [FrameOutcome(predicted_class=2)] * 4
        assert missed_rate(outcomes) == 0.0

    def test_all_missed_hundred(self):
        outcomes = [FrameOutcome(predicted_class=None)] * 4
        assert missed_rate(outcomes) == 100.0

    def test_mixed(self):
        outcomes = [FrameOutcome(predicted_class=None),
                    FrameOutcome(predicted_class=2)]
        assert missed_rate(outcomes) == 50.0

    def test_empty(self):
        assert missed_rate([]) == 0.0
