"""The attack loss L_f (Eq. 2) and its gradient path."""

import numpy as np
import pytest

from repro.attack import attack_loss
from repro.detection import TinyYolo, reduced_config
from repro.nn import Tensor


@pytest.fixture(scope="module")
def model():
    return TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)


class TestAttackLoss:
    def test_loss_finite_positive(self, model, rng):
        images = Tensor(rng.random((2, 3, 64, 64)).astype(np.float32))
        outputs = model(images)
        boxes = [np.asarray([30.0, 30.0, 10.0, 8.0]),
                 np.asarray([50.0, 40.0, 8.0, 8.0])]
        loss = attack_loss(outputs, boxes, model, target_label=1,
                           objectness_weight=0.3)
        assert np.isfinite(loss.data)
        assert float(loss.data) > 0

    def test_gradient_reaches_input_image(self, model, rng):
        images = Tensor(rng.random((1, 3, 64, 64)).astype(np.float32),
                        requires_grad=True)
        outputs = model(images)
        loss = attack_loss(outputs, [np.asarray([32.0, 32.0, 12.0, 12.0])],
                           model, 1, 0.3)
        loss.backward()
        assert images.grad is not None
        assert np.abs(images.grad).sum() > 0

    def test_gradient_strongest_near_target(self, model, rng):
        # Gradient magnitude around the victim cell should dominate the
        # far corner: the loss reads logits at the object's location.
        images = Tensor(rng.random((1, 3, 64, 64)).astype(np.float32),
                        requires_grad=True)
        outputs = model(images)
        loss = attack_loss(outputs, [np.asarray([16.0, 16.0, 10.0, 10.0])],
                           model, 1, 0.3)
        loss.backward()
        grad = np.abs(images.grad[0]).sum(axis=0)
        near = grad[:32, :32].sum()
        far = grad[32:, 32:].sum()
        assert near > far

    def test_loss_decreases_under_direct_optimization(self, model, rng):
        from repro.nn import Adam, Parameter
        from repro.nn import functional as F

        theta = Parameter(rng.normal(0, 0.1, size=(1, 3, 64, 64)))
        optimizer = Adam([theta], lr=0.05)
        for param in model.parameters():
            param.requires_grad = False
        try:
            first = None
            for _ in range(8):
                outputs = model(F.sigmoid(theta))
                loss = attack_loss(outputs, [np.asarray([32.0, 32.0, 12.0, 12.0])],
                                   model, 1, 0.3)
                if first is None:
                    first = float(loss.data)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            assert float(loss.data) < first
        finally:
            for param in model.parameters():
                param.requires_grad = True

    def test_box_at_edge_clamps(self, model, rng):
        images = Tensor(rng.random((1, 3, 64, 64)).astype(np.float32))
        outputs = model(images)
        loss = attack_loss(outputs, [np.asarray([63.9, 63.9, 5.0, 5.0])],
                           model, 1, 0.3)
        assert np.isfinite(loss.data)
