"""Attack-trainer internals: batch construction and capture-EOT."""

import numpy as np
import pytest

from repro.attack.config import AttackConfig
from repro.attack.trainer import _batch_frames, _capture_augment, _composite_batch
from repro.eot import EOTPipeline
from repro.nn import Tensor
from repro.patch import placement_offsets
from repro.scene import AttackScenario
from repro.scene.video import sample_training_frames


@pytest.fixture(scope="module")
def frame_pool():
    scenario = AttackScenario(image_size=64)
    return sample_training_frames(
        scenario, np.random.default_rng(0), 12, placement_offsets(2), 1.5,
        consecutive=True, group=3, degrade_fraction=0.0,
    )


class TestBatchFrames:
    def test_consecutive_batches_are_whole_runs(self, frame_pool):
        config = AttackConfig(consecutive=True, batch_frames=6, group=3,
                              frame_pool=12)
        rng = np.random.default_rng(1)
        batch = _batch_frames(frame_pool, config, rng)
        assert len(batch) == 6
        # Each group of 3 decreases in distance (an approach run).
        for start in (0, 3):
            distances = [f.pose.distance for f in batch[start:start + 3]]
            assert distances == sorted(distances, reverse=True)

    def test_nonconsecutive_batches_sample_freely(self, frame_pool):
        config = AttackConfig(consecutive=False, batch_frames=5)
        rng = np.random.default_rng(2)
        batch = _batch_frames(frame_pool, config, rng)
        assert len(batch) == 5

    def test_batches_vary_across_draws(self, frame_pool):
        config = AttackConfig(consecutive=True, batch_frames=6, group=3)
        rng = np.random.default_rng(3)
        first = [f.pose.distance for f in _batch_frames(frame_pool, config, rng)]
        second = [f.pose.distance for f in _batch_frames(frame_pool, config, rng)]
        assert first != second


class TestCaptureAugment:
    def test_preserves_shape_and_range(self, rng):
        image = Tensor(rng.random((2, 3, 32, 32)).astype(np.float32),
                       requires_grad=True)
        out = _capture_augment(image, np.random.default_rng(0))
        assert out.shape == image.shape
        assert ((out.data >= 0) & (out.data <= 1)).all()

    def test_differentiable(self, rng):
        image = Tensor(rng.random((1, 3, 16, 16)).astype(np.float32),
                       requires_grad=True)
        out = _capture_augment(image, np.random.default_rng(1))
        out.sum().backward()
        assert image.grad is not None
        assert np.abs(image.grad).sum() > 0

    def test_stochastic_across_rngs(self, rng):
        image = Tensor(rng.random((1, 3, 16, 16)).astype(np.float32))
        a = _capture_augment(image, np.random.default_rng(1)).data
        b = _capture_augment(image, np.random.default_rng(2)).data
        assert not np.allclose(a, b)


class TestCompositeBatch:
    def test_composite_shapes_and_gradients(self, frame_pool, rng):
        patch = Tensor(rng.random((1, 1, 20, 20)).astype(np.float32),
                       requires_grad=True)
        pipeline = EOTPipeline.with_tricks(frozenset({"rotation"}))
        frames = frame_pool[:3]
        images, boxes = _composite_batch(frames, patch, pipeline,
                                         np.random.default_rng(0),
                                         capture_probability=1.0)
        assert images.shape == (3, 3, 64, 64)
        assert len(boxes) == 3
        images.sum().backward()
        assert patch.grad is not None
        assert np.abs(patch.grad).sum() > 0

    def test_capture_probability_zero_is_clean(self, frame_pool, rng):
        patch = Tensor(np.ones((1, 1, 20, 20), dtype=np.float32))
        pipeline = EOTPipeline.with_tricks(frozenset())
        frames = frame_pool[:1]
        a, _ = _composite_batch(frames, patch, pipeline,
                                np.random.default_rng(5),
                                capture_probability=0.0)
        b, _ = _composite_batch(frames, patch, pipeline,
                                np.random.default_rng(5),
                                capture_probability=0.0)
        np.testing.assert_allclose(a.data, b.data)
