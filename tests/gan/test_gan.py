"""GAN components: generator, discriminator, losses, short training."""

import numpy as np
import pytest

from repro.gan import (
    GanTrainConfig,
    PatchDiscriminator,
    PatchGenerator,
    discriminator_loss,
    generator_adversarial_loss,
    train_gan,
)
from repro.nn import Tensor


class TestGenerator:
    def test_output_shape_and_range(self, rng):
        gen = PatchGenerator(patch_size=24, latent_dim=16)
        z = gen.sample_latent(3, rng)
        out = gen(Tensor(z))
        assert out.shape == (3, 1, 24, 24)
        assert ((out.data >= 0) & (out.data <= 1)).all()

    @pytest.mark.parametrize("k", [20, 40, 60, 80])
    def test_paper_patch_sizes_supported(self, k, rng):
        gen = PatchGenerator(patch_size=k, latent_dim=8, base_channels=8)
        out = gen(Tensor(gen.sample_latent(1, rng)))
        assert out.shape == (1, 1, k, k)

    def test_too_small_patch_rejected(self):
        with pytest.raises(ValueError):
            PatchGenerator(patch_size=4)

    def test_wrong_latent_dim_rejected(self, rng):
        gen = PatchGenerator(patch_size=16, latent_dim=8)
        with pytest.raises(ValueError):
            gen(Tensor(rng.normal(size=(1, 9)).astype(np.float32)))

    def test_different_latents_different_patches(self, rng):
        gen = PatchGenerator(patch_size=16, latent_dim=8)
        z = gen.sample_latent(2, rng)
        out = gen(Tensor(z)).data
        assert not np.allclose(out[0], out[1])

    def test_gradients_reach_all_parameters(self, rng):
        gen = PatchGenerator(patch_size=16, latent_dim=8)
        out = gen(Tensor(gen.sample_latent(2, rng)))
        out.mean().backward()
        missing = [n for n, p in gen.named_parameters() if p.grad is None]
        assert not missing


class TestDiscriminator:
    def test_logit_shape(self, rng):
        disc = PatchDiscriminator(patch_size=24)
        out = disc(Tensor(rng.random((5, 1, 24, 24)).astype(np.float32)))
        assert out.shape == (5, 1)

    def test_wrong_input_shape_rejected(self, rng):
        disc = PatchDiscriminator(patch_size=24)
        with pytest.raises(ValueError):
            disc(Tensor(rng.random((1, 3, 24, 24)).astype(np.float32)))


class TestLosses:
    def test_perfect_discriminator_low_loss(self):
        real = Tensor(np.full((4, 1), 10.0, dtype=np.float32))
        fake = Tensor(np.full((4, 1), -10.0, dtype=np.float32))
        assert float(discriminator_loss(real, fake).data) < 1e-3

    def test_fooled_discriminator_low_generator_loss(self):
        fake = Tensor(np.full((4, 1), 10.0, dtype=np.float32))
        assert float(generator_adversarial_loss(fake).data) < 1e-3

    def test_chance_level_loss(self):
        logits = Tensor(np.zeros((4, 1), dtype=np.float32))
        assert float(discriminator_loss(logits, logits).data) == pytest.approx(
            2 * np.log(2), rel=1e-3
        )


class TestTraining:
    def test_short_training_moves_toward_shape(self):
        gen = PatchGenerator(patch_size=20, latent_dim=8, base_channels=16, seed=3)
        disc = PatchDiscriminator(patch_size=20, seed=4)
        before = gen(Tensor(gen.sample_latent(4, np.random.default_rng(0)))).data
        log = train_gan(gen, disc, "star",
                        GanTrainConfig(steps=25, batch_size=8, learning_rate=1e-3))
        after = gen(Tensor(gen.sample_latent(4, np.random.default_rng(0)))).data
        assert not np.allclose(before, after)
        # Shape samples are bimodal (ink vs background): trained output
        # should increase contrast versus the near-uniform init.
        assert after.std() > before.std()

    def test_training_logs_both_losses(self):
        gen = PatchGenerator(patch_size=16, latent_dim=8, base_channels=8)
        disc = PatchDiscriminator(patch_size=16)
        log = train_gan(gen, disc, "circle", GanTrainConfig(steps=5, batch_size=4))
        assert log.series("d_loss")
        assert log.series("g_loss")

    def test_modules_left_in_eval_mode(self):
        gen = PatchGenerator(patch_size=16, latent_dim=8, base_channels=8)
        disc = PatchDiscriminator(patch_size=16)
        train_gan(gen, disc, "square", GanTrainConfig(steps=2, batch_size=4))
        assert not gen.training
        assert not disc.training
