"""PWC / CWC metrics (Eq. 3 and the 3-consecutive-frame rule)."""

import numpy as np
import pytest

from repro.detection.decode import Detection
from repro.eval import (
    CWC_RUN_LENGTH,
    FrameOutcome,
    classify_frame,
    cwc,
    pwc,
    score_video,
)


def det(box, score, class_id):
    return Detection(
        box_xyxy=np.asarray(box, dtype=np.float32),
        score=score,
        class_id=class_id,
        class_probs=np.zeros(5, dtype=np.float32),
    )


def outcomes_of(*classes):
    return [FrameOutcome(predicted_class=c) for c in classes]


class TestClassifyFrame:
    def test_overlapping_detection_wins(self):
        target = np.asarray([20.0, 20.0, 10.0, 10.0])  # xywh
        result = classify_frame([det([15, 15, 25, 25], 0.9, 3)], target)
        assert result.predicted_class == 3

    def test_non_overlapping_detection_ignored(self):
        target = np.asarray([20.0, 20.0, 10.0, 10.0])
        result = classify_frame([det([50, 50, 60, 60], 0.9, 3)], target)
        assert result.predicted_class is None

    def test_highest_score_among_overlaps(self):
        target = np.asarray([20.0, 20.0, 10.0, 10.0])
        result = classify_frame(
            [det([15, 15, 25, 25], 0.5, 1), det([16, 16, 26, 26], 0.8, 4)],
            target,
        )
        assert result.predicted_class == 4
        assert result.score == pytest.approx(0.8)

    def test_no_target_box_means_missed(self):
        assert classify_frame([det([0, 0, 5, 5], 0.9, 0)], None).predicted_class is None

    def test_iou_threshold_respected(self):
        target = np.asarray([20.0, 20.0, 10.0, 10.0])
        barely = det([24, 24, 40, 40], 0.9, 2)
        strict = classify_frame([barely], target, iou_threshold=0.9)
        assert strict.predicted_class is None


class TestPwc:
    def test_paper_equation(self):
        outcomes = outcomes_of(1, 1, 2, None, 1)
        assert pwc(outcomes, target_label=1) == pytest.approx(60.0)

    def test_empty_video_zero(self):
        assert pwc([], 1) == 0.0

    def test_all_wrong_class_is_100(self):
        assert pwc(outcomes_of(1, 1, 1), 1) == pytest.approx(100.0)

    def test_missed_frames_do_not_count(self):
        assert pwc(outcomes_of(None, None, 1), 1) == pytest.approx(100 / 3)


class TestCwc:
    def test_run_length_is_three(self):
        assert CWC_RUN_LENGTH == 3

    def test_exactly_three_consecutive_triggers(self):
        assert cwc(outcomes_of(2, 1, 1, 1, 2), 1)

    def test_interrupted_run_does_not_trigger(self):
        assert not cwc(outcomes_of(1, 1, 2, 1, 1), 1)

    def test_none_breaks_streak(self):
        assert not cwc(outcomes_of(1, 1, None, 1, 1), 1)

    def test_longer_requirement(self):
        outcomes = outcomes_of(1, 1, 1, 1)
        assert cwc(outcomes, 1, run_length=4)
        assert not cwc(outcomes, 1, run_length=5)

    def test_empty_false(self):
        assert not cwc([], 1)


class TestScoreVideo:
    def test_combines_both_metrics(self):
        outcomes = outcomes_of(1, 1, 1, 2)
        result = score_video(outcomes, 1)
        assert result.pwc == pytest.approx(75.0)
        assert result.cwc
        assert len(result.outcomes) == 4
