"""Paper-style table formatting."""

from repro.eval import CHALLENGE_TITLES, ChallengeResult, format_row, format_table


def result(challenge, pwc, cwc):
    return ChallengeResult(challenge=challenge, pwc=pwc, cwc=cwc)


class TestFormatting:
    def test_cell_format(self):
        assert result("speed/slow", 78.4, True).cell() == "78% / Y"
        assert result("speed/slow", 0.0, False).cell() == "0% / X"

    def test_row_includes_all_challenges(self):
        results = {
            "speed/slow": result("speed/slow", 50, True),
            "speed/fast": result("speed/fast", 10, False),
        }
        row = format_row("ours", results, ("speed/slow", "speed/fast"))
        assert "ours" in row
        assert "50% / Y" in row
        assert "10% / X" in row

    def test_missing_challenge_renders_dash(self):
        row = format_row("ours", {}, ("speed/slow",))
        assert "-" in row

    def test_table_has_title_header_rows(self):
        rows = {
            "w/o attack": {"speed/slow": result("speed/slow", 0, False)},
            "ours": {"speed/slow": result("speed/slow", 80, True)},
        }
        table = format_table("Table X", rows, ("speed/slow",))
        lines = table.splitlines()
        assert lines[0] == "Table X"
        assert any("slow" in line for line in lines)
        assert any("w/o attack" in line for line in lines)
        assert any("80% / Y" in line for line in lines)

    def test_oversized_cell_degrades_to_dash(self):
        class Wide:
            def cell(self):
                return "x" * 40

        row = format_row("ours", {"speed/slow": Wide()}, ("speed/slow",),
                         width=12)
        assert "x" not in row
        assert "-" in row

    def test_broken_cell_method_degrades_to_dash(self):
        class Broken:
            def cell(self):
                raise ValueError("no data")

        row = format_row("ours", {"speed/slow": Broken()}, ("speed/slow",))
        assert "-" in row

    def test_result_without_cell_degrades_to_dash(self):
        row = format_row("ours", {"speed/slow": object()}, ("speed/slow",))
        assert "-" in row

    def test_non_mapping_results_degrade_to_dash(self):
        row = format_row("ours", None, ("speed/slow", "speed/fast"))
        assert row.count("-") >= 2

    def test_degraded_row_keeps_alignment(self):
        class Wide:
            def cell(self):
                return "x" * 40

        good = format_row("a", {"speed/slow": result("speed/slow", 50, True)},
                          ("speed/slow", "speed/fast"))
        bad = format_row("b", {"speed/slow": Wide()},
                         ("speed/slow", "speed/fast"))
        assert len(good) == len(bad)
        assert [i for i, ch in enumerate(good) if ch == "|"] == \
               [i for i, ch in enumerate(bad) if ch == "|"]

    def test_all_challenges_have_titles(self):
        from repro.eval import DEFAULT_CHALLENGES

        for challenge in DEFAULT_CHALLENGES:
            assert challenge in CHALLENGE_TITLES
