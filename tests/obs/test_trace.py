"""Hierarchical span tracing: nesting, sink buffering, reconstruction."""

import json

import pytest

from repro.obs import Tracer, build_tree, load_trace

pytestmark = pytest.mark.obs


class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["root"].parent_id is None
        assert by_name["child_a"].parent_id == by_name["root"].span_id
        assert by_name["grandchild"].parent_id == by_name["child_a"].span_id
        assert by_name["child_b"].parent_id == by_name["root"].span_id

    def test_span_times_are_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert inner.duration_s() >= 0.0

    def test_error_status_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].end_s is not None

    def test_counters_and_annotations_hit_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.add("items", 2)
            with tracer.span("inner"):
                tracer.add("items", 5)
                tracer.annotate(note="deep")
        outer, inner = tracer.spans
        assert outer.counters == {"items": 2.0}
        assert inner.counters == {"items": 5.0}
        assert inner.attrs["note"] == "deep"

    def test_add_outside_any_span_is_noop(self):
        tracer = Tracer()
        tracer.add("items")
        tracer.annotate(x=1)
        assert tracer.spans == []


class TestSink:
    def test_buffered_flush_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink_path=str(path), buffer_limit=2)
        with tracer.span("a"):
            pass
        assert not path.exists() or path.read_text() == ""
        with tracer.span("b"):
            pass
        # Second close reached the buffer limit -> both lines on disk.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == {"a", "b"}

    def test_explicit_flush_drains_buffer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink_path=str(path), buffer_limit=100)
        with tracer.span("only"):
            pass
        tracer.flush()
        assert len(path.read_text().strip().splitlines()) == 1

    def test_nested_roundtrip_through_jsonl(self, tmp_path):
        """Satellite: parent/child reconstruction from the JSONL sink."""
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink_path=str(path), buffer_limit=1)
        with tracer.span("train", steps=3):
            with tracer.span("warmup"):
                pass
            with tracer.span("steps"):
                tracer.add("items", 3)
        with tracer.span("eval"):
            with tracer.span("render"):
                pass
        tracer.flush()

        spans = load_trace(str(path))
        # File order is completion order; load re-sorts into start order.
        assert [s.name for s in spans] == ["train", "warmup", "steps",
                                           "eval", "render"]
        roots = build_tree(spans)
        assert [r.name for r in roots] == ["train", "eval"]
        train, eval_root = roots
        assert [c.name for c in train.children] == ["warmup", "steps"]
        assert [c.name for c in eval_root.children] == ["render"]
        assert train.record.attrs == {"steps": 3}
        steps = train.children[1].record
        assert steps.counters == {"items": 3.0}
        assert all(s.status == "ok" for s in spans)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink_path=str(path), buffer_limit=1)
        with tracer.span("kept"):
            pass
        with open(path, "a") as handle:
            handle.write('{"span_id": 99, "name": "torn", "start')
        spans = load_trace(str(path))
        assert [s.name for s in spans] == ["kept"]

    def test_orphan_span_promoted_to_root(self):
        tracer = Tracer()
        with tracer.span("lost_parent"):
            with tracer.span("survivor"):
                pass
        survivor = [s for s in tracer.spans if s.name == "survivor"]
        roots = build_tree(survivor)
        assert [r.name for r in roots] == ["survivor"]

    def test_json_safe_attrs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink_path=str(path), buffer_limit=1)
        with tracer.span("attrs", tup=(1, 2), obj=object(), text="x"):
            pass
        tracer.flush()
        record = json.loads(path.read_text())
        assert record["attrs"]["tup"] == [1, 2]
        assert isinstance(record["attrs"]["obj"], str)
        assert record["attrs"]["text"] == "x"
