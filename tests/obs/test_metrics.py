"""The repro.obs metrics registry: counter / gauge / histogram."""

import math

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, Metrics

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("frames")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("frames").inc(-1)

    def test_gauge_last_value_wins(self):
        gauge = Gauge("loss")
        assert math.isnan(gauge.value)
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25
        assert gauge.updates == 2

    def test_histogram_buckets_and_summary(self):
        hist = Histogram("seconds", buckets=(0.1, 1.0, float("inf")))
        for value in (0.05, 0.5, 0.5, 10.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(11.05)
        assert summary["min"] == 0.05
        assert summary["max"] == 10.0
        assert summary["buckets"] == {"0.1": 1, "1.0": 2, "inf": 1}

    def test_histogram_appends_inf_bound(self):
        hist = Histogram("x", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.bounds[-1] == float("inf")
        assert hist.count == 1

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))

    def test_empty_histogram_summary(self):
        summary = Histogram("x").summary()
        assert summary["count"] == 0
        assert summary["min"] is None and summary["max"] is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.gauge("b") is metrics.gauge("b")
        assert metrics.histogram("c") is metrics.histogram("c")

    def test_kind_conflict_raises(self):
        metrics = Metrics()
        metrics.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            metrics.gauge("a")

    def test_snapshot_groups_by_kind(self):
        metrics = Metrics()
        metrics.counter("steps").inc(3)
        metrics.gauge("loss").set(0.5)
        metrics.histogram("seconds", DEFAULT_BUCKETS).observe(0.01)
        snap = metrics.snapshot()
        assert snap["counters"] == {"steps": 3.0}
        assert snap["gauges"] == {"loss": 0.5}
        assert snap["histograms"]["seconds"]["count"] == 1

    def test_names_filters_by_kind(self):
        metrics = Metrics()
        metrics.counter("z")
        metrics.counter("a")
        metrics.gauge("m")
        assert metrics.names("counter") == ["a", "z"]
        assert metrics.names() == ["a", "m", "z"]


class TestHistogramPercentiles:
    """Edge cases of the bucket-interpolated percentile estimator."""

    def test_empty_histogram_percentile_is_none(self):
        hist = Histogram("x")
        assert hist.percentile(50) is None
        assert hist.percentile(0) is None
        assert hist.percentile(100) is None

    def test_percentile_out_of_range_raises(self):
        hist = Histogram("x")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(100.1)

    def test_single_sample_returns_that_sample_exactly(self):
        hist = Histogram("x", buckets=(1.0, 10.0, float("inf")))
        hist.observe(3.5)
        for q in (0, 1, 50, 99, 100):
            assert hist.percentile(q) == pytest.approx(3.5)

    def test_top_bucket_clamps_to_observed_max_not_inf(self):
        hist = Histogram("x", buckets=(1.0, float("inf")))
        hist.observe(0.5)
        hist.observe(500.0)
        p100 = hist.percentile(100)
        assert math.isfinite(p100)
        assert p100 == pytest.approx(500.0)

    def test_percentiles_are_monotone_and_bounded(self):
        hist = Histogram("x", buckets=(0.1, 0.5, 1.0, 5.0, float("inf")))
        for value in (0.05, 0.2, 0.3, 0.7, 0.9, 2.0, 4.0, 8.0):
            hist.observe(value)
        estimates = [hist.percentile(q) for q in (0, 10, 25, 50, 75, 90, 99, 100)]
        assert estimates == sorted(estimates)
        assert all(0.05 <= e <= 8.0 for e in estimates)

    def test_zero_percentile_is_observed_min(self):
        hist = Histogram("x", buckets=(1.0, float("inf")))
        hist.observe(0.25)
        hist.observe(7.0)
        assert hist.percentile(0) == pytest.approx(0.25)


class TestRegistryConflicts:
    def test_counter_then_histogram_conflict_raises(self):
        metrics = Metrics()
        metrics.counter("serve.latency")
        with pytest.raises(ValueError, match="already registered"):
            metrics.histogram("serve.latency")

    def test_histogram_then_counter_conflict_raises(self):
        metrics = Metrics()
        metrics.histogram("x")
        with pytest.raises(ValueError, match="already registered"):
            metrics.counter("x")

    def test_gauge_then_counter_conflict_raises(self):
        metrics = Metrics()
        metrics.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            metrics.counter("x")

    def test_same_kind_reregistration_is_get_or_create(self):
        metrics = Metrics()
        metrics.counter("x").inc(2)
        assert metrics.counter("x").value == 2.0
