"""The repro.obs metrics registry: counter / gauge / histogram."""

import math

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, Metrics

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("frames")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("frames").inc(-1)

    def test_gauge_last_value_wins(self):
        gauge = Gauge("loss")
        assert math.isnan(gauge.value)
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25
        assert gauge.updates == 2

    def test_histogram_buckets_and_summary(self):
        hist = Histogram("seconds", buckets=(0.1, 1.0, float("inf")))
        for value in (0.05, 0.5, 0.5, 10.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(11.05)
        assert summary["min"] == 0.05
        assert summary["max"] == 10.0
        assert summary["buckets"] == {"0.1": 1, "1.0": 2, "inf": 1}

    def test_histogram_appends_inf_bound(self):
        hist = Histogram("x", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.bounds[-1] == float("inf")
        assert hist.count == 1

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))

    def test_empty_histogram_summary(self):
        summary = Histogram("x").summary()
        assert summary["count"] == 0
        assert summary["min"] is None and summary["max"] is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.gauge("b") is metrics.gauge("b")
        assert metrics.histogram("c") is metrics.histogram("c")

    def test_kind_conflict_raises(self):
        metrics = Metrics()
        metrics.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            metrics.gauge("a")

    def test_snapshot_groups_by_kind(self):
        metrics = Metrics()
        metrics.counter("steps").inc(3)
        metrics.gauge("loss").set(0.5)
        metrics.histogram("seconds", DEFAULT_BUCKETS).observe(0.01)
        snap = metrics.snapshot()
        assert snap["counters"] == {"steps": 3.0}
        assert snap["gauges"] == {"loss": 0.5}
        assert snap["histograms"]["seconds"]["count"] == 1

    def test_names_filters_by_kind(self):
        metrics = Metrics()
        metrics.counter("z")
        metrics.counter("a")
        metrics.gauge("m")
        assert metrics.names("counter") == ["a", "z"]
        assert metrics.names() == ["a", "m", "z"]
