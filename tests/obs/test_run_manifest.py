"""Run identity: manifests, config digests, span_scope no-op path."""

import json
import os
from dataclasses import dataclass

import pytest

from repro.obs import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA_VERSION,
    Run,
    config_digest,
    host_info,
    span_scope,
)

pytestmark = pytest.mark.obs


@dataclass
class _Config:
    steps: int = 5
    lr: float = 1e-4


class TestConfigDigest:
    def test_dict_key_order_does_not_matter(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_different_configs_differ(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_dataclass_matches_equivalent_dict(self):
        assert config_digest(_Config()) == config_digest({"steps": 5, "lr": 1e-4})

    def test_none_and_arbitrary_objects_digest(self):
        assert len(config_digest(None)) == 16
        assert len(config_digest(object())) == 16


class TestHostInfo:
    def test_fields_present(self):
        info = host_info()
        for key in ("platform", "python", "numpy", "hostname", "pid"):
            assert key in info


class TestRun:
    def test_enter_writes_running_manifest(self, tmp_path):
        directory = str(tmp_path / "run")
        with Run(directory, name="t", config={"x": 1}, seeds={"s": 3}) as run:
            document = json.load(open(run.manifest_path))
            assert document["status"] == "running"
            assert document["schema_version"] == MANIFEST_SCHEMA_VERSION
            assert document["seeds"] == {"s": 3}
            assert document["config_digest"] == config_digest({"x": 1})
        document = json.load(open(os.path.join(directory, MANIFEST_NAME)))
        assert document["status"] == "completed"
        assert document["started_unix"] <= document["finished_unix"]

    def test_failure_recorded_in_manifest(self, tmp_path):
        directory = str(tmp_path / "run")
        with pytest.raises(RuntimeError):
            with Run(directory, name="t") as run:
                with run.span("stage"):
                    raise RuntimeError("boom")
        document = json.load(open(os.path.join(directory, MANIFEST_NAME)))
        assert document["status"] == "failed"
        assert "RuntimeError" in document["error"]
        # The failing span still made it to the trace with error status.
        lines = open(os.path.join(directory, "trace.jsonl")).read().splitlines()
        assert json.loads(lines[0])["status"] == "error"

    def test_metrics_snapshot_lands_in_manifest(self, tmp_path):
        directory = str(tmp_path / "run")
        with Run(directory, name="t") as run:
            run.metrics.counter("steps").inc(7)
            run.metrics.gauge("loss").set(0.25)
        document = json.load(open(os.path.join(directory, MANIFEST_NAME)))
        assert document["metrics"]["counters"] == {"steps": 7.0}
        assert document["metrics"]["gauges"] == {"loss": 0.25}

    def test_checkpoint_persists_midrun(self, tmp_path):
        directory = str(tmp_path / "run")
        with Run(directory, name="t", buffer_limit=100) as run:
            with run.span("early"):
                pass
            run.metrics.counter("c").inc()
            run.checkpoint()
            midway = json.load(open(run.manifest_path))
            trace_lines = open(run.trace_path).read().splitlines()
            assert midway["status"] == "running"
            assert midway["metrics"]["counters"] == {"c": 1.0}
            assert len(trace_lines) == 1

    def test_run_ids_unique(self, tmp_path):
        run_a = Run(str(tmp_path / "a"), name="x")
        run_b = Run(str(tmp_path / "b"), name="x")
        assert run_a.run_id != run_b.run_id

    def test_manifest_written_atomically(self, tmp_path):
        directory = str(tmp_path / "run")
        with Run(directory, name="t"):
            leftovers = [f for f in os.listdir(directory) if f.endswith(".tmp")]
            assert leftovers == []


class TestSpanScope:
    def test_none_is_noop(self):
        with span_scope(None, "anything", attr=1):
            pass  # must not raise and must cost nothing

    def test_run_scope_records(self, tmp_path):
        with Run(str(tmp_path / "run"), name="t") as run:
            with span_scope(run, "stage", k=2):
                pass
        assert run.tracer.spans[0].name == "stage"
        assert run.tracer.spans[0].attrs == {"k": 2}
