"""Report tooling: perf-report round-trip with manifest fields, run
loading, tree rendering, and the two-run diff."""

import json
import os

import pytest

from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    Run,
    append_jsonl,
    config_digest,
    diff_runs,
    host_info,
    load_run,
    metric_deltas,
    render_diff,
    render_run,
    span_path_totals,
)
from repro.perf import REPORT_SCHEMA_VERSION, load_report, write_report

pytestmark = pytest.mark.obs


class TestPerfReportRoundTrip:
    """Satellite: BENCH-style reports now carry a run-manifest stamp."""

    def _payload(self):
        return {
            "benchmark": "unit",
            "batched_fps": 10.0,
            "manifest": {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "run_id": "bench-test",
                "config_digest": config_digest({"frames": 8, "seed": 0}),
                "seeds": {"video": 0, "detector": 0},
                "host": host_info(),
            },
        }

    def test_manifest_fields_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        write_report(path, self._payload())
        loaded = load_report(path)
        assert loaded["schema_version"] == REPORT_SCHEMA_VERSION
        manifest = loaded["manifest"]
        assert manifest["run_id"] == "bench-test"
        assert manifest["config_digest"] == config_digest({"seed": 0, "frames": 8})
        assert manifest["seeds"] == {"video": 0, "detector": 0}
        assert set(manifest["host"]) >= {"platform", "python", "numpy",
                                         "hostname", "pid"}

    def test_history_append_is_machine_readable(self, tmp_path):
        path = str(tmp_path / "BENCH_history.jsonl")
        append_jsonl(path, {"batched_fps": 10.0, "run_id": "a"})
        append_jsonl(path, {"batched_fps": 11.0, "run_id": "b"})
        lines = [json.loads(line) for line in open(path)]
        assert [entry["run_id"] for entry in lines] == ["a", "b"]
        assert lines[1]["batched_fps"] == 11.0

    def test_history_append_never_leaves_a_torn_line(self, tmp_path):
        # The durability contract: payload + newline go down in ONE write
        # and are fsynced before close, so after any append the file is a
        # whole number of parseable lines — even for multi-KB records.
        path = str(tmp_path / "BENCH_history.jsonl")
        big = {"run_id": "big", "payload": {f"metric_{i}": float(i)
                                            for i in range(2000)}}
        append_jsonl(path, big)
        append_jsonl(path, {"run_id": "after"})
        raw = open(path).read()
        assert raw.endswith("\n")
        parsed = [json.loads(line) for line in raw.splitlines()]
        assert [entry["run_id"] for entry in parsed] == ["big", "after"]
        assert parsed[0]["payload"]["metric_1999"] == 1999.0


def make_run(directory, marker=0.0, fail=False):
    try:
        with Run(str(directory), name="demo", config={"k": 1},
                 seeds={"seed": 0}) as run:
            with run.span("train", steps=2):
                with run.span("steps"):
                    run.tracer.add("items", 4)
            with run.span("eval"):
                with run.span("render"):
                    pass
                with run.span("render"):
                    pass
            run.metrics.counter("steps_run").inc(2)
            run.metrics.gauge("loss").set(0.5 + marker)
            if fail:
                raise RuntimeError("boom")
    except RuntimeError:
        pass
    return load_run(str(directory))


class TestLoadAndRender:
    def test_load_run_from_directory_and_manifest_path(self, tmp_path):
        loaded = make_run(tmp_path / "r")
        via_manifest = load_run(os.path.join(loaded.path, "manifest.json"))
        assert via_manifest.run_id == loaded.run_id
        assert len(via_manifest.spans) == len(loaded.spans)

    def test_render_contains_tree_and_counters(self, tmp_path):
        loaded = make_run(tmp_path / "r")
        text = render_run(loaded)
        assert loaded.run_id in text
        assert "train" in text and "eval" in text and "render" in text
        assert "└─" in text or "├─" in text
        assert "steps_run" in text

    def test_missing_trace_loads_empty(self, tmp_path):
        loaded = make_run(tmp_path / "r")
        os.unlink(os.path.join(loaded.path, "trace.jsonl"))
        reloaded = load_run(loaded.path)
        assert reloaded.spans == []
        assert "(no spans recorded)" in render_run(reloaded)

    def test_span_path_totals_aggregates_repeats(self, tmp_path):
        loaded = make_run(tmp_path / "r")
        totals = span_path_totals(loaded)
        assert totals["eval/render"][1] == 2  # two render calls, one path
        assert totals["train/steps"][1] == 1
        assert totals["train"][0] >= totals["train/steps"][0]


class TestDiff:
    def test_same_seed_runs_have_zero_metric_deltas(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b")
        diff = diff_runs(a, b)
        assert diff["config_equal"] and diff["status_equal"]
        assert diff["metrics"]["deterministic_equal"]
        text = render_diff(diff)
        assert "zero deltas" in text

    def test_metric_drift_is_reported(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b", marker=0.1)
        deltas = metric_deltas(a, b)
        assert not deltas["deterministic_equal"]
        assert deltas["gauges"]["loss"]["delta"] == pytest.approx(0.1)
        assert "loss" in render_diff(diff_runs(a, b))

    def test_exit_status_comparison(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b", fail=True)
        diff = diff_runs(a, b)
        assert not diff["status_equal"]
        assert "DIFFERS" in render_diff(diff)

    def test_span_wall_clock_deltas_per_path(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b")
        diff = diff_runs(a, b)
        entry = diff["spans"]["eval/render"]
        assert entry["a_calls"] == entry["b_calls"] == 2
        assert entry["delta_seconds"] == pytest.approx(
            entry["b_seconds"] - entry["a_seconds"])

    def test_recovery_counters_surface(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b")
        b.manifest["metrics"]["counters"]["events.divergence_recovery"] = 2.0
        diff = diff_runs(a, b)
        assert diff["recovery"]["b"] == {"events.divergence_recovery": 2.0}
        assert "divergence_recovery" in render_diff(diff)
