"""End-to-end telemetry: one run covering attack training through eval,
plus a same-seed two-run diff with zero deterministic deltas."""

import os
import subprocess
import sys

import pytest

from repro.attack.config import AttackConfig
from repro.attack.trainer import train_patch_attack
from repro.detection.config import reduced_config
from repro.detection.model import TinyYolo
from repro.eval.protocol import run_challenge
from repro.obs import Metrics, Run, build_tree, diff_runs, load_run, render_run
from repro.runtime import DivergenceError, DivergenceGuard
from repro.scene.video import AttackScenario
from repro.utils.logging import TrainLog

pytestmark = pytest.mark.obs

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

TINY_ATTACK = dict(steps=2, warmup_steps=1, batch_frames=3, frame_pool=3,
                   gan_batch=4, k=20)


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """One tiny attack + detector shared by every test in this module."""
    model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)
    scenario = AttackScenario(image_size=64)
    config = AttackConfig(**TINY_ATTACK)
    directory = str(tmp_path_factory.mktemp("train_run"))
    with Run(directory, name="attack-eval", config=config,
             seeds={"attack": config.seed}) as run:
        artifact = train_patch_attack(model, scenario, config, obs=run)
        run_challenge(model, scenario, "rotation/fix", artifact=artifact,
                      n_runs=1, seed=0, obs=run)
    return model, scenario, artifact, directory


class TestFullTrace:
    def test_span_tree_covers_train_render_eval(self, trained):
        _, _, _, directory = trained
        loaded = load_run(directory)
        names = {span.name for span in loaded.spans}
        assert {"attack.train", "attack.warmup", "gan.train", "attack.steps",
                "eval.challenge", "eval.render", "detect.batched",
                "eval.score"} <= names
        roots = build_tree(loaded.spans)
        assert [r.name for r in roots] == ["attack.train", "eval.challenge"]
        attack = roots[0]
        assert "attack.warmup" in [c.name for c in attack.children]
        warmup = next(c for c in attack.children if c.name == "attack.warmup")
        assert [c.name for c in warmup.children] == ["gan.train"]
        eval_root = roots[1]
        child_names = [c.name for c in eval_root.children]
        assert child_names == ["eval.render", "detect.batched", "eval.score"]

    def test_manifest_records_counters_and_status(self, trained):
        _, _, _, directory = trained
        loaded = load_run(directory)
        assert loaded.status == "completed"
        counters = loaded.metrics()["counters"]
        assert counters["attack.steps_run"] == TINY_ATTACK["steps"]
        assert counters["gan.steps_run"] == TINY_ATTACK["warmup_steps"]
        assert counters["eval.challenges_run"] == 1
        assert counters["detect.frames"] > 0
        gauges = loaded.metrics()["gauges"]
        assert "eval.rotation/fix.pwc" in gauges
        assert "attack.g_loss" in gauges

    def test_render_mentions_all_stages(self, trained):
        _, _, _, directory = trained
        text = render_run(load_run(directory))
        for stage in ("attack.train", "eval.challenge", "eval.render"):
            assert stage in text

    def test_span_times_monotone_within_parents(self, trained):
        _, _, _, directory = trained
        loaded = load_run(directory)
        for root in build_tree(loaded.spans):
            for node in root.walk():
                for child in node.children:
                    assert child.record.start_s >= node.record.start_s
                    assert child.record.end_s <= node.record.end_s + 1e-6


class TestSameSeedDiff:
    def test_two_eval_runs_same_seed_zero_metric_deltas(self, trained, tmp_path):
        model, scenario, artifact, _ = trained
        directories = []
        for tag in ("a", "b"):
            directory = str(tmp_path / tag)
            with Run(directory, name="eval", config={"seed": 0},
                     seeds={"eval": 0}) as run:
                run_challenge(model, scenario, "rotation/fix",
                              artifact=artifact, n_runs=1, seed=0, obs=run)
            directories.append(directory)
        diff = diff_runs(load_run(directories[0]), load_run(directories[1]))
        assert diff["config_equal"] and diff["status_equal"]
        assert diff["metrics"]["deterministic_equal"], diff["metrics"]

    def test_obs_report_cli_diff(self, trained, tmp_path):
        model, scenario, artifact, _ = trained
        directories = []
        for tag in ("a", "b"):
            directory = str(tmp_path / tag)
            with Run(directory, name="eval", seeds={"eval": 0}) as run:
                run_challenge(model, scenario, "rotation/fix",
                              artifact=artifact, n_runs=1, seed=0, obs=run)
            directories.append(directory)
        script = os.path.join(REPO_ROOT, "scripts", "obs_report.py")
        env = {**os.environ,
               "PYTHONPATH": os.path.join(REPO_ROOT, "src")}
        render = subprocess.run(
            [sys.executable, script, directories[0]],
            capture_output=True, text=True, env=env, timeout=120)
        assert render.returncode == 0, render.stderr
        assert "eval.challenge" in render.stdout
        diffed = subprocess.run(
            [sys.executable, script, "--diff", *directories],
            capture_output=True, text=True, env=env, timeout=120)
        assert diffed.returncode == 0, diffed.stderr
        assert "zero deltas" in diffed.stdout


class TestProducersPublish:
    def test_trainlog_binds_gauges_and_event_counters(self):
        metrics = Metrics()
        log = TrainLog("unit").bind_metrics(metrics)
        log.log(0, loss=2.0)
        log.log(1, loss=1.0)
        log.event(1, "divergence_recovery", reason="non-finite")
        snap = metrics.snapshot()
        assert snap["gauges"]["unit.loss"] == 1.0
        assert snap["counters"]["unit.records"] == 2.0
        assert snap["counters"]["events.divergence_recovery"] == 1.0

    def test_guard_publishes_divergence_counters(self):
        metrics = Metrics()
        guard = DivergenceGuard(metrics=metrics)
        with pytest.raises(DivergenceError):
            guard.check(3, loss=float("nan"))
        counters = metrics.snapshot()["counters"]
        assert counters["guard.divergence"] == 1.0
        assert counters["guard.divergence.loss"] == 1.0

    def test_guard_without_metrics_still_raises(self):
        with pytest.raises(DivergenceError):
            DivergenceGuard().check(0, loss=float("inf"))

    def test_perf_publish_counts_are_deterministic_surface(self):
        from repro.perf import PerfRecorder

        perf = PerfRecorder()
        with perf.stage("forward", items=8):
            pass
        perf.count("frames", 8)
        metrics = Metrics()
        perf.publish(metrics, prefix="perf.unit")
        snap = metrics.snapshot()
        assert snap["counters"]["perf.unit.forward.calls"] == 1.0
        assert snap["counters"]["perf.unit.forward.items"] == 8.0
        assert snap["counters"]["perf.unit.frames"] == 8.0
        assert snap["histograms"]["perf.unit.forward.seconds"]["count"] == 1
