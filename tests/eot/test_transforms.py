"""EOT transforms: identity behaviour, geometry, differentiability."""

import numpy as np
import pytest

from repro.eot import (
    TRICK_NAMES,
    TRICK_NUMBERS,
    TransformParams,
    brightness,
    gamma,
    perspective,
    resize,
    rotate,
)
from repro.nn import Tensor


@pytest.fixture
def patch(rng):
    return Tensor(rng.random((2, 1, 16, 16)).astype(np.float32), requires_grad=True)


class TestTrickNumbering:
    def test_paper_numbering(self):
        assert TRICK_NUMBERS == {
            1: "resize", 2: "rotation", 3: "brightness", 4: "gamma", 5: "perspective"
        }
        assert TRICK_NAMES["perspective"] == 5


class TestResize:
    def test_output_keeps_shape(self, patch):
        assert resize(patch, 0.7).shape == patch.shape

    def test_scale_one_near_identity(self, patch):
        out = resize(patch, 1.0)
        np.testing.assert_allclose(out.data, patch.data, atol=1e-4)

    def test_shrink_pads_with_background(self):
        dark = Tensor(np.zeros((1, 1, 16, 16), dtype=np.float32))
        out = resize(dark, 0.5)
        # Corners now read the white (1.0) padding.
        assert out.data[0, 0, 0, 0] == pytest.approx(1.0)
        assert out.data[0, 0, 8, 8] == pytest.approx(0.0, abs=1e-5)

    def test_gradients_flow(self, patch):
        resize(patch, 0.8).sum().backward()
        assert patch.grad is not None


class TestRotate:
    def test_zero_angle_identity(self, patch):
        np.testing.assert_allclose(rotate(patch, 0.0).data, patch.data, atol=1e-4)

    def test_four_quarter_turns_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.random((1, 1, 17, 17)).astype(np.float32))
        out = x
        for _ in range(4):
            out = rotate(out, 90.0)
        # Center region should come back (borders may touch padding).
        np.testing.assert_allclose(
            out.data[0, 0, 4:13, 4:13], x.data[0, 0, 4:13, 4:13], atol=0.05
        )

    def test_180_flips(self):
        x = np.ones((1, 1, 9, 9), dtype=np.float32)
        x[0, 0, 0, :] = 0.0  # dark top row
        out = rotate(Tensor(x), 180.0)
        assert out.data[0, 0, -1, 4] == pytest.approx(0.0, abs=0.05)
        assert out.data[0, 0, 0, 4] == pytest.approx(1.0, abs=0.05)

    def test_gradients_flow(self, patch):
        rotate(patch, 35.0).sum().backward()
        assert patch.grad is not None


class TestPhotometric:
    def test_brightness_adds_and_clips(self):
        x = Tensor(np.asarray([[[[0.9, 0.2]]]], dtype=np.float32))
        out = brightness(x, 0.3)
        np.testing.assert_allclose(out.data.reshape(-1), [1.0, 0.5], atol=1e-6)

    def test_gamma_identity_at_one(self, patch):
        np.testing.assert_allclose(gamma(patch, 1.0).data, patch.data, atol=1e-3)

    def test_gamma_darkens_above_one(self):
        x = Tensor(np.full((1, 1, 2, 2), 0.5, dtype=np.float32))
        assert gamma(x, 2.0).data[0, 0, 0, 0] == pytest.approx(0.25, abs=1e-3)

    def test_gamma_rejects_nonpositive(self, patch):
        with pytest.raises(ValueError):
            gamma(patch, 0.0)

    def test_gamma_is_nonlinear_unlike_brightness(self):
        # The paper argues (4) beats (3) because print/lighting response is
        # non-linear: gamma changes dark and bright pixels differently.
        x = Tensor(np.asarray([[[[0.2, 0.8]]]], dtype=np.float32))
        bright = brightness(x, 0.1).data.reshape(-1) - x.data.reshape(-1)
        gam = gamma(x, 0.7).data.reshape(-1) - x.data.reshape(-1)
        assert bright[0] == pytest.approx(bright[1], abs=1e-6)
        assert abs(gam[0] - gam[1]) > 1e-3


class TestPerspective:
    def test_zero_tilt_identity(self, patch):
        np.testing.assert_allclose(perspective(patch, 0.0).data, patch.data, atol=1e-4)

    def test_tilt_squeezes_top(self):
        # A black vertical stripe widens less at the bottom than the top
        # shrinks: check the far (top) row samples from a wider source span,
        # pulling in white background at the edges.
        x = np.zeros((1, 1, 20, 20), dtype=np.float32)
        out = perspective(Tensor(x), 0.6)
        top_white = (out.data[0, 0, 0] > 0.5).sum()
        bottom_white = (out.data[0, 0, -1] > 0.5).sum()
        assert top_white > bottom_white

    def test_gradients_flow(self, patch):
        perspective(patch, 0.5).sum().backward()
        assert patch.grad is not None


class TestTransformParams:
    def test_defaults_are_identity(self):
        params = TransformParams()
        assert params.scale == 1.0
        assert params.angle_degrees == 0.0
        assert params.brightness_delta == 0.0
        assert params.gamma_value == 1.0
        assert params.perspective_tilt == 0.0
