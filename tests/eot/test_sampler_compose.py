"""EOT sampling distributions and the composed pipeline."""

import numpy as np
import pytest

from repro.eot import ALL_TRICKS, EOTPipeline, EOTSampler, tricks_from_numbers
from repro.nn import Tensor


class TestTricksFromNumbers:
    def test_paper_subset(self):
        assert tricks_from_numbers((1, 2, 4, 5)) == frozenset(
            {"resize", "rotation", "gamma", "perspective"}
        )

    def test_unknown_number_raises(self):
        with pytest.raises(KeyError):
            tricks_from_numbers((7,))


class TestSampler:
    def test_disabled_tricks_stay_identity(self, rng):
        sampler = EOTSampler(tricks=frozenset({"rotation"}))
        for _ in range(10):
            params = sampler.sample(rng)
            assert params.scale == 1.0
            assert params.gamma_value == 1.0
            assert params.brightness_delta == 0.0
            assert params.perspective_tilt == 0.0

    def test_enabled_tricks_vary(self, rng):
        sampler = EOTSampler(tricks=ALL_TRICKS)
        angles = {sampler.sample(rng).angle_degrees for _ in range(10)}
        assert len(angles) > 1

    def test_samples_within_ranges(self, rng):
        sampler = EOTSampler(tricks=ALL_TRICKS)
        for _ in range(50):
            params = sampler.sample(rng)
            assert sampler.scale_range[0] <= params.scale <= sampler.scale_range[1]
            assert sampler.gamma_range[0] <= params.gamma_value <= sampler.gamma_range[1] + 1e-6
            assert sampler.tilt_range[0] <= params.perspective_tilt <= sampler.tilt_range[1]

    def test_unknown_trick_rejected(self):
        with pytest.raises(ValueError):
            EOTSampler(tricks=frozenset({"warp-drive"}))

    def test_deterministic_given_seed(self):
        sampler = EOTSampler()
        a = sampler.sample(np.random.default_rng(7))
        b = sampler.sample(np.random.default_rng(7))
        assert a == b


class TestPipeline:
    def test_identity_when_no_tricks(self, rng):
        pipeline = EOTPipeline.with_tricks(frozenset())
        patch = Tensor(rng.random((1, 1, 12, 12)).astype(np.float32),
                       requires_grad=True)
        out, _, params = pipeline.sample_and_apply(patch, rng)
        np.testing.assert_allclose(out.data, patch.data, atol=1e-5)

    def test_full_pipeline_preserves_shape(self, rng):
        pipeline = EOTPipeline.with_tricks(ALL_TRICKS)
        patch = Tensor(rng.random((1, 1, 24, 24)).astype(np.float32),
                       requires_grad=True)
        out, _, _ = pipeline.sample_and_apply(patch, rng)
        assert out.shape == patch.shape
        assert ((out.data >= -1e-5) & (out.data <= 1 + 1e-5)).all()

    def test_gradients_flow_through_full_chain(self, rng):
        pipeline = EOTPipeline.with_tricks(ALL_TRICKS)
        patch = Tensor(rng.random((1, 1, 24, 24)).astype(np.float32),
                       requires_grad=True)
        out, _, _ = pipeline.sample_and_apply(patch, rng)
        out.sum().backward()
        assert patch.grad is not None
        assert np.abs(patch.grad).sum() > 0

    def test_alpha_gets_geometric_transforms_only(self, rng):
        pipeline = EOTPipeline.with_tricks(ALL_TRICKS)
        patch = Tensor(np.zeros((1, 1, 16, 16), dtype=np.float32))
        alpha = Tensor(np.ones((1, 1, 16, 16), dtype=np.float32))
        _, alpha_out, params = pipeline.sample_and_apply(patch, rng, alpha=alpha)
        # Alpha remains in [0, 1] regardless of photometric params.
        assert alpha_out is not None
        assert ((alpha_out.data >= 0) & (alpha_out.data <= 1 + 1e-5)).all()

    def test_alpha_shrinks_with_patch_on_resize(self, rng):
        pipeline = EOTPipeline.with_tricks(frozenset({"resize"}))
        pipeline.sampler.scale_range = (0.5, 0.5)
        alpha = Tensor(np.ones((1, 1, 16, 16), dtype=np.float32))
        patch = Tensor(np.zeros((1, 1, 16, 16), dtype=np.float32))
        _, alpha_out, _ = pipeline.sample_and_apply(patch, rng, alpha=alpha)
        # Alpha's out-of-range padding is transparent (0), so the border
        # becomes transparent after shrinking.
        assert alpha_out.data[0, 0, 0, 0] == pytest.approx(0.0, abs=1e-5)
        assert alpha_out.data[0, 0, 8, 8] == pytest.approx(1.0, abs=1e-5)

    def test_fixed_params_applied_in_order(self, rng):
        from repro.eot import TransformParams

        pipeline = EOTPipeline.with_tricks(ALL_TRICKS)
        patch = Tensor(rng.random((1, 1, 12, 12)).astype(np.float32))
        params = TransformParams(scale=0.8, angle_degrees=45.0,
                                 brightness_delta=0.1, gamma_value=1.2,
                                 perspective_tilt=0.3)
        out = pipeline.apply(patch, params)
        assert out.shape == patch.shape
        assert np.isfinite(out.data).all()
