"""Printability-aware transforms: print_response and blur3."""

import numpy as np
import pytest

from repro.eot.transforms import blur3, print_response
from repro.nn import Tensor


class TestPrintResponse:
    def test_compresses_gamut(self):
        patch = Tensor(np.asarray([[[[0.0, 1.0]]]], dtype=np.float32))
        out = print_response(patch).data.reshape(-1)
        assert out[0] == pytest.approx(0.06, abs=0.01)
        assert out[1] == pytest.approx(0.93, abs=0.01)

    def test_monotone(self, rng):
        values = np.sort(rng.random(16).astype(np.float32))
        patch = Tensor(values.reshape(1, 1, 4, 4))
        out = print_response(patch).data.reshape(-1)
        flat_in = values.reshape(-1)
        order = np.argsort(flat_in)
        assert (np.diff(out[order]) >= -1e-6).all()

    def test_differentiable(self, rng):
        patch = Tensor(rng.random((1, 1, 4, 4)).astype(np.float32),
                       requires_grad=True)
        print_response(patch).sum().backward()
        assert patch.grad is not None
        assert (patch.grad > 0).all()  # strictly monotone map

    def test_matches_physical_print_model_for_monochrome(self, rng):
        from repro.scene.physical import PrintModel, print_patch

        gray = rng.random((1, 8, 8)).astype(np.float32)
        differentiable = print_response(Tensor(gray[None])).data[0, 0]
        # The stochastic print model without gain jitter reduces to the same
        # deterministic response for monochrome input.
        model = PrintModel(gain_jitter=0.0, crosstalk=0.0)
        printed = print_patch(gray, np.random.default_rng(0), model)[0]
        np.testing.assert_allclose(differentiable, printed, atol=1e-5)


class TestBlur3:
    def test_preserves_shape(self, rng):
        image = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        assert blur3(image).shape == (2, 3, 8, 8)

    def test_constant_image_unchanged_in_interior(self):
        image = Tensor(np.full((1, 1, 6, 6), 0.4, dtype=np.float32))
        out = blur3(image).data
        np.testing.assert_allclose(out[0, 0, 2:4, 2:4], 0.4, atol=1e-6)

    def test_reduces_contrast_of_checkerboard(self):
        board = np.indices((8, 8)).sum(axis=0) % 2
        image = Tensor(board[None, None].astype(np.float32))
        out = blur3(image).data
        assert out.std() < image.data.std()

    def test_channels_blurred_independently(self, rng):
        image = np.zeros((1, 3, 6, 6), dtype=np.float32)
        image[0, 0, 3, 3] = 1.0  # impulse in channel 0 only
        out = blur3(Tensor(image)).data
        assert out[0, 0].sum() > 0
        np.testing.assert_allclose(out[0, 1], 0.0)
        np.testing.assert_allclose(out[0, 2], 0.0)

    def test_differentiable(self, rng):
        image = Tensor(rng.random((1, 3, 6, 6)).astype(np.float32),
                       requires_grad=True)
        blur3(image).sum().backward()
        assert image.grad is not None
