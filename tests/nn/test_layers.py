"""Module system: parameter discovery, train/eval, state dicts."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


def make_mlp():
    return nn.Sequential(
        nn.Linear(4, 8, rng=np.random.default_rng(0)),
        nn.ReLU(),
        nn.Linear(8, 2, rng=np.random.default_rng(1)),
    )


class TestModule:
    def test_parameters_discovered_recursively(self):
        mlp = make_mlp()
        assert len(mlp.parameters()) == 4  # two weights + two biases

    def test_named_parameters_have_dotted_paths(self):
        mlp = make_mlp()
        names = dict(mlp.named_parameters())
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters(self):
        mlp = make_mlp()
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.ConvBlock(3, 8), nn.ConvBlock(8, 8))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self):
        mlp = make_mlp()
        out = mlp(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_state_dict_roundtrip(self):
        a = make_mlp()
        b = make_mlp()
        for p in a.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_load_state_dict_rejects_unknown_key(self):
        mlp = make_mlp()
        with pytest.raises(KeyError):
            mlp.load_state_dict({"nope": np.zeros(3)})

    def test_load_state_dict_rejects_shape_mismatch(self):
        mlp = make_mlp()
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "buffer:running_mean" in state
        assert "buffer:running_var" in state


class TestLayers:
    def test_conv_block_shape(self):
        block = nn.ConvBlock(3, 8, 3)
        out = block(Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (2, 8, 16, 16)

    def test_conv_stride_halves(self):
        conv = nn.Conv2d(3, 4, 3, stride=2, padding=1)
        out = conv(Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (1, 4, 4, 4)

    def test_linear_shape(self):
        layer = nn.Linear(10, 3)
        assert layer(Tensor(np.zeros((7, 10), dtype=np.float32))).shape == (7, 3)

    def test_flatten(self):
        flat = nn.Flatten()
        assert flat(Tensor(np.zeros((2, 3, 4, 5), dtype=np.float32))).shape == (2, 60)

    def test_sequential_iteration_and_indexing(self):
        mlp = make_mlp()
        assert len(list(mlp)) == 3
        assert isinstance(mlp[0], nn.Linear)

    def test_sequential_append(self):
        seq = nn.Sequential(nn.ReLU())
        seq.append(nn.Tanh())
        assert len(list(seq)) == 2
        assert len(list(seq.modules())) == 3

    def test_upsample_layer(self):
        up = nn.Upsample(2)
        assert up(Tensor(np.zeros((1, 2, 3, 3), dtype=np.float32))).shape == (1, 2, 6, 6)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.nn import load_module, save_module

        a = make_mlp()
        path = str(tmp_path / "model.npz")
        save_module(a, path)
        b = make_mlp()
        for p in b.parameters():
            p.data *= 0.0
        load_module(b, path)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_save_load_preserves_buffers(self, tmp_path):
        from repro.nn import load_module, save_module

        bn = nn.BatchNorm2d(3)
        bn.running_mean += 5.0
        path = str(tmp_path / "bn.npz")
        save_module(bn, path)
        fresh = nn.BatchNorm2d(3)
        load_module(fresh, path)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
