"""Int8 quantization: calibration, exact GEMM, guards, round-trips.

Pins the DESIGN.md §15 contract: the quantized executor is an
accuracy-vs-speed point with *deterministic* numerics — same calibration
frames produce byte-identical scales and detections, the chunked sgemm
reduction is bit-equal to an int64 integer oracle (the "exact integers in
float32" argument, verified at the maximum supported reduction depth),
degenerate inputs can never produce zero/NaN scales, and quantizing
without calibration fails loudly everywhere the knob exists.
"""

import numpy as np
import pytest

from repro.av import AvPipeline
from repro.detection import TinyYolo, reduced_config
from repro.nn import (
    CalibrationResult,
    QuantizationError,
    QuantizedDetector,
    Tensor,
    activation_error_stats,
    calibrate_detector,
    quant_runtime_totals,
    quantize_detector,
    resolve_inference_model,
    save_module,
)
from repro.nn.functional import ConvWorkspace
from repro.nn.lowering import FusedConvSpec
from repro.nn.quant import (
    INT8_QMAX,
    K_CHUNK,
    MAX_REDUCE_K,
    ActivationObserver,
    _QuantConvExec,
    QuantConvSpec,
)
from repro.nn.serialization import load_state, save_state

pytestmark = pytest.mark.quant

_BLOCKS = ("conv1", "conv2", "conv3", "conv4", "conv5", "conv6",
           "conv7", "conv8", "conv9", "conv10", "conv11")


def make_model(input_size=64, width=0.25, seed=0, stats_seed=1):
    """Detector with non-trivial BN running statistics (as in the
    lowering suite: fresh-model statistics would make folding — and the
    fold→quantize composition — nearly a no-op)."""
    model = TinyYolo(reduced_config(input_size=input_size,
                                    width_multiplier=width), seed=seed)
    rng = np.random.default_rng(stats_seed)
    for name in _BLOCKS:
        bn = getattr(model, name).bn
        bn.running_mean[:] = rng.normal(
            0, 0.05, bn.running_mean.shape).astype(np.float32)
        bn.running_var[:] = (
            1.0 + rng.random(bn.running_var.shape) * 0.5).astype(np.float32)
    return model.eval()


def make_frames(n=8, input_size=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3, input_size, input_size)).astype(np.float32)


def quantized_pair(seed=0, stats_seed=1):
    model = make_model(seed=seed, stats_seed=stats_seed)
    calibration = calibrate_detector(model, make_frames())
    return model, quantize_detector(model, calibration)


# ----------------------------------------------------------------------
# Calibration determinism (satellite 4)
# ----------------------------------------------------------------------

class TestCalibrationDeterminism:
    def test_same_frames_give_byte_identical_scales(self):
        frames = make_frames()
        results = []
        for _ in range(2):
            model = make_model()
            calibration = calibrate_detector(model, frames)
            quantized = quantize_detector(model, calibration)
            results.append((calibration, quantized))
        (cal_a, q_a), (cal_b, q_b) = results
        assert cal_a.ranges == cal_b.ranges
        assert cal_a == cal_b
        assert cal_a.digest() == cal_b.digest()
        for name in _BLOCKS:
            assert (q_a.specs[name].w_scale.tobytes()
                    == q_b.specs[name].w_scale.tobytes())
        assert q_a.quant_digest() == q_b.quant_digest()

    def test_same_calibration_gives_identical_detections(self):
        frames = make_frames()
        x = make_frames(n=4, seed=9)
        outputs = []
        for _ in range(2):
            model = make_model()
            quantized = model.quantize(frames)
            outputs.append(quantized.forward_arrays(x))
        for a, b in zip(*outputs):
            np.testing.assert_array_equal(a, b)

    def test_repeated_forwards_reuse_buffers_deterministically(self):
        _, quantized = quantized_pair()
        x = make_frames(n=3, seed=4)
        first = [a.copy() for a in quantized.forward_arrays(x)]
        quantized.forward_arrays(np.zeros_like(x))  # dirty the buffers
        second = quantized.forward_arrays(x)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_batch_size_does_not_change_calibration(self):
        model = make_model()
        frames = make_frames(n=8)
        a = calibrate_detector(model, frames, batch_size=8)
        b = calibrate_detector(model, frames, batch_size=2)
        # Plan buffers differ per batch shape but the recorded maxima are
        # the same real values (max is batch-associative; the lowered
        # forward itself is shape-deterministic per frame only up to BLAS
        # batching, so compare ranges loosely but scales' finiteness hard).
        for name in a.ranges:
            assert abs(a.ranges[name] - b.ranges[name]) <= 1e-4 * (
                1.0 + a.ranges[name])


# ----------------------------------------------------------------------
# Exactness of the chunked GEMM (tentpole numerics)
# ----------------------------------------------------------------------

def exact_reference(spec, x):
    """Int64 integer oracle for one quantized conv (k=1 layout)."""
    xq = np.clip(np.rint(x * spec.inv_a_scale), -INT8_QMAX, INT8_QMAX)
    xq = xq.astype(np.int64)
    weight = np.concatenate([c.astype(np.int64) for c in spec.weight_chunks],
                            axis=1)
    n, c, h, w = x.shape
    acc = np.einsum("ok,nkp->nop", weight, xq.reshape(n, c, h * w))
    assert np.all(np.abs(acc) <= np.int64(2) ** 31 - 1)
    out = acc.astype(np.int32).astype(np.float32).reshape(
        n, spec.out_channels, h, w)
    out *= spec.dequant_col
    out += spec.bias_col
    if spec.slope is not None:
        out = np.maximum(out, out * np.float32(spec.slope))
    return out


def one_by_one_spec(out_channels, in_channels, seed=0, slope=0.1):
    rng = np.random.default_rng(seed)
    weight = rng.normal(0, 0.1, (out_channels, in_channels, 1, 1)).astype(
        np.float32)
    bias = rng.normal(0, 0.1, out_channels).astype(np.float32)
    return FusedConvSpec("t", weight, bias, stride=1, padding=0, slope=slope)


class TestExactChunkedGemm:
    @pytest.mark.parametrize("k_total", [64, K_CHUNK, K_CHUNK + 1,
                                         3 * K_CHUNK + 17])
    def test_chunked_sgemm_matches_int64_oracle(self, k_total):
        spec = QuantConvSpec(one_by_one_spec(5, k_total), act_amax=3.0)
        assert len(spec.weight_chunks) == -(-k_total // K_CHUNK)
        ws = ConvWorkspace()
        x = (np.random.default_rng(1).normal(0, 1.5, (2, k_total, 3, 3))
             .astype(np.float32))
        exec_ = _QuantConvExec(spec, x.shape, ws)
        np.testing.assert_array_equal(exec_.run(x), exact_reference(spec, x))

    def test_exact_at_max_reduction_depth(self):
        """The asserted overflow bound, exercised at the boundary: the
        largest supported K must still reduce exactly (vs int64)."""
        spec = QuantConvSpec(one_by_one_spec(1, MAX_REDUCE_K), act_amax=4.0)
        ws = ConvWorkspace()
        x = (np.random.default_rng(2).normal(0, 2.0, (1, MAX_REDUCE_K, 1, 1))
             .astype(np.float32))
        exec_ = _QuantConvExec(spec, x.shape, ws)
        np.testing.assert_array_equal(exec_.run(x), exact_reference(spec, x))

    def test_reduction_depth_above_bound_refuses(self):
        with pytest.raises(QuantizationError, match="MAX_REDUCE_K"):
            QuantConvSpec(one_by_one_spec(1, MAX_REDUCE_K + 1), act_amax=1.0)

    def test_chunk_width_respects_float32_exact_range(self):
        # The exactness argument needs K_CHUNK·127² < 2²⁴.
        assert K_CHUNK * INT8_QMAX * INT8_QMAX < 2 ** 24
        assert MAX_REDUCE_K * INT8_QMAX * INT8_QMAX <= 2 ** 31 - 1


# ----------------------------------------------------------------------
# Edge-case guards (satellite 3)
# ----------------------------------------------------------------------

class TestScaleGuards:
    def test_all_zero_activations_keep_positive_scales(self):
        model = make_model()
        calibration = calibrate_detector(
            model, np.zeros((2, 3, 64, 64), np.float32))
        quantized = quantize_detector(model, calibration)
        for name in _BLOCKS:
            spec = quantized.specs[name]
            assert spec.a_scale > 0 and np.isfinite(spec.a_scale)
            assert np.all(spec.w_scale > 0)
            assert np.all(np.isfinite(spec.dequant_col))
        coarse, fine = quantized.forward_arrays(
            np.zeros((1, 3, 64, 64), np.float32))
        assert np.all(np.isfinite(coarse)) and np.all(np.isfinite(fine))

    def test_constant_activation_channels_stay_finite(self):
        model = make_model()
        frames = np.full((2, 3, 64, 64), 0.5, np.float32)
        quantized = model.quantize(frames)
        coarse, fine = quantized.forward_arrays(frames[:1])
        assert np.all(np.isfinite(coarse)) and np.all(np.isfinite(fine))

    def test_dead_filter_gets_unit_scale_not_nan(self):
        fused = one_by_one_spec(3, 8)
        fused.weight[1] = 0.0
        fused.weight_2d[1] = 0.0
        spec = QuantConvSpec(fused, act_amax=1.0)
        assert spec.w_scale[1] == pytest.approx(1.0 / INT8_QMAX)
        assert np.all(np.isfinite(spec.w_scale))
        assert np.all(spec.weight_chunks[0][1] == 0.0)

    def test_nonfinite_activation_range_refuses(self):
        with pytest.raises(QuantizationError, match="finite"):
            QuantConvSpec(one_by_one_spec(2, 4), act_amax=float("nan"))

    def test_nonfinite_weights_refuse(self):
        fused = one_by_one_spec(2, 4)
        fused.weight_2d[0, 0] = np.inf
        with pytest.raises(QuantizationError, match="non-finite"):
            QuantConvSpec(fused, act_amax=1.0)

    def test_out_of_range_activations_saturate(self):
        spec = QuantConvSpec(one_by_one_spec(2, 4, slope=None), act_amax=1.0)
        ws = ConvWorkspace()
        exec_ = _QuantConvExec(spec, (1, 4, 1, 1), ws)
        # 100× beyond the calibrated range must clip to ±127, not wrap.
        wild = np.array([[[[100.0]], [[-100.0]], [[0.5]], [[0.0]]]],
                        np.float32)
        np.testing.assert_array_equal(exec_.run(wild.copy()),
                                      exact_reference(spec, wild))


class TestMissingCalibrationErrors:
    def test_quantize_without_anything_raises(self):
        with pytest.raises(QuantizationError, match="calibration"):
            make_model().quantize()

    def test_resolve_int8_without_calibration_raises(self):
        with pytest.raises(QuantizationError, match="requires calibration"):
            resolve_inference_model(make_model(), precision="int8")

    def test_resolve_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            resolve_inference_model(make_model(), precision="int4")

    def test_pipeline_int8_without_calibration_raises(self):
        with pytest.raises(QuantizationError, match="requires calibration"):
            AvPipeline(make_model(), precision="int8")

    def test_calibration_from_different_graph_raises(self):
        partial = CalibrationResult({"conv1": 1.0}, frames=2, percentile=100.0)
        with pytest.raises(QuantizationError, match="missing activation"):
            quantize_detector(make_model(), partial)

    def test_training_mode_model_refuses_to_quantize(self):
        model = make_model()
        calibration = calibrate_detector(model, make_frames(n=2))
        model.train()
        with pytest.raises(RuntimeError, match="eval"):
            quantize_detector(model, calibration)

    def test_observer_rejects_bad_percentile(self):
        with pytest.raises(QuantizationError, match="percentile"):
            ActivationObserver(percentile=0.0)

    def test_empty_calibration_frames_raise(self):
        with pytest.raises(QuantizationError, match="non-empty"):
            calibrate_detector(make_model(),
                               np.zeros((0, 3, 64, 64), np.float32))


# ----------------------------------------------------------------------
# Inference-only guards (shared CompiledDetector contract)
# ----------------------------------------------------------------------

class TestInferenceOnly:
    def test_train_mode_raises(self):
        _, quantized = quantized_pair()
        with pytest.raises(RuntimeError, match="inference-only"):
            quantized.train()

    def test_grad_tracked_input_raises(self):
        _, quantized = quantized_pair()
        x = Tensor(np.zeros((1, 3, 64, 64), np.float32), requires_grad=True)
        with pytest.raises(RuntimeError, match="inference-only"):
            quantized(x)


# ----------------------------------------------------------------------
# Checkpoint + state round-trips (satellite 2)
# ----------------------------------------------------------------------

class TestRoundTrips:
    def test_load_quantize_detect_from_checkpoint(self, tmp_path):
        model = make_model()
        frames = make_frames()
        path = str(tmp_path / "det.npz")
        save_module(model, path)

        from repro.nn import load_module
        reloaded = TinyYolo(reduced_config(input_size=64,
                                           width_multiplier=0.25), seed=7)
        load_module(reloaded, path)
        reloaded.eval()
        quantized = reloaded.quantize(frames)
        reference = model.quantize(frames)
        x = make_frames(n=2, seed=5)
        for a, b in zip(quantized.forward_arrays(x),
                        reference.forward_arrays(x)):
            np.testing.assert_array_equal(a, b)

    def test_calibration_state_round_trip_is_digest_stable(self, tmp_path):
        model = make_model()
        calibration = calibrate_detector(model, make_frames())
        path = str(tmp_path / "calib.npz")
        saved_digest = save_state(path, calibration.to_state())
        restored = CalibrationResult.from_state(load_state(path))
        assert restored == calibration
        assert restored.digest() == calibration.digest() == saved_digest
        # Quantizing from the restored ranges reproduces the detector.
        a = quantize_detector(model, calibration)
        b = quantize_detector(model, restored)
        assert a.quant_digest() == b.quant_digest()

    def test_quant_state_serializes_via_serialization(self, tmp_path):
        _, quantized = quantized_pair()
        path = str(tmp_path / "quant.npz")
        save_state(path, quantized.quant_state())
        restored = load_state(path)
        assert CalibrationResult.from_state(restored).ranges \
            == quantized.calibration.ranges
        for name in _BLOCKS:
            np.testing.assert_array_equal(restored[f"w_scale:{name}"],
                                          quantized.specs[name].w_scale)

    def test_calibration_state_missing_meta_raises(self):
        with pytest.raises(QuantizationError, match="meta:frames"):
            CalibrationResult.from_state({"range:conv1": np.float64(1.0)})


# ----------------------------------------------------------------------
# Accuracy budget + pipeline/eval integration
# ----------------------------------------------------------------------

class TestAccuracyAndIntegration:
    def test_per_layer_relative_error_is_small(self):
        model, quantized = quantized_pair()
        errors = activation_error_stats(model.lower(), quantized,
                                        make_frames(n=4, seed=3))
        assert set(errors) >= set(_BLOCKS)
        for name, entry in errors.items():
            assert entry["max_rel"] < 0.15, (name, entry)

    def test_quantized_pipeline_runs_and_is_deterministic(self):
        model = make_model()
        calibration = calibrate_detector(model, make_frames())
        frames = [f for f in make_frames(n=6, seed=11)]
        runs = []
        for _ in range(2):
            pipeline = AvPipeline(model, conf_threshold=0.001,
                                  precision="int8", calibration=calibration)
            assert isinstance(pipeline.infer_model, QuantizedDetector)
            traces = pipeline.run(frames, batch_size=3)
            runs.append([
                (len(t.detections), t.decision.action,
                 tuple(d.class_id for d in t.detections)) for t in traces])
        assert runs[0] == runs[1]

    def test_percentile_clip_tightens_ranges(self):
        model = make_model()
        frames = make_frames()
        full = calibrate_detector(model, frames, percentile=100.0)
        clipped = calibrate_detector(model, frames, percentile=99.0)
        assert all(clipped.ranges[k] <= full.ranges[k] + 1e-7
                   for k in full.ranges)
        assert any(clipped.ranges[k] < full.ranges[k] for k in full.ranges)

    def test_run_challenge_precision_knob(self):
        from repro.eval.protocol import run_challenge
        from repro.scene.video import AttackScenario
        model = make_model()
        calibration = calibrate_detector(model, make_frames(n=4))
        scenario = AttackScenario(image_size=64)
        oracle = run_challenge(model, scenario, "speed/normal", n_runs=1,
                               lowered=True)
        quant = run_challenge(model, scenario, "speed/normal", n_runs=1,
                              precision="int8", calibration=calibration)
        # PWC is in percent; the tight accuracy budget lives in the bench
        # phase — here we pin that the knob is wired and sane.
        assert abs(quant.pwc - oracle.pwc) <= 10.0
        with pytest.raises(QuantizationError, match="requires calibration"):
            run_challenge(model, scenario, "speed/normal", n_runs=1,
                          precision="int8")


# ----------------------------------------------------------------------
# Live probe (satellite 1)
# ----------------------------------------------------------------------

class TestQuantProbe:
    def test_probe_counts_epilogues_and_plans(self):
        before = quant_runtime_totals()
        _, quantized = quantized_pair()
        quantized.forward_arrays(make_frames(n=2, seed=6))
        quantized.forward_arrays(make_frames(n=2, seed=7))
        after = quant_runtime_totals()
        assert after["detectors"] >= before["detectors"] + 1
        assert after["epilogue_runs"] >= before["epilogue_runs"] + 2 * len(
            _BLOCKS)
        assert after["gemm_chunks"] >= after["epilogue_runs"]
        assert after["act_range_max"] > 0
        assert all(isinstance(v, (int, float)) for v in after.values())

    def test_stats_shape(self):
        _, quantized = quantized_pair()
        stats = quantized.stats()
        assert stats["layers_int8"] == len(_BLOCKS)
        assert stats["act_range_min"] > 0
        assert stats["act_range_min"] <= stats["act_range_mean"] \
            <= stats["act_range_max"]

    def test_live_telemetry_accepts_probe(self):
        from repro.obs.live import LiveTelemetry
        live = LiveTelemetry()
        live.add_probe("quant", quant_runtime_totals)
        sample = live.sample_once()
        assert any(key.startswith("quant.") for key in sample)
