"""Optimizers: convergence on toy problems and edge cases."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor, clip_grad_norm


def quadratic_loss(param):
    return ((param - 3.0) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(1, dtype=np.float32))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = quadratic_loss(p)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(float(p.data[0]) - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(3, 10.0, dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # Zero loss gradient: only decay acts.
        p.grad = np.zeros(3, dtype=np.float32)
        opt.step()
        assert (np.abs(p.data) < 10.0).all()

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = SGD([p], lr=1.0)
        opt.step()  # no grad — no change, no crash
        np.testing.assert_allclose(p.data, np.ones(2))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        opt = Adam([p], lr=0.2)
        for _ in range(120):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-2)

    def test_first_step_size_close_to_lr(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.asarray([5.0], dtype=np.float32)
        opt.step()
        # Adam normalizes the first step to roughly lr.
        assert abs(float(p.data[0])) == pytest.approx(0.1, rel=0.05)

    def test_zero_grad_resets(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        opt = Adam([p])
        p.grad = np.ones(2, dtype=np.float32)
        opt.zero_grad()
        assert p.grad is None


class TestClipGradNorm:
    def test_scales_down_large_gradients(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 0.01, dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.01))

    def test_handles_missing_gradients(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0
