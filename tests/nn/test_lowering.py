"""Eval-time graph lowering: the parity oracle and its guard rails.

The lowered executor may only ever be *faster* — never different. These
tests pin the contract from DESIGN.md §13: per-layer |Δ| vs the
differentiable eval graph stays under :data:`~repro.nn.LOWERING_ATOL`
across profiles, end-to-end pipeline traces are behaviourally identical,
checkpoints survive a load → lower → detect round-trip, and every way of
accidentally training or differentiating through a lowered model raises
instead of silently detaching.
"""

import os

import numpy as np
import pytest

from repro.av import AvPipeline
from repro.detection import TinyYolo, reduced_config
from repro.detection.decode import batched_detections
from repro.nn import (
    LOWERING_ATOL,
    LoweredDetector,
    Tensor,
    layer_parity,
    load_module,
    no_grad,
    save_module,
)

pytestmark = pytest.mark.lowered

_BLOCKS = ("conv1", "conv2", "conv3", "conv4", "conv5", "conv6",
           "conv7", "conv8", "conv9", "conv10", "conv11")


def make_model(input_size=64, width=0.25, seed=0, stats_seed=1):
    """A detector with *non-trivial* BN running statistics.

    Fresh models have running_mean=0 / running_var=1, which makes BN
    folding nearly a no-op; parity against that would prove nothing.
    Randomized statistics exercise the actual fold arithmetic.
    """
    model = TinyYolo(reduced_config(input_size=input_size,
                                    width_multiplier=width), seed=seed)
    rng = np.random.default_rng(stats_seed)
    for name in _BLOCKS:
        bn = getattr(model, name).bn
        bn.running_mean[:] = rng.normal(
            0, 0.05, bn.running_mean.shape).astype(np.float32)
        bn.running_var[:] = (
            1.0 + rng.random(bn.running_var.shape) * 0.5).astype(np.float32)
    return model.eval()


class TestLayerParity:
    @pytest.mark.parametrize("width", [0.25, 0.5])
    @pytest.mark.parametrize("input_size", [32, 64])
    def test_per_layer_delta_within_tolerance(self, input_size, width):
        model = make_model(input_size=input_size, width=width)
        lowered = model.lower(debug=True)
        x = np.random.default_rng(2).random(
            (4, 3, input_size, input_size)).astype(np.float32)
        deltas = layer_parity(model, lowered, x)
        assert set(deltas) >= set(_BLOCKS) | {"head_coarse", "head_fine"}
        for name, delta in deltas.items():
            assert delta <= LOWERING_ATOL, (name, delta)

    def test_forward_contract_matches_reference_heads(self):
        model = make_model()
        lowered = model.lower()
        x = np.random.default_rng(3).random((2, 3, 64, 64)).astype(np.float32)
        coarse, fine = lowered(Tensor(x))
        with no_grad():
            ref_coarse, ref_fine = model(Tensor(x))
        assert coarse.data.shape == ref_coarse.data.shape
        assert fine.data.shape == ref_fine.data.shape
        np.testing.assert_allclose(coarse.data, ref_coarse.data,
                                   atol=LOWERING_ATOL)
        np.testing.assert_allclose(fine.data, ref_fine.data,
                                   atol=LOWERING_ATOL)

    def test_repeated_forwards_are_deterministic(self):
        # Plan buffers are reused across calls; a leaked view or an
        # unwritten region would make the second call differ.
        lowered = make_model().lower()
        x = np.random.default_rng(4).random((3, 3, 64, 64)).astype(np.float32)
        first = [a.copy() for a in lowered.forward_arrays(x)]
        lowered.forward_arrays(np.zeros_like(x))  # dirty the buffers
        second = lowered.forward_arrays(x)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_plans_cached_per_batch_shape(self):
        lowered = make_model().lower()
        lowered.forward_arrays(np.zeros((1, 3, 64, 64), np.float32))
        lowered.forward_arrays(np.zeros((1, 3, 64, 64), np.float32))
        lowered.forward_arrays(np.zeros((5, 3, 64, 64), np.float32))
        assert len(lowered._plans) == 2


class TestTraceIdentity:
    def test_pipeline_traces_identical_on_bench_scenario(self):
        """The bench oracle, in the default suite: a lowered AvPipeline
        must produce behaviourally identical frame traces — detections,
        confirmations, planner actions — on the bench-style video."""
        rng = np.random.default_rng(0)
        frames = [rng.random((3, 64, 64)).astype(np.float32)
                  for _ in range(12)]
        model = make_model()
        reference = AvPipeline(model, confirm_frames=3,
                               conf_threshold=0.001).run(frames, batch_size=4)
        lowered = AvPipeline(model, confirm_frames=3, conf_threshold=0.001,
                             lowered=True).run(frames, batch_size=4)
        assert len(reference) == len(lowered)
        for ref, low in zip(reference, lowered):
            assert ref.decision.action == low.decision.action
            assert len(ref.detections) == len(low.detections)
            for a, b in zip(ref.detections, low.detections):
                assert a.class_id == b.class_id
                np.testing.assert_allclose(a.box_xyxy, b.box_xyxy, atol=1e-3)
                assert abs(a.score - b.score) <= 1e-3
            assert ([(c.track_id, c.class_id) for c in ref.confirmed]
                    == [(c.track_id, c.class_id) for c in low.confirmed])

    def test_checkpoint_load_lower_detect_round_trip(self, tmp_path):
        trained = make_model(stats_seed=7)
        path = os.path.join(tmp_path, "detector.npz")
        save_module(trained, path)

        restored = TinyYolo(reduced_config(input_size=64,
                                           width_multiplier=0.25), seed=99)
        load_module(restored, path)
        lowered = restored.eval().lower()

        frames = [np.random.default_rng(5).random(
            (3, 64, 64)).astype(np.float32) for _ in range(4)]
        want = batched_detections(trained, frames, conf_threshold=0.001,
                                  batch_size=4)
        got = batched_detections(lowered, frames, conf_threshold=0.001,
                                 batch_size=4)
        for ref_dets, low_dets in zip(want, got):
            assert len(ref_dets) == len(low_dets)
            for a, b in zip(ref_dets, low_dets):
                assert a.class_id == b.class_id
                np.testing.assert_allclose(a.box_xyxy, b.box_xyxy, atol=1e-3)


class TestGuards:
    def test_lowering_training_model_raises(self):
        model = make_model().train()
        with pytest.raises(RuntimeError, match="eval"):
            model.lower()

    def test_grad_tracked_input_raises(self):
        lowered = make_model().lower()
        x = Tensor(np.zeros((1, 3, 64, 64), np.float32), requires_grad=True)
        with pytest.raises(RuntimeError, match="inference-only"):
            lowered(x)

    def test_grad_tracked_input_allowed_under_no_grad(self):
        lowered = make_model().lower()
        x = Tensor(np.zeros((1, 3, 64, 64), np.float32), requires_grad=True)
        with no_grad():
            coarse, fine = lowered(x)
        assert not coarse.requires_grad and not fine.requires_grad

    def test_train_mode_raises(self):
        lowered = make_model().lower()
        with pytest.raises(RuntimeError, match="inference-only"):
            lowered.train()
        assert lowered.eval() is lowered  # eval is a no-op, not an error

    def test_wrong_spatial_size_raises(self):
        lowered = make_model().lower()
        with pytest.raises(ValueError, match="spatial"):
            lowered(np.zeros((1, 3, 32, 32), np.float32))

    def test_folded_weights_are_copies(self):
        model = make_model()
        lowered = model.lower()
        x = np.random.default_rng(6).random((1, 3, 64, 64)).astype(np.float32)
        before = lowered.forward_arrays(x)[0].copy()
        model.conv1.conv.weight.data[:] += 1.0  # mutate the source
        after = lowered.forward_arrays(x)[0]
        np.testing.assert_array_equal(before, after)

    def test_debug_mode_runs_clean_under_aliasing_guard(self):
        # The plan executor itself must respect the pad aliasing rule it
        # is built on — debug mode would raise on any violation.
        lowered = make_model().lower(debug=True)
        assert isinstance(lowered, LoweredDetector)
        x = np.random.default_rng(8).random((2, 3, 64, 64)).astype(np.float32)
        lowered.forward_arrays(x)
        lowered.forward_arrays(x)
