"""Autograd engine: arithmetic, broadcasting, graph traversal."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, no_grad, stack
from repro.nn.tensor import (
    absolute,
    clip,
    maximum,
    minimum,
    pad2d,
    unbroadcast,
)


def make(shape, rng, requires_grad=True):
    return Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=requires_grad)


class TestBasics:
    def test_scalar_backward_sets_unit_gradient(self):
        t = Tensor(3.0, requires_grad=True)
        t.backward()
        assert t.grad == pytest.approx(1.0)

    def test_backward_requires_scalar_without_explicit_grad(self, rng):
        t = make((3,), rng)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_detach_cuts_graph(self, rng):
        t = make((2, 2), rng)
        out = (t.detach() * 2.0).sum()
        out.backward()
        assert t.grad is None

    def test_clone_preserves_gradient_flow(self, rng):
        t = make((2, 2), rng)
        t.clone().sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 2)))

    def test_no_grad_disables_recording(self, rng):
        t = make((2,), rng)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad


class TestArithmetic:
    def test_add_broadcast_gradients(self, rng):
        a = make((3, 4), rng)
        b = make((4,), rng)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full((4,), 3.0))

    def test_mul_gradients(self, rng):
        a = make((5,), rng)
        b = make((5,), rng)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data, rtol=1e-6)
        np.testing.assert_allclose(b.grad, a.data, rtol=1e-6)

    def test_division_gradient(self, rng):
        a = make((4,), rng)
        b = Tensor(np.abs(rng.normal(size=(4,))).astype(np.float32) + 1.0,
                   requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data, rtol=1e-5)
        np.testing.assert_allclose(b.grad, -a.data / b.data ** 2, rtol=1e-4)

    def test_rsub_and_rdiv(self):
        t = Tensor(np.asarray([2.0], dtype=np.float32), requires_grad=True)
        (5.0 - t).backward(np.ones(1))
        assert t.grad[0] == pytest.approx(-1.0)
        t2 = Tensor(np.asarray([2.0], dtype=np.float32), requires_grad=True)
        (4.0 / t2).backward(np.ones(1))
        assert t2.grad[0] == pytest.approx(-1.0)

    def test_power_gradient(self, rng):
        base = Tensor(np.abs(rng.normal(size=(4,))).astype(np.float32) + 0.5,
                      requires_grad=True)
        (base ** 3).sum().backward()
        np.testing.assert_allclose(base.grad, 3 * base.data ** 2, rtol=1e-4)

    def test_exp_log_roundtrip_gradient(self, rng):
        t = Tensor(np.abs(rng.normal(size=(3,))).astype(np.float32) + 0.5,
                   requires_grad=True)
        t.exp().log().sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(3), rtol=1e-3)

    def test_reuse_accumulates_gradient(self, rng):
        t = make((3,), rng)
        ((t * 2.0) + (t * 3.0)).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((3,), 5.0), rtol=1e-6)

    def test_diamond_graph(self, rng):
        t = make((2,), rng)
        a = t * 2.0
        b = a + 1.0
        c = a * 3.0
        (b + c).sum().backward()
        # d/dt[(2t+1) + 6t] = 8
        np.testing.assert_allclose(t.grad, np.full((2,), 8.0), rtol=1e-6)


class TestElementwiseOps:
    def test_clip_gradient_masks_outside(self):
        t = Tensor(np.asarray([-2.0, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        clip(t, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient_is_sign(self):
        t = Tensor(np.asarray([-3.0, 4.0], dtype=np.float32), requires_grad=True)
        absolute(t).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, 1.0])

    def test_maximum_routes_gradient_to_winner(self):
        a = Tensor(np.asarray([1.0, 5.0], dtype=np.float32), requires_grad=True)
        b = Tensor(np.asarray([2.0, 3.0], dtype=np.float32), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_minimum_routes_gradient_to_winner(self):
        a = Tensor(np.asarray([1.0, 5.0], dtype=np.float32), requires_grad=True)
        b = Tensor(np.asarray([2.0, 3.0], dtype=np.float32), requires_grad=True)
        minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestReductionsAndShape:
    def test_mean_gradient(self, rng):
        t = make((4, 5), rng)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((4, 5), 1 / 20), rtol=1e-6)

    def test_sum_axis_keepdims(self, rng):
        t = make((2, 3), rng)
        t.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_max_gradient_goes_to_argmax(self):
        t = Tensor(np.asarray([[1.0, 3.0, 2.0]], dtype=np.float32), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose_roundtrip(self, rng):
        t = make((2, 3, 4), rng)
        t.reshape((6, 4)).transpose((1, 0)).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3, 4)))

    def test_getitem_fancy_index_gradient(self, rng):
        t = make((5, 3), rng)
        idx = (np.asarray([0, 0, 2]), np.asarray([1, 1, 2]))
        t[idx].sum().backward()
        expected = np.zeros((5, 3), dtype=np.float32)
        expected[0, 1] = 2.0  # repeated index accumulates
        expected[2, 2] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_concatenate_gradient_splits(self, rng):
        a = make((2, 3), rng)
        b = make((2, 2), rng)
        concatenate([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_stack_gradient(self, rng):
        a = make((3,), rng)
        b = make((3,), rng)
        (stack([a, b], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((3,), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3,), 2.0))

    def test_pad2d_gradient(self, rng):
        t = make((1, 1, 3, 3), rng)
        pad2d(t, (1, 2, 0, 1)).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((1, 1, 3, 3)))


class TestMatmul:
    def test_matmul_gradcheck(self, rng, numgrad):
        a = make((3, 4), rng)
        b = make((4, 2), rng)
        (a @ b).sum().backward()

        def f():
            return float((a.data @ b.data).sum())

        np.testing.assert_allclose(a.grad, numgrad(f, a.data), atol=2e-2)
        np.testing.assert_allclose(b.grad, numgrad(f, b.data), atol=2e-2)

    def test_batched_matmul(self, rng):
        a = make((2, 3, 4), rng)
        b = make((2, 4, 5), rng)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestUnbroadcast:
    def test_unbroadcast_sums_leading_axes(self):
        grad = np.ones((2, 3, 4))
        out = unbroadcast(grad, (3, 4))
        np.testing.assert_allclose(out, np.full((3, 4), 2.0))

    def test_unbroadcast_sums_size_one_axes(self):
        grad = np.ones((2, 3, 4))
        out = unbroadcast(grad, (2, 1, 4))
        np.testing.assert_allclose(out, np.full((2, 1, 4), 3.0))
