"""ConvWorkspace: bit-identical numerics, correct reuse, bounded growth,
and per-thread isolation."""

import threading

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.functional import (
    ConvWorkspace,
    clear_conv_workspace,
    conv2d,
    conv_workspace,
    conv_workspace_totals,
)


@pytest.fixture(autouse=True)
def fresh_workspace():
    clear_conv_workspace()
    yield
    conv_workspace().enabled = True
    clear_conv_workspace()


def _conv_pass(seed, stride=1, padding=1):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((2, 3, 9, 9)).astype(np.float32),
               requires_grad=True)
    w = Tensor(rng.standard_normal((4, 3, 3, 3)).astype(np.float32),
               requires_grad=True)
    b = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)
    out = conv2d(x, w, b, stride=stride, padding=padding)
    out.backward(np.ones_like(out.data))
    return out.data.copy(), x.grad.copy(), w.grad.copy(), b.grad.copy()


class TestBitIdentity:
    def test_cached_equals_uncached_over_repeated_calls(self):
        ws = conv_workspace()
        ws.enabled = False
        baseline = [_conv_pass(seed) for seed in range(3)]
        ws.enabled = True
        clear_conv_workspace()
        # Three passes so the later ones hit warm (dirty) buffers.
        for seed, want in zip(range(3), baseline):
            got = _conv_pass(seed)
            for got_arr, want_arr in zip(got, want):
                np.testing.assert_array_equal(got_arr, want_arr)
        assert ws.hits > 0

    def test_grad_accumulation_unaffected_by_buffer_reuse(self):
        # Two backward passes into the same leaves must accumulate exactly
        # as with fresh allocations (the aliasing rule of the workspace:
        # nothing routed into the graph may live in a cached buffer).
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((1, 2, 7, 7)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32),
                   requires_grad=True)
        first = conv2d(x, w, padding=1)
        first.backward(np.ones_like(first.data))
        grad_once = x.grad.copy(), w.grad.copy()
        second = conv2d(x, w, padding=1)  # reuses the warm buffers
        second.backward(np.ones_like(second.data))
        np.testing.assert_array_equal(x.grad, 2 * grad_once[0])
        np.testing.assert_array_equal(w.grad, 2 * grad_once[1])


class TestReuseAndInvalidation:
    def test_buffers_are_reused_per_key(self):
        ws = ConvWorkspace()
        a = ws.buffer(("k", (2, 2)), (2, 2))
        b = ws.buffer(("k", (2, 2)), (2, 2))
        assert a is b
        assert ws.hits == 1 and ws.misses == 1
        assert ws.buffer(("other", (2, 2)), (2, 2)) is not a

    def test_pad_writes_interior_and_keeps_zero_border(self):
        ws = ConvWorkspace()
        x1 = np.full((1, 1, 2, 2), 5.0, dtype=np.float32)
        out1 = ws.pad("t", x1, 1)
        x2 = np.full((1, 1, 2, 2), -3.0, dtype=np.float32)
        out2 = ws.pad("t", x2, 1)
        assert out1 is out2  # reused
        np.testing.assert_array_equal(out2, np.pad(x2, ((0, 0), (0, 0), (1, 1), (1, 1))))

    def test_pad_zero_padding_passthrough(self):
        ws = ConvWorkspace()
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        assert ws.pad("t", x, 0) is x
        assert ws.stats()["buffers"] == 0

    def test_lru_eviction_bounds_memory(self):
        ws = ConvWorkspace(max_buffers=4)
        for i in range(10):
            ws.buffer(("k", i), (2,))
        assert ws.stats()["buffers"] == 4
        # Oldest keys evicted; newest retained.
        assert ws.buffer(("k", 9), (2,)) is not None
        assert ws.hits == 1

    def test_clear_invalidates_everything(self):
        ws = conv_workspace()
        _conv_pass(0)
        assert ws.stats()["buffers"] > 0
        assert ws.stats()["paths"] > 0
        clear_conv_workspace()
        stats = ws.stats()
        assert stats == {"buffers": 0, "buffer_bytes": 0,
                         "max_bytes": ws.max_bytes, "evictions": 0,
                         "paths": 0, "hits": 0, "misses": 0}

    def test_distinct_shapes_get_distinct_buffers(self):
        ws = conv_workspace()
        _conv_pass(0)
        buffers_small = ws.stats()["buffers"]
        # Different stride changes the unfold geometry → new keys, no
        # corruption of the old ones.
        _conv_pass(0, stride=2)
        assert ws.stats()["buffers"] > buffers_small

    def test_disabled_workspace_caches_nothing(self):
        ws = conv_workspace()
        ws.enabled = False
        _conv_pass(1)
        assert ws.stats()["buffers"] == 0


class TestByteBudget:
    """The LRU historically capped buffer *count* only: 64 cached pads of
    a large model could pin gigabytes. The byte budget closes that."""

    def test_bytes_accounting_tracks_cached_buffers(self):
        ws = ConvWorkspace()
        ws.buffer(("a", 1), (16,))
        ws.buffer(("b", 1), (8,))
        assert ws.stats()["buffer_bytes"] == (16 + 8) * 4

    def test_eviction_by_bytes_before_count(self):
        # Budget fits two 1 KiB buffers; the third insert must evict the
        # oldest even though the count cap (64) is nowhere near reached.
        ws = ConvWorkspace(max_bytes=2048)
        ws.buffer(("a", 1), (256,))
        ws.buffer(("b", 1), (256,))
        ws.buffer(("c", 1), (256,))
        stats = ws.stats()
        assert stats["buffers"] == 2
        assert stats["buffer_bytes"] <= 2048
        assert stats["evictions"] == 1
        # LRU order: "a" was oldest and must be the one gone.
        ws.buffer(("c", 1), (256,))
        assert ws.hits == 1
        ws.buffer(("a", 1), (256,))
        assert ws.misses == 4

    def test_oversized_request_not_cached(self):
        ws = ConvWorkspace(max_bytes=64)
        buf = ws.buffer(("huge", 1), (1024,))
        assert buf.shape == (1024,)
        assert ws.stats()["buffers"] == 0

    def test_clear_resets_byte_accounting(self):
        ws = ConvWorkspace(max_bytes=2048)
        for i in range(5):
            ws.buffer(("k", i), (256,))
        ws.clear()
        stats = ws.stats()
        assert stats["buffer_bytes"] == 0 and stats["evictions"] == 0


class TestInFlightPadGuard:
    """Documented aliasing rule: a pad buffer is consumed synchronously;
    two same-tag same-shape pads return the *same* array, so an
    overlapping second pad silently corrupts the first. Debug mode turns
    that silent corruption into an immediate error."""

    def test_overlapping_same_tag_pad_raises_in_debug(self):
        ws = ConvWorkspace(debug=True)
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        first = ws.pad("conv", x, 1)
        with pytest.raises(RuntimeError, match="aliasing"):
            ws.pad("conv", x, 1)
        ws.pad_release(first)
        ws.pad("conv", x, 1)  # released → legal again

    def test_distinct_tags_do_not_conflict(self):
        ws = ConvWorkspace(debug=True)
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        a = ws.pad("conv", x, 1)
        b = ws.pad("conv_bw", x, 1)
        assert a is not b
        ws.pad_release(a)
        ws.pad_release(b)

    def test_non_debug_mode_is_unguarded_and_free(self):
        ws = ConvWorkspace()
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        first = ws.pad("conv", x, 1)
        assert ws.pad("conv", x, 1) is first  # documented aliasing
        ws.pad_release(first)  # no-op, never raises

    def test_release_of_foreign_array_is_safe(self):
        ws = ConvWorkspace(debug=True)
        ws.pad_release(np.zeros(3, dtype=np.float32))

    def test_conv2d_round_trip_clean_under_guard(self):
        # The real conv forward+backward must never trip the guard: every
        # pad is released before the next same-tag pad.
        ws = conv_workspace()
        ws.debug = True
        try:
            _conv_pass(0)
            _conv_pass(1)
        finally:
            ws.debug = False


class TestTotalsProbe:
    def test_totals_aggregate_across_workspaces(self):
        before = conv_workspace_totals()
        ws1 = ConvWorkspace()
        ws2 = ConvWorkspace()
        ws1.buffer(("a", 1), (256,))
        ws2.buffer(("b", 1), (128,))
        after = conv_workspace_totals()
        assert after["workspaces"] >= before["workspaces"] + 2
        assert (after["buffer_bytes"] - before["buffer_bytes"]
                == (256 + 128) * 4)
        assert all(isinstance(v, (int, float)) for v in after.values())


class TestThreadIsolation:
    """A shared (module-level) workspace corrupts concurrent forwards:
    two threads padding the same-shaped input reuse one cached buffer,
    so the second write destroys the first thread's windows mid-conv.
    These tests fail deterministically against that design."""

    def test_each_thread_gets_its_own_workspace(self):
        main_ws = conv_workspace()
        seen = {}

        def grab():
            seen["other"] = conv_workspace()

        thread = threading.Thread(target=grab)
        thread.start()
        thread.join()
        assert seen["other"] is not main_ws

    def test_concurrent_pad_does_not_corrupt_other_thread(self):
        # Lock-step schedule: main pads, the other thread pads the SAME
        # key, then main checks its result. With one shared cache the
        # second pad would have overwritten main's buffer in place.
        x_main = np.full((1, 1, 4, 4), 7.0, dtype=np.float32)
        x_other = np.full((1, 1, 4, 4), -1.0, dtype=np.float32)
        padded_main = conv_workspace().pad("conv", x_main, 1)
        other_done = threading.Event()

        def pad_other():
            conv_workspace().pad("conv", x_other, 1)
            other_done.set()

        thread = threading.Thread(target=pad_other)
        thread.start()
        assert other_done.wait(timeout=10)
        thread.join()
        np.testing.assert_array_equal(
            padded_main,
            np.pad(x_main, ((0, 0), (0, 0), (1, 1), (1, 1))))
