"""Autograd engine edge cases: grad modes, dtypes, repeated backward."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.tensor import is_grad_enabled


class TestGradMode:
    def test_no_grad_nests(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_tensor_created_under_no_grad_never_requires(self):
        with no_grad():
            t = Tensor(np.ones(3), requires_grad=True)
        assert not t.requires_grad

    def test_graph_not_recorded_under_no_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert out._backward is None


class TestDtypes:
    def test_integer_arrays_preserved(self):
        t = Tensor(np.asarray([1, 2, 3], dtype=np.int64))
        assert t.dtype == np.int64

    def test_floats_coerced_to_float32(self):
        t = Tensor(np.asarray([1.0, 2.0], dtype=np.float64))
        assert t.dtype == np.float32

    def test_python_scalars_become_float32(self):
        assert Tensor(3).dtype == np.float32
        assert Tensor(3.5).dtype == np.float32

    def test_bool_arrays_preserved(self):
        t = Tensor(np.asarray([True, False]))
        assert t.dtype == np.bool_


class TestBackwardSemantics:
    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (t * 2.0).sum().backward()
        first = t.grad.copy()
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * first)

    def test_zero_grad_resets(self):
        t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (t * 3.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_explicit_upstream_gradient(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = t * 4.0
        out.backward(np.asarray([1.0, 2.0, 3.0], dtype=np.float32))
        np.testing.assert_allclose(t.grad, [4.0, 8.0, 12.0])

    def test_item_and_len(self):
        assert Tensor(5.0).item() == pytest.approx(5.0)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_name_annotation(self):
        t = Tensor(1.0, name="alpha")
        assert t.name == "alpha"


class TestNumpyInterop:
    def test_ndarray_times_tensor_uses_rmul(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = np.asarray([2.0, 2.0, 2.0], dtype=np.float32) * t
        assert isinstance(out, Tensor)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0, 2.0])

    def test_ndarray_minus_tensor(self):
        t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        out = np.zeros(2, dtype=np.float32) - t
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.data, [-1.0, -1.0])
