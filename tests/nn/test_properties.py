"""Property-based tests (hypothesis) on the autodiff engine.

These check algebraic laws that must hold for any input — linearity of the
gradient, shape invariants of conv/pool, idempotence of activations — the
kind of invariants unit examples cannot cover exhaustively.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

small_arrays = st.integers(min_value=2, max_value=6)


def rand(shape, seed):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestGradientLaws:
    @given(n=small_arrays, seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_sum_gradient_is_ones(self, n, seed):
        t = Tensor(rand((n, n), seed), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((n, n)))

    @given(seed=st.integers(0, 1000), scale=st.floats(-3, 3))
    @settings(max_examples=25, deadline=None)
    def test_gradient_linear_in_upstream(self, seed, scale):
        # backward(c·g) == c · backward(g) for a fixed graph.
        base = rand((4,), seed)
        a = Tensor(base.copy(), requires_grad=True)
        (a * a).backward(np.full(4, 1.0, dtype=np.float32))
        unit = a.grad.copy()
        b = Tensor(base.copy(), requires_grad=True)
        (b * b).backward(np.full(4, scale, dtype=np.float32))
        np.testing.assert_allclose(b.grad, scale * unit, rtol=1e-4, atol=1e-5)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_chain_rule_through_composition(self, seed):
        # d/dx sigmoid(2x).sum() == 2·σ'(2x)
        x = Tensor(rand((5,), seed), requires_grad=True)
        F.sigmoid(x * 2.0).sum().backward()
        s = 1 / (1 + np.exp(-2 * x.data))
        np.testing.assert_allclose(x.grad, 2 * s * (1 - s), rtol=1e-4, atol=1e-5)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_softmax_gradient_sums_to_zero(self, seed):
        # Softmax output sums to 1, so any upstream gradient produces an
        # input gradient summing to ~0 along the softmax axis.
        x = Tensor(rand((3, 6), seed), requires_grad=True)
        upstream = rand((3, 6), seed + 1)
        F.softmax(x, axis=-1).backward(upstream)
        np.testing.assert_allclose(x.grad.sum(axis=-1), np.zeros(3), atol=1e-4)


class TestShapeInvariants:
    @given(n=small_arrays, c=small_arrays, size=st.sampled_from([8, 12, 16]),
           stride=st.sampled_from([1, 2]))
    @settings(max_examples=20, deadline=None)
    def test_conv_output_shape_formula(self, n, c, size, stride):
        x = Tensor(rand((n, c, size, size), 0))
        w = Tensor(rand((4, c, 3, 3), 1))
        out = F.conv2d(x, w, stride=stride, padding=1)
        expected = (size + 2 - 3) // stride + 1
        assert out.shape == (n, 4, expected, expected)

    @given(size=st.sampled_from([8, 10, 14]))
    @settings(max_examples=10, deadline=None)
    def test_pool_then_upsample_shape_roundtrip(self, size):
        x = Tensor(rand((1, 2, size, size), 0))
        down = F.max_pool2d(x, 2, 2)
        up = F.upsample_nearest(down, 2)
        assert up.shape == (1, 2, size // 2 * 2, size // 2 * 2)

    @given(out_h=st.integers(2, 20), out_w=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_interpolate_hits_requested_size(self, out_h, out_w):
        x = Tensor(rand((1, 1, 7, 9), 0))
        assert F.interpolate_bilinear(x, (out_h, out_w)).shape == (1, 1, out_h, out_w)


class TestValueInvariants:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sigmoid_bounded(self, seed):
        x = Tensor(rand((10,), seed) * 100)
        out = F.sigmoid(x).data
        assert ((out >= 0) & (out <= 1)).all()

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_max_pool_never_decreases_max(self, seed):
        x = Tensor(rand((1, 1, 8, 8), seed))
        out = F.max_pool2d(x, 2, 2)
        assert out.data.max() == pytest.approx(x.data.max())

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_interpolate_within_input_range(self, seed):
        x = Tensor(rand((1, 1, 6, 6), seed))
        out = F.interpolate_bilinear(x, (11, 5)).data
        assert out.min() >= x.data.min() - 1e-5
        assert out.max() <= x.data.max() + 1e-5

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_cross_entropy_nonnegative(self, seed):
        logits = Tensor(rand((4, 5), seed))
        targets = np.random.default_rng(seed).integers(0, 5, size=4)
        assert float(F.cross_entropy(logits, targets).data) >= 0.0

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_grid_sample_identity_property(self, seed):
        size = 7
        x = Tensor(rand((1, 2, size, size), seed))
        coords = np.linspace(-1, 1, size, dtype=np.float32)
        gy, gx = np.meshgrid(coords, coords, indexing="ij")
        grid = np.stack([gx, gy], axis=-1)[None]
        out = F.grid_sample(x, grid)
        np.testing.assert_allclose(out.data, x.data, atol=1e-4)
