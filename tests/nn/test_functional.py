"""Functional ops: forward correctness and finite-difference grad checks."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


def tensor_of(rng, shape):
    return Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=True)


def closure_arrays(fn, seen=None):
    """Every ndarray reachable through a function's (nested) closures."""
    seen = set() if seen is None else seen
    arrays = []
    if fn is None or id(fn) in seen:
        return arrays
    seen.add(id(fn))
    for cell in fn.__closure__ or ():
        try:
            value = cell.cell_contents
        except ValueError:  # empty cell
            continue
        if isinstance(value, np.ndarray):
            arrays.append(value)
        elif isinstance(value, Tensor):
            arrays.append(value.data)
        elif isinstance(value, (tuple, list)):
            arrays.extend(v for v in value if isinstance(v, np.ndarray))
        elif callable(value) and hasattr(value, "__closure__"):
            arrays.extend(closure_arrays(value, seen))
    return arrays


class TestConv2d:
    def test_output_shape(self, rng):
        x = tensor_of(rng, (2, 3, 8, 8))
        w = tensor_of(rng, (5, 3, 3, 3))
        assert F.conv2d(x, w, padding=1).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)
        assert F.conv2d(x, w).shape == (2, 5, 6, 6)

    def test_matches_manual_convolution(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)).astype(np.float32))
        w = Tensor(rng.normal(size=(1, 1, 2, 2)).astype(np.float32))
        out = F.conv2d(x, w).data
        expected = np.zeros((3, 3), dtype=np.float32)
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x.data[0, 0, i:i + 2, j:j + 2] * w.data[0, 0]).sum()
        np.testing.assert_allclose(out[0, 0], expected, rtol=1e-5)

    def test_incompatible_channels_raise(self, rng):
        x = tensor_of(rng, (1, 3, 6, 6))
        w = tensor_of(rng, (4, 2, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_gradcheck_all_inputs(self, rng, numgrad):
        x = tensor_of(rng, (2, 2, 5, 5))
        w = tensor_of(rng, (3, 2, 3, 3))
        b = tensor_of(rng, (3,))
        (F.conv2d(x, w, b, stride=2, padding=1) ** 2).mean().backward()

        def f():
            return float(
                (F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data),
                          stride=2, padding=1).data ** 2).mean()
            )

        for tensor in (x, w, b):
            np.testing.assert_allclose(tensor.grad, numgrad(f, tensor.data), atol=5e-3)

    def test_backward_closure_does_not_retain_im2col_buffer(self, rng):
        """conv2d's backward used to capture the materialized kernel²-
        expanded im2col buffer until backward ran, pinning K²× the input
        per conv layer. It must close over the raw inputs only and
        recompute the window view on demand."""
        x = tensor_of(rng, (2, 3, 16, 16))
        w = tensor_of(rng, (4, 3, 3, 3))
        out = F.conv2d(x, w, padding=1)
        captured = closure_arrays(out._backward)
        assert captured, "backward should close over its inputs"
        cols_elements = 2 * 3 * 3 * 3 * 16 * 16  # n·c·k·k·oh·ow
        biggest = max(array.size for array in captured)
        assert biggest < cols_elements
        assert biggest <= max(x.data.size, out.data.size, w.data.size)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_stride1_pool_keeps_size(self, rng):
        x = tensor_of(rng, (1, 2, 6, 6))
        assert F.max_pool2d(x, 2, 1).shape == (1, 2, 6, 6)

    def test_unsupported_stride1_shapes_raise(self):
        # Anything stride-1 that is neither the darknet 'same' case nor
        # genuinely 'same'-padded used to silently shrink the feature map.
        x = Tensor(np.zeros((1, 1, 6, 6), dtype=np.float32))
        with pytest.raises(ValueError, match="stride-1"):
            F.max_pool2d(x, 3, 1)
        with pytest.raises(ValueError, match="stride-1"):
            F.max_pool2d(x, 5, 1, padding=1)
        # Supported stride-1 shapes still work and keep (or grow) the map.
        assert F.max_pool2d(x, 2, 1).shape == (1, 1, 6, 6)
        assert F.max_pool2d(x, 3, 1, padding=1).shape == (1, 1, 6, 6)

    def test_float64_input_preserves_dtype(self):
        # Pooling is pure selection: a float64 input used to come back
        # silently downcast to float32. (The Tensor constructor normalizes
        # to float32, so a float64 tensor enters via direct .data
        # assignment — e.g. mixed-precision probes.)
        x = Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32))
        x.data = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.max_pool2d(x, 2, 2)
        assert out.data.dtype == np.float64
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])
        # The float32 fast path is unchanged.
        x32 = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        assert F.max_pool2d(x32, 2, 2).data.dtype == np.float32

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4),
                   requires_grad=True)
        F.max_pool2d(x, 2, 2).sum().backward()
        expected = np.zeros((4, 4), dtype=np.float32)
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_forward_and_grad(self, rng, numgrad):
        x = tensor_of(rng, (1, 2, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(
            out.data[0, 0, 0, 0], x.data[0, 0, :2, :2].mean(), rtol=1e-5
        )
        (out ** 2).mean().backward()

        def f():
            return float((F.avg_pool2d(Tensor(x.data), 2).data ** 2).mean())

        np.testing.assert_allclose(x.grad, numgrad(f, x.data), atol=5e-3)


class TestResampling:
    def test_upsample_nearest_repeats(self):
        x = Tensor(np.asarray([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
                   .reshape(1, 1, 2, 2))
        out = F.upsample_nearest(x, 2)
        np.testing.assert_allclose(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]],
        )

    def test_upsample_gradient_sums(self, rng):
        x = tensor_of(rng, (1, 1, 2, 2))
        F.upsample_nearest(x, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 9.0))

    def test_interpolate_identity_when_same_size(self, rng):
        x = tensor_of(rng, (1, 1, 5, 5))
        assert F.interpolate_bilinear(x, (5, 5)) is x

    def test_interpolate_constant_preserved(self):
        x = Tensor(np.full((1, 1, 4, 4), 0.7, dtype=np.float32))
        out = F.interpolate_bilinear(x, (9, 3))
        np.testing.assert_allclose(out.data, 0.7, rtol=1e-5)

    def test_interpolate_gradcheck(self, rng, numgrad):
        x = tensor_of(rng, (1, 1, 5, 5))
        (F.interpolate_bilinear(x, (7, 3)) ** 2).mean().backward()

        def f():
            return float((F.interpolate_bilinear(Tensor(x.data), (7, 3)).data ** 2).mean())

        np.testing.assert_allclose(x.grad, numgrad(f, x.data), atol=5e-3)


class TestGridSample:
    def test_identity_grid_reproduces_input(self, rng):
        x = tensor_of(rng, (1, 2, 6, 6))
        coords = np.linspace(-1, 1, 6, dtype=np.float32)
        gy, gx = np.meshgrid(coords, coords, indexing="ij")
        grid = np.stack([gx, gy], axis=-1)[None]
        out = F.grid_sample(x, grid)
        np.testing.assert_allclose(out.data, x.data, atol=1e-5)

    def test_out_of_range_reads_padding(self, rng):
        x = tensor_of(rng, (1, 1, 4, 4))
        grid = np.full((1, 2, 2, 2), 5.0, dtype=np.float32)
        out = F.grid_sample(x, grid, padding_value=0.25)
        np.testing.assert_allclose(out.data, 0.25)

    def test_bad_grid_shape_raises(self, rng):
        x = tensor_of(rng, (1, 1, 4, 4))
        with pytest.raises(ValueError):
            F.grid_sample(x, np.zeros((2, 3, 3, 2), dtype=np.float32))

    def test_gradcheck(self, rng, numgrad):
        x = tensor_of(rng, (1, 2, 5, 5))
        grid = rng.uniform(-1.1, 1.1, size=(1, 3, 3, 2)).astype(np.float32)
        (F.grid_sample(x, grid) ** 2).mean().backward()

        def f():
            return float((F.grid_sample(Tensor(x.data), grid).data ** 2).mean())

        np.testing.assert_allclose(x.grad, numgrad(f, x.data), atol=5e-3)


class TestActivations:
    def test_relu_and_leaky_relu(self):
        x = Tensor(np.asarray([-2.0, 3.0], dtype=np.float32), requires_grad=True)
        np.testing.assert_allclose(F.relu(x).data, [0.0, 3.0])
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).data, [-0.2, 3.0])

    def test_leaky_relu_gradient(self):
        x = Tensor(np.asarray([-1.0, 2.0], dtype=np.float32), requires_grad=True)
        F.leaky_relu(x, 0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_sigmoid_range_and_gradient(self, rng):
        x = tensor_of(rng, (10,))
        out = F.sigmoid(x)
        assert ((out.data > 0) & (out.data < 1)).all()
        out.sum().backward()
        expected = out.data * (1 - out.data)
        np.testing.assert_allclose(x.grad, expected, rtol=1e-5)

    def test_sigmoid_extreme_inputs_stable(self):
        x = Tensor(np.asarray([-1000.0, 1000.0], dtype=np.float32))
        out = F.sigmoid(x).data
        assert np.isfinite(out).all()

    def test_sigmoid_no_overflow_under_errstate(self):
        """The naive 1/(1+exp(-x)) overflowed for large negative logits;
        the shared stable sigmoid must stay silent with warnings promoted
        to errors (forward and backward)."""
        x = Tensor(np.asarray([-1e4, -100.0, 0.0, 100.0, 1e4],
                              dtype=np.float32), requires_grad=True)
        with np.errstate(over="raise", under="ignore"):
            out = F.sigmoid(x)
            out.sum().backward()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 0.5, 1.0, 1.0],
                                   atol=1e-7)
        assert np.isfinite(x.grad).all()

    def test_stable_sigmoid_matches_naive_in_safe_range(self, rng):
        x = (rng.random(200).astype(np.float32) - 0.5) * 20
        naive = 1.0 / (1.0 + np.exp(-x.astype(np.float64)))
        np.testing.assert_allclose(F.stable_sigmoid(x), naive,
                                   rtol=1e-5, atol=1e-7)
        assert F.stable_sigmoid(x).dtype == np.float32

    def test_tanh_gradient(self, rng):
        x = tensor_of(rng, (5,))
        out = F.tanh(x)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 1 - out.data ** 2, rtol=1e-5)

    def test_softmax_sums_to_one(self, rng):
        x = tensor_of(rng, (3, 7))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3), rtol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = tensor_of(rng, (2, 5))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-12), atol=1e-5
        )


class TestLosses:
    def test_cross_entropy_gradcheck(self, rng, numgrad):
        logits = tensor_of(rng, (4, 6))
        targets = rng.integers(0, 6, size=4)
        F.cross_entropy(logits, targets).backward()

        def f():
            return float(F.cross_entropy(Tensor(logits.data), targets).data)

        np.testing.assert_allclose(logits.grad, numgrad(f, logits.data), atol=5e-3)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.asarray([[20.0, 0.0, 0.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.asarray([0]))
        assert float(loss.data) < 1e-4

    def test_bce_with_logits_matches_reference(self, rng):
        logits = tensor_of(rng, (8,))
        target = (rng.random(8) > 0.5).astype(np.float32)
        loss = F.bce_with_logits(logits, target)
        probs = 1 / (1 + np.exp(-logits.data))
        expected = -(target * np.log(probs) + (1 - target) * np.log(1 - probs)).mean()
        assert float(loss.data) == pytest.approx(expected, rel=1e-4)

    def test_bce_with_logits_gradcheck(self, rng, numgrad):
        logits = tensor_of(rng, (3, 4))
        target = (rng.random((3, 4)) > 0.5).astype(np.float32)
        F.bce_with_logits(logits, target).backward()

        def f():
            return float(F.bce_with_logits(Tensor(logits.data), target).data)

        np.testing.assert_allclose(logits.grad, numgrad(f, logits.data), atol=5e-3)

    def test_binary_cross_entropy_on_probs(self):
        probs = Tensor(np.asarray([0.9, 0.1], dtype=np.float32), requires_grad=True)
        loss = F.binary_cross_entropy(probs, np.asarray([1.0, 0.0]))
        assert float(loss.data) == pytest.approx(-np.log(0.9), rel=1e-3)

    def test_mse_and_l1(self, rng):
        pred = tensor_of(rng, (5,))
        target = rng.normal(size=5).astype(np.float32)
        assert float(F.mse_loss(pred, target).data) == pytest.approx(
            ((pred.data - target) ** 2).mean(), rel=1e-5
        )
        assert float(F.l1_loss(pred, target).data) == pytest.approx(
            np.abs(pred.data - target).mean(), rel=1e-5
        )


class TestBatchNormDropout:
    def test_batch_norm_normalizes_in_training(self, rng):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(4)
        x = tensor_of(rng, (8, 4, 5, 5))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-2)

    def test_batch_norm_uses_running_stats_in_eval(self, rng):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(2.0, 3.0, size=(16, 2, 4, 4)).astype(np.float32))
        for _ in range(30):
            bn(x)
        bn.eval()
        out = bn(x)
        # Running stats approximate batch stats, so output ~ N(0, 1).
        assert abs(out.data.mean()) < 0.3

    def test_batch_norm_gradcheck(self, rng, numgrad):
        from repro.nn import functional as F2

        x = tensor_of(rng, (3, 2, 4, 4))
        gamma = tensor_of(rng, (2,))
        beta = tensor_of(rng, (2,))
        rm = np.zeros(2, dtype=np.float32)
        rv = np.ones(2, dtype=np.float32)
        (F2.batch_norm(x, gamma, beta, rm.copy(), rv.copy(), training=True) ** 2).mean().backward()

        def f():
            out = F2.batch_norm(
                Tensor(x.data), Tensor(gamma.data), Tensor(beta.data),
                rm.copy(), rv.copy(), training=True,
            )
            return float((out.data ** 2).mean())

        for tensor in (x, gamma, beta):
            np.testing.assert_allclose(tensor.grad, numgrad(f, tensor.data), atol=1e-2)

    def test_dropout_identity_in_eval(self, rng):
        x = tensor_of(rng, (4, 4))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
