"""Process-free scheduler primitives: batch-cut policy, wake planning,
the bounded frame store, the stats ledger, and the detection wire format.
"""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.detection.decode import Detection
from repro.serve import FrameStore, PendingRequest, ServeStats, batch_cut, next_wake
from repro.serve.workers import decode_detections, encode_detections

pytestmark = pytest.mark.serve


def make_request(enqueue_t=0.0, deadline_t=100.0, slot=0):
    return PendingRequest(session_id=1, seq=0, slot=slot,
                          enqueue_t=enqueue_t, deadline_t=deadline_t,
                          future=Future())


class TestBatchCut:
    def test_empty_queue_never_cuts(self):
        assert batch_cut([], now=10.0, max_batch=4, batch_window_s=0.01) == 0

    def test_full_batch_cuts_immediately(self):
        queue = [make_request(enqueue_t=5.0) for _ in range(6)]
        assert batch_cut(queue, now=5.0, max_batch=4, batch_window_s=1.0) == 4

    def test_partial_batch_waits_for_window(self):
        queue = [make_request(enqueue_t=5.0)]
        assert batch_cut(queue, now=5.001, max_batch=4,
                         batch_window_s=0.01) == 0

    def test_partial_batch_cuts_after_window(self):
        queue = [make_request(enqueue_t=5.0), make_request(enqueue_t=5.005)]
        assert batch_cut(queue, now=5.02, max_batch=4,
                         batch_window_s=0.01) == 2

    def test_draining_flushes_partial_batch(self):
        queue = [make_request(enqueue_t=5.0)]
        assert batch_cut(queue, now=5.0, max_batch=4, batch_window_s=10.0,
                         draining=True) == 1


class TestNextWake:
    def test_empty_queue_sleeps_indefinitely(self):
        assert next_wake([], now=0.0, batch_window_s=0.01) is None

    def test_window_expiry_bounds_sleep(self):
        queue = [make_request(enqueue_t=5.0, deadline_t=100.0)]
        wake = next_wake(queue, now=5.002, batch_window_s=0.01)
        assert wake == pytest.approx(0.008)

    def test_deadline_bounds_sleep_when_sooner(self):
        queue = [make_request(enqueue_t=5.0, deadline_t=5.004)]
        wake = next_wake(queue, now=5.0, batch_window_s=0.1)
        assert wake == pytest.approx(0.004)

    def test_overdue_clamps_to_zero(self):
        queue = [make_request(enqueue_t=0.0, deadline_t=1.0)]
        assert next_wake(queue, now=50.0, batch_window_s=0.01) == 0.0


class TestFrameStore:
    def test_capacity_is_the_admission_bound(self):
        store = FrameStore(input_size=32, capacity=2)
        try:
            frame = np.zeros((3, 32, 32), dtype=np.float32)
            first = store.acquire(frame)
            second = store.acquire(frame)
            assert {first, second} == {0, 1}
            assert store.in_use == 2
            assert store.acquire(frame) is None  # full -> shed
            store.release(first)
            assert store.acquire(frame) == first
        finally:
            store.close()

    def test_round_trips_frame_contents(self):
        store = FrameStore(input_size=32, capacity=1)
        try:
            frame = np.random.default_rng(3).random((3, 32, 32))
            slot = store.acquire(frame.astype(np.float32))
            np.testing.assert_array_equal(store.read(slot),
                                          frame.astype(np.float32))
        finally:
            store.close()

    def test_rejects_wrong_shape(self):
        store = FrameStore(input_size=32, capacity=1)
        try:
            with pytest.raises(ValueError, match="shape"):
                store.acquire(np.zeros((3, 16, 16), dtype=np.float32))
        finally:
            store.close()


class TestServeStats:
    def test_snapshot_aggregates(self):
        stats = ServeStats()
        stats.count("accepted", 3)
        stats.count("shed")
        stats.observe_depth(5)
        stats.observe_depth(2)
        stats.observe_batch(4)
        stats.observe_batch(2)
        for latency in (0.010, 0.020, 0.030):
            stats.observe_latency(latency)
        snap = stats.snapshot()
        assert snap["accepted"] == 3
        assert snap["shed"] == 1
        assert snap["max_queue_depth"] == 5
        assert snap["batches"] == 2
        assert snap["mean_batch_occupancy"] == pytest.approx(3.0)
        assert snap["latency_p50_ms"] == pytest.approx(20.0)
        assert snap["latency_p99_ms"] == pytest.approx(30.0, abs=0.5)

    def test_concurrent_counting_is_exact(self):
        stats = ServeStats()

        def bump():
            for _ in range(500):
                stats.count("ok")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.snapshot()["ok"] == 2000


def test_detection_wire_format_round_trip():
    detections = [
        Detection(box_xyxy=np.array([1.0, 2.0, 30.5, 40.25], dtype=np.float32),
                  score=0.875, class_id=3,
                  class_probs=np.array([0.1, 0.1, 0.1, 0.6, 0.1],
                                       dtype=np.float32)),
        Detection(box_xyxy=np.array([0.0, 0.0, 5.0, 5.0], dtype=np.float32),
                  score=0.5, class_id=0,
                  class_probs=np.array([0.9, 0.025, 0.025, 0.025, 0.025],
                                       dtype=np.float32)),
    ]
    decoded = decode_detections(encode_detections(detections))
    assert len(decoded) == len(detections)
    for got, want in zip(decoded, detections):
        assert got.class_id == want.class_id
        assert got.score == pytest.approx(want.score)
        np.testing.assert_allclose(got.box_xyxy, want.box_xyxy)
        np.testing.assert_allclose(got.class_probs, want.class_probs)
