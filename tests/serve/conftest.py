"""Shared fixtures for the serving-layer tests.

Everything runs at the laptop-scale detector profile (64², width 0.25)
so even the spawn-based pool tests finish in seconds on one core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.config import TinyYoloConfig
from repro.detection.model import TinyYolo

INPUT_SIZE = 64


@pytest.fixture(scope="module")
def detector():
    model = TinyYolo(TinyYoloConfig(input_size=INPUT_SIZE,
                                    width_multiplier=0.25))
    model.eval()
    return model


@pytest.fixture
def make_frames():
    def _make(count: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return [rng.random((3, INPUT_SIZE, INPUT_SIZE)).astype(np.float32)
                for _ in range(count)]
    return _make
