"""DetectionServer semantics on the in-process backend (``workers=0``).

No child processes: these tests pin down admission control, shed /
timeout / cancel behaviour, response ordering, parity with direct
inference, and the asyncio facade — fast enough to run everywhere.
"""

import asyncio

import numpy as np
import pytest

from repro.detection.decode import batched_detections
from repro.serve import (
    AdmissionError,
    DetectionServer,
    RequestStatus,
    ServeConfig,
    ServerClosed,
)

pytestmark = pytest.mark.serve


def inproc_config(**overrides):
    defaults = dict(workers=0, max_batch=4, batch_window_s=0.005,
                    queue_capacity=16, max_sessions=4, deadline_s=30.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def test_parity_and_ordering_with_direct_inference(detector, make_frames):
    frames = make_frames(10, seed=11)
    server = DetectionServer(detector, inproc_config())
    try:
        session = server.open_session("client-a")
        futures = [server.submit(session, frame) for frame in frames]
        responses = [future.result(timeout=30) for future in futures]
    finally:
        server.close()

    assert [resp.seq for resp in responses] == list(range(10))
    assert all(resp.status == RequestStatus.OK for resp in responses)
    assert all(resp.degraded for resp in responses)  # inproc == degraded

    reference = batched_detections(detector, frames, conf_threshold=0.3,
                                   iou_threshold=0.45, max_detections=50,
                                   batch_size=4)
    for resp, want in zip(responses, reference):
        assert len(resp.detections) == len(want)
        for got, ref in zip(resp.detections, want):
            assert got.class_id == ref.class_id
            np.testing.assert_allclose(got.box_xyxy, ref.box_xyxy, atol=1e-4)
            assert got.score == pytest.approx(ref.score, abs=1e-5)


def test_lowered_backend_matches_reference_detections(detector, make_frames):
    """`ServeConfig(lowered=True)` swaps the inproc backend onto the
    eval-time lowered executor (DESIGN.md §13); detections must match
    the unlowered server within the lowering trace band."""
    frames = make_frames(6, seed=13)
    server = DetectionServer(detector, inproc_config(lowered=True))
    try:
        session = server.open_session("client-lowered")
        futures = [server.submit(session, frame) for frame in frames]
        responses = [future.result(timeout=30) for future in futures]
    finally:
        server.close()

    assert all(resp.status == RequestStatus.OK for resp in responses)
    reference = batched_detections(detector, frames, conf_threshold=0.3,
                                   iou_threshold=0.45, max_detections=50,
                                   batch_size=4)
    for resp, want in zip(responses, reference):
        assert len(resp.detections) == len(want)
        for got, ref in zip(resp.detections, want):
            assert got.class_id == ref.class_id
            np.testing.assert_allclose(got.box_xyxy, ref.box_xyxy, atol=1e-3)
            assert got.score == pytest.approx(ref.score, abs=1e-3)


def test_burst_past_capacity_sheds_instead_of_queueing(detector, make_frames):
    # Window far longer than the burst: the queue cannot drain mid-burst,
    # so requests past the slot capacity must be rejected immediately.
    config = inproc_config(queue_capacity=2, max_batch=8, batch_window_s=0.5)
    server = DetectionServer(detector, config)
    try:
        session = server.open_session("bursty")
        futures = [server.submit(session, frame)
                   for frame in make_frames(5, seed=2)]
        # Shed responses resolve instantly, before the batch window.
        shed_now = [f for f in futures if f.done()
                    and f.result().status == RequestStatus.SHED]
        assert len(shed_now) == 3
        assert all(not f.result().detections for f in shed_now)
        responses = [future.result(timeout=30) for future in futures]
    finally:
        server.close()
    statuses = [resp.status for resp in responses]
    assert statuses.count(RequestStatus.OK) == 2
    snap = server.snapshot()
    assert snap["shed"] == 3
    assert snap["accepted"] == 2
    assert snap["max_queue_depth"] <= config.queue_capacity


def test_deadline_expires_queued_request(detector, make_frames):
    # Deadline shorter than the batch window: the request times out in
    # the queue before any batch is cut.
    config = inproc_config(deadline_s=0.02, batch_window_s=5.0, max_batch=8)
    server = DetectionServer(detector, config)
    try:
        session = server.open_session("slowpoke")
        future = server.submit(session, make_frames(1)[0])
        response = future.result(timeout=10)
        assert response.status == RequestStatus.TIMEOUT
        assert not response.detections
    finally:
        server.close()
    assert server.snapshot()["timeouts"] == 1


def test_admission_control_caps_sessions(detector):
    server = DetectionServer(detector, inproc_config(max_sessions=2))
    try:
        server.open_session("a")
        second = server.open_session("b")
        with pytest.raises(AdmissionError):
            server.open_session("c")
        assert server.snapshot()["admission_rejected"] == 1
        server.close_session(second)
        server.open_session("d")  # freed capacity is reusable
    finally:
        server.close()


def test_submit_after_close_raises(detector, make_frames):
    server = DetectionServer(detector, inproc_config())
    session = server.open_session("late")
    server.close()
    with pytest.raises(ServerClosed):
        server.submit(session, make_frames(1)[0])


def test_close_without_drain_cancels_queued_requests(detector, make_frames):
    config = inproc_config(batch_window_s=10.0, max_batch=8)
    server = DetectionServer(detector, config)
    session = server.open_session("doomed")
    futures = [server.submit(session, frame) for frame in make_frames(3)]
    server.close(drain=False)
    statuses = {future.result(timeout=5).status for future in futures}
    assert statuses <= {RequestStatus.CANCELLED, RequestStatus.OK}
    assert RequestStatus.CANCELLED in statuses


def test_drain_close_completes_queued_requests(detector, make_frames):
    config = inproc_config(batch_window_s=10.0, max_batch=8)
    server = DetectionServer(detector, config)
    session = server.open_session("drained")
    futures = [server.submit(session, frame) for frame in make_frames(3)]
    server.close(drain=True)
    responses = [future.result(timeout=5) for future in futures]
    assert all(resp.status == RequestStatus.OK for resp in responses)


def test_asyncio_facade(detector, make_frames):
    frames = make_frames(6, seed=9)
    server = DetectionServer(detector, inproc_config())

    async def drive():
        session = server.open_session("async-client")
        awaitables = [server.submit_async(session, frame) for frame in frames]
        return await asyncio.gather(*awaitables)

    try:
        responses = asyncio.run(drive())
    finally:
        server.close()
    assert [resp.seq for resp in responses] == list(range(6))
    assert all(resp.status == RequestStatus.OK for resp in responses)


def test_snapshot_reports_inproc_mode(detector, make_frames):
    server = DetectionServer(detector, inproc_config())
    try:
        session = server.open_session("s")
        server.submit(session, make_frames(1)[0]).result(timeout=10)
    finally:
        server.close()
    snap = server.snapshot()
    assert snap["mode"] == "inproc"
    assert snap["degraded"] is True
    assert snap["ok"] == 1
