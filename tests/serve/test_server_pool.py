"""DetectionServer on the real worker pool: spawned processes, chaos.

The acceptance bar for the serving layer (DESIGN.md §11): a SIGKILL'd
worker must not drop or duplicate a single admitted request, and a pool
that cannot come up must degrade to serial in-process inference rather
than fail the stream.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.detection.decode import batched_detections
from repro.serve import DetectionServer, RequestStatus, ServeConfig

pytestmark = [pytest.mark.serve, pytest.mark.parallel]


def pool_config(**overrides):
    defaults = dict(workers=2, max_batch=4, batch_window_s=0.01,
                    queue_capacity=32, deadline_s=60.0, task_timeout_s=30.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def test_pool_parity_and_exactly_once(detector, make_frames):
    frames = make_frames(16, seed=5)
    server = DetectionServer(detector, pool_config())
    try:
        session = server.open_session("pool-client")
        futures = [server.submit(session, frame) for frame in frames]
        responses = [future.result(timeout=120) for future in futures]
    finally:
        server.close()

    assert sorted(resp.seq for resp in responses) == list(range(16))
    assert all(resp.status == RequestStatus.OK for resp in responses)
    assert all(not resp.degraded for resp in responses)
    snap = server.snapshot()
    assert snap["mode"] == "pool"
    assert snap["degraded"] is False
    assert snap["degraded_batches"] == 0

    reference = batched_detections(detector, frames, conf_threshold=0.3,
                                   iou_threshold=0.45, max_detections=50,
                                   batch_size=4)
    for resp, want in zip(responses, reference):
        assert len(resp.detections) == len(want)
        for got, ref in zip(resp.detections, want):
            assert got.class_id == ref.class_id
            np.testing.assert_allclose(got.box_xyxy, ref.box_xyxy, atol=1e-4)


def test_chaos_sigkill_mid_stream_loses_nothing(detector, make_frames):
    """Kill a live worker mid-stream: every admitted request still
    resolves exactly once, and the pool respawns the dead slot."""
    frames = make_frames(24, seed=6)
    server = DetectionServer(detector, pool_config())
    killed = False
    try:
        session = server.open_session("chaos-client")
        futures = []
        for index, frame in enumerate(frames):
            futures.append(server.submit(session, frame))
            if index == 8 and not killed:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    pids = server.worker_pids()
                    if pids:
                        os.kill(pids[0], signal.SIGKILL)
                        killed = True
                        break
                    time.sleep(0.02)
            time.sleep(0.002)
        responses = [future.result(timeout=120) for future in futures]
    finally:
        server.close()

    assert killed, "no live worker pid appeared within 10s"
    # Exactly once: every seq present, none duplicated, all ok.
    assert sorted(resp.seq for resp in responses) == list(range(24))
    assert all(resp.status == RequestStatus.OK for resp in responses)
    snap = server.snapshot()
    assert snap["ok"] == 24
    assert snap["pool"]["respawns"] >= 1
    assert snap["pool"]["worker_deaths"] >= 1


def test_init_failure_degrades_to_inproc(detector, make_frames):
    """A pool whose workers cannot initialize must fall back to serial
    in-process inference and still answer every request."""
    config = pool_config(debug_fail_worker_init=True, task_timeout_s=10.0)
    frames = make_frames(8, seed=7)
    server = DetectionServer(detector, config)
    try:
        session = server.open_session("degraded-client")
        futures = [server.submit(session, frame) for frame in frames]
        responses = [future.result(timeout=120) for future in futures]
    finally:
        server.close()

    assert sorted(resp.seq for resp in responses) == list(range(8))
    assert all(resp.status == RequestStatus.OK for resp in responses)
    snap = server.snapshot()
    assert snap["mode"] == "inproc"
    assert snap["degraded"] is True
    assert snap["ok"] == 8
