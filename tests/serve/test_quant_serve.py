"""Int8 quantized serving: precision knob through both backends.

``ServeConfig(precision="int8")`` must (a) fail fast at server
construction when no calibration is supplied, (b) serve detections that
byte-match direct quantized inference on the inproc backend, (c) produce
the same detections from spawned pool workers — the CalibrationResult
rides the payload pickle and workers re-quantize after the weight
broadcast, so cross-process int8 results must equal in-process ones —
and (d) surface the precision in snapshots and the live probe.
"""

import numpy as np
import pytest

from repro.detection.decode import batched_detections
from repro.nn.quant import QuantizationError, calibrate_detector
from repro.serve import DetectionServer, RequestStatus, ServeConfig

pytestmark = [pytest.mark.quant, pytest.mark.serve]


def inproc_config(**overrides):
    defaults = dict(workers=0, max_batch=4, batch_window_s=0.005,
                    queue_capacity=16, max_sessions=4, deadline_s=30.0,
                    precision="int8")
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture(scope="module")
def calibration(detector):
    rng = np.random.default_rng(21)
    frames = rng.random((8, 3, 64, 64)).astype(np.float32)
    return calibrate_detector(detector, frames)


def serve_frames(server, frames, client="int8-client", timeout=120):
    session = server.open_session(client)
    futures = [server.submit(session, frame) for frame in frames]
    return [future.result(timeout=timeout) for future in futures]


def test_int8_without_calibration_fails_at_construction(detector):
    with pytest.raises(QuantizationError, match="requires calibration"):
        DetectionServer(detector, inproc_config())


def test_serve_config_rejects_unknown_precision():
    with pytest.raises(ValueError, match="precision"):
        ServeConfig(precision="int4")


def test_inproc_int8_matches_direct_quantized_inference(
        detector, make_frames, calibration):
    frames = make_frames(10, seed=31)
    server = DetectionServer(detector, inproc_config(),
                             calibration=calibration)
    try:
        responses = serve_frames(server, frames)
        snap = server.snapshot()
        probe = server.probe()
    finally:
        server.close()

    assert all(resp.status == RequestStatus.OK for resp in responses)
    assert snap["precision"] == "int8"
    assert probe["int8"] == 1.0

    quantized = detector.quantize(calibration=calibration)
    reference = batched_detections(quantized, frames, conf_threshold=0.3,
                                   iou_threshold=0.45, max_detections=50,
                                   batch_size=4)
    for resp, want in zip(responses, reference):
        assert len(resp.detections) == len(want)
        for got, ref in zip(resp.detections, want):
            assert got.class_id == ref.class_id
            np.testing.assert_array_equal(got.box_xyxy, ref.box_xyxy)
            assert got.score == ref.score


def test_fp_server_reports_fp_precision(detector, make_frames):
    server = DetectionServer(detector, inproc_config(precision="fp"))
    try:
        responses = serve_frames(server, make_frames(2, seed=1))
        snap = server.snapshot()
        probe = server.probe()
    finally:
        server.close()
    assert all(resp.status == RequestStatus.OK for resp in responses)
    assert snap["precision"] == "fp"
    assert probe["int8"] == 0.0


@pytest.mark.parallel
def test_pool_int8_matches_inproc_int8(detector, make_frames, calibration):
    """Spawned workers re-quantize from the pickled CalibrationResult;
    their int8 detections must byte-match the in-process quantized path
    (the exact-GEMM determinism argument holds across processes)."""
    frames = make_frames(8, seed=37)
    pool = DetectionServer(
        detector,
        ServeConfig(workers=2, max_batch=4, batch_window_s=0.01,
                    queue_capacity=32, deadline_s=60.0, task_timeout_s=30.0,
                    precision="int8"),
        calibration=calibration)
    try:
        pool_responses = serve_frames(pool, frames, client="pool-int8")
        snap = pool.snapshot()
    finally:
        pool.close()

    assert all(resp.status == RequestStatus.OK for resp in pool_responses)
    assert snap["precision"] == "int8"

    quantized = detector.quantize(calibration=calibration)
    reference = batched_detections(quantized, frames, conf_threshold=0.3,
                                   iou_threshold=0.45, max_detections=50,
                                   batch_size=4)
    # Byte-equality holds whether the batch ran in a worker or on the
    # degraded inproc fallback — int8 numerics are process-independent.
    for resp, want in zip(pool_responses, reference):
        assert len(resp.detections) == len(want)
        for got, ref in zip(resp.detections, want):
            assert got.class_id == ref.class_id
            np.testing.assert_array_equal(got.box_xyxy, ref.box_xyxy)
