"""Tiny-config serve smoke test: the quick-start path from EXPERIMENTS.md
in miniature — open a session, stream a few frames, read the snapshot.
"""

import pytest

from repro.serve import DetectionServer, RequestStatus, ServeConfig

pytestmark = pytest.mark.serve


def test_serve_smoke(detector, make_frames):
    server = DetectionServer(
        detector,
        ServeConfig(workers=1, max_batch=2, batch_window_s=0.005,
                    queue_capacity=8, deadline_s=60.0, task_timeout_s=30.0),
    )
    try:
        session = server.open_session("smoke")
        futures = [server.submit(session, frame)
                   for frame in make_frames(4, seed=1)]
        responses = [future.result(timeout=120) for future in futures]
    finally:
        server.close()
    assert [resp.status for resp in responses] == [RequestStatus.OK] * 4
    snap = server.snapshot()
    assert snap["accepted"] == 4
    assert snap["ok"] == 4
    assert snap["batches"] >= 1
