"""BENCH_history.jsonl trend analysis + the bench-script --check gates.

The acceptance pair: a synthetic injected regression against a copied
history must FAIL the gate; the repo's committed history must PASS it.
"""

import importlib.util
import json
import os
import shutil

import pytest

from repro.obs.history import (
    check_trend,
    detect_regression,
    load_history,
    metric_series,
    trend_summary,
)

pytestmark = pytest.mark.obslive

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
COMMITTED_HISTORY = os.path.join(REPO_ROOT, "BENCH_history.jsonl")


def load_script(name):
    path = os.path.join(REPO_ROOT, "scripts", name)
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_history(path, benchmark, metric, values):
    with open(path, "w") as handle:
        for value in values:
            handle.write(json.dumps({"benchmark": benchmark,
                                     metric: value}) + "\n")


class TestLoader:
    def test_torn_and_garbage_lines_are_counted_not_raised(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        with open(path, "w") as handle:
            handle.write('{"benchmark": "b", "fps": 10.0}\n')
            handle.write("not json at all\n")
            handle.write('[1, 2, 3]\n')          # JSON but not an object
            handle.write("\n")                    # blank: ignored silently
            handle.write('{"benchmark": "b", "fps": 11.0}\n')
            handle.write('{"benchmark": "b", "fps": 12.')  # torn tail
        result = load_history(path)
        assert len(result.records) == 2
        assert result.bad_lines == 3
        assert metric_series(result, "b", "fps") == [10.0, 11.0]

    def test_benchmark_filter(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        with open(path, "w") as handle:
            handle.write('{"benchmark": "a", "fps": 1.0}\n')
            handle.write('{"benchmark": "b", "fps": 2.0}\n')
        result = load_history(path, benchmark="b")
        assert [r["fps"] for r in result.records] == [2.0]


class TestDetector:
    def test_insufficient_history_passes(self):
        verdict = detect_regression([1.0, 2.0, 3.0], 0.0, min_points=4)
        assert verdict.status == "insufficient"
        assert verdict.ok

    def test_clear_regression_fails(self):
        trailing = [100.0, 101.0, 99.0, 100.5, 100.0, 99.5]
        verdict = detect_regression(trailing, 50.0, direction="higher")
        assert verdict.status == "regression"
        assert not verdict.ok

    def test_value_inside_band_passes(self):
        trailing = [100.0, 101.0, 99.0, 100.5, 100.0, 99.5]
        verdict = detect_regression(trailing, 98.0, direction="higher")
        assert verdict.status == "ok"

    def test_lower_is_better_direction(self):
        trailing = [10.0, 11.0, 9.0, 10.5, 10.0]
        assert detect_regression(trailing, 30.0,
                                 direction="lower").status == "regression"
        assert detect_regression(trailing, 10.2,
                                 direction="lower").status == "ok"

    def test_single_outlier_in_window_does_not_poison_baseline(self):
        # One loaded-CI-box outlier: median/MAD shrug it off where a
        # mean/sigma band would balloon.
        trailing = [100.0, 100.5, 99.5, 1000.0, 100.0, 100.2]
        verdict = detect_regression(trailing, 99.0, direction="higher")
        assert verdict.status == "ok"

    def test_identical_window_tolerates_rounding_wobble(self):
        trailing = [100.0] * 6  # MAD = 0: the relative floor must kick in
        assert detect_regression(trailing, 99.0,
                                 direction="higher").status == "ok"
        assert detect_regression(trailing, 50.0,
                                 direction="higher").status == "regression"

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            detect_regression([1.0] * 5, 1.0, direction="sideways")


class TestBenchGates:
    """The three scripts' check_history_trend, driven as the CI gate does."""

    def test_committed_history_passes_all_three_gates(self):
        """The committed history must never veto the committed reports:
        each gate is fed its own committed number (falling back to a
        nominal value while that benchmark's history is still too short
        to judge)."""
        hot = load_script("bench_hotpath.py")
        train = load_script("bench_train.py")
        serve = load_script("bench_serve.py")
        with open(os.path.join(REPO_ROOT, "BENCH_hotpath.json")) as handle:
            hot_report = json.load(handle)
        with open(os.path.join(REPO_ROOT, "BENCH_serve.json")) as handle:
            serve_report = json.load(handle)
        with open(os.path.join(REPO_ROOT, "BENCH_train.json")) as handle:
            train_report = json.load(handle)
        assert hot.check_history_trend(
            COMMITTED_HISTORY,
            {"batched_fps": hot_report["batched_fps"]}) == 0
        assert train.check_history_trend(
            COMMITTED_HISTORY,
            {"parallel_steps_per_sec":
             train_report["parallel_steps_per_sec"]}) == 0
        assert serve.check_history_trend(
            COMMITTED_HISTORY,
            {"sustained_fps": serve_report["sustained_fps"],
             "latency_p99_ms": serve_report["latency_p99_ms"]}) == 0

    def test_injected_regression_fails_the_hotpath_gate(self, tmp_path):
        """Copy the committed history, extend it to a judgeable window,
        then present a collapsed fps: the gate must fail."""
        path = os.path.join(tmp_path, "BENCH_history.jsonl")
        shutil.copy(COMMITTED_HISTORY, path)
        with open(path, "a") as handle:
            for fps in (200.0, 201.0, 199.0, 200.5, 200.0, 199.5):
                handle.write(json.dumps({
                    "benchmark": "av_pipeline_hotpath",
                    "batched_fps": fps}) + "\n")
        hot = load_script("bench_hotpath.py")
        assert hot.check_history_trend(path, {"batched_fps": 200.0}) == 0
        assert hot.check_history_trend(path, {"batched_fps": 60.0}) == 1

    def test_injected_latency_regression_fails_the_serve_gate(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        with open(path, "w") as handle:
            for fps, p99 in ((50.0, 20.0), (51.0, 21.0), (49.0, 19.0),
                             (50.5, 20.5), (50.0, 20.0)):
                handle.write(json.dumps({
                    "benchmark": "detection_serve",
                    "sustained_fps": fps, "latency_p99_ms": p99}) + "\n")
        serve = load_script("bench_serve.py")
        healthy = {"sustained_fps": 50.0, "latency_p99_ms": 20.0}
        assert serve.check_history_trend(path, healthy) == 0
        slow_tail = {"sustained_fps": 50.0, "latency_p99_ms": 80.0}
        assert serve.check_history_trend(path, slow_tail) == 1

    def test_injected_regression_fails_the_train_gate(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        write_history(path, "parallel_train_engine", "parallel_steps_per_sec",
                      [4.0, 4.1, 3.9, 4.0, 4.05])
        train = load_script("bench_train.py")
        assert train.check_history_trend(
            path, {"parallel_steps_per_sec": 4.0}) == 0
        assert train.check_history_trend(
            path, {"parallel_steps_per_sec": 1.0}) == 1

    def test_missing_history_file_passes(self, tmp_path):
        hot = load_script("bench_hotpath.py")
        missing = os.path.join(tmp_path, "nope.jsonl")
        assert hot.check_history_trend(missing, {"batched_fps": 1.0}) == 0


class TestTrendSummary:
    def test_summary_over_committed_history(self):
        summary = trend_summary(COMMITTED_HISTORY)
        assert summary["bad_lines"] == 0
        assert "detection_serve" in summary["benchmarks"]
        serve = summary["benchmarks"]["detection_serve"]
        assert "sustained_fps" in serve
        assert serve["sustained_fps"]["points"] >= 1
        assert serve["sustained_fps"]["median"] > 0

    def test_check_trend_reports_bad_lines(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        write_history(path, "b", "fps", [10.0, 10.1, 9.9, 10.0])
        with open(path, "a") as handle:
            handle.write("torn garba")
        verdict = check_trend(path, "b", "fps", 10.0)
        assert verdict.ok
        assert verdict.bad_lines == 1
