"""SLO rule parsing and the edge-triggered alerting state machine."""

import json
import os

import pytest

from repro.obs import (
    Alert,
    Metrics,
    SloEngine,
    SloRule,
    SloRuleError,
    load_alerts,
)

pytestmark = pytest.mark.obslive


class TestRuleParsing:
    def test_parse_roundtrip(self):
        rule = SloRule.parse("p99_latency_ms < 120")
        assert rule.metric == "p99_latency_ms"
        assert rule.op == "<" and rule.threshold == 120.0
        assert str(rule) == "p99_latency_ms < 120"

    def test_parse_dotted_metric_and_float_threshold(self):
        rule = SloRule.parse("serve.shed_rate < 0.05")
        assert rule.metric == "serve.shed_rate"
        assert rule.threshold == pytest.approx(0.05)

    @pytest.mark.parametrize("text", [
        "", "no operator", "x == 5", "x < banana", "< 5", "x <",
        "1x < 5",
    ])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(SloRuleError):
            SloRule.parse(text)

    def test_parse_for_ticks_suffix(self):
        rule = SloRule.parse("train.steps_per_s > 0.5 for_ticks 3")
        assert rule.metric == "train.steps_per_s"
        assert rule.op == ">" and rule.threshold == pytest.approx(0.5)
        assert rule.for_ticks == 3

    def test_for_ticks_suffix_overrides_keyword_default(self):
        rule = SloRule.parse("latency < 100 for_ticks 5", for_ticks=2)
        assert rule.for_ticks == 5

    def test_for_ticks_suffix_roundtrips_through_str(self):
        rule = SloRule.parse("train.grad_norm < 1e3 for_ticks 4")
        assert str(rule) == "train.grad_norm < 1000 for_ticks 4"
        assert SloRule.parse(str(rule)) == rule

    def test_for_ticks_one_str_stays_bare(self):
        assert str(SloRule.parse("x < 5 for_ticks 1")) == "x < 5"

    @pytest.mark.parametrize("text", [
        "x < 5 for_ticks 0", "x < 5 for_ticks", "x < 5 for_ticks -1",
        "x < 5 for_ticks 1.5", "x < 5 forticks 3",
    ])
    def test_bad_for_ticks_suffix_rejected(self, text):
        with pytest.raises(SloRuleError):
            SloRule.parse(text)

    def test_healthy_is_the_objective(self):
        rule = SloRule.parse("shed_rate < 0.05")
        assert rule.healthy(0.01)
        assert not rule.healthy(0.05)  # strict <
        assert SloRule.parse("fps > 10").healthy(11.0)


class TestEdgeTriggering:
    def test_fires_exactly_on_crossing(self):
        engine = SloEngine([SloRule.parse("latency < 100")])
        assert engine.evaluate(0.0, {"latency": 50.0}) == []
        fired = engine.evaluate(1.0, {"latency": 150.0})
        assert [a.kind for a in fired] == ["violation"]
        assert fired[0].t == 1.0 and fired[0].value == 150.0
        # Sustained breach: no further alerts.
        assert engine.evaluate(2.0, {"latency": 200.0}) == []
        assert engine.evaluate(3.0, {"latency": 180.0}) == []
        # Recovery: exactly one.
        recovered = engine.evaluate(4.0, {"latency": 50.0})
        assert [a.kind for a in recovered] == ["recovery"]
        assert engine.evaluate(5.0, {"latency": 50.0}) == []
        assert len(engine.alerts) == 2

    def test_for_ticks_debounce(self):
        rule = SloRule.parse("latency < 100", for_ticks=3)
        engine = SloEngine([rule])
        assert engine.evaluate(0.0, {"latency": 150.0}) == []
        assert engine.evaluate(1.0, {"latency": 150.0}) == []
        fired = engine.evaluate(2.0, {"latency": 150.0})
        assert [a.kind for a in fired] == ["violation"]

    def test_healthy_sample_resets_debounce_streak(self):
        rule = SloRule.parse("latency < 100", for_ticks=2)
        engine = SloEngine([rule])
        engine.evaluate(0.0, {"latency": 150.0})
        engine.evaluate(1.0, {"latency": 50.0})   # streak reset
        engine.evaluate(2.0, {"latency": 150.0})
        assert engine.alerts == []                # never reached 2 in a row
        fired = engine.evaluate(3.0, {"latency": 150.0})
        assert [a.kind for a in fired] == ["violation"]

    def test_missing_metric_changes_nothing(self):
        engine = SloEngine([SloRule.parse("latency < 100")])
        engine.evaluate(0.0, {"latency": 150.0})
        assert engine.violated_rules() == ["latency < 100"]
        # Ten ticks without the metric: still violated, no new alerts.
        for i in range(10):
            assert engine.evaluate(1.0 + i, {"other": 1.0}) == []
        assert engine.violated_rules() == ["latency < 100"]
        assert len(engine.alerts) == 1

    def test_metrics_counters_on_transitions(self):
        metrics = Metrics()
        engine = SloEngine([SloRule.parse("x < 1")], metrics=metrics)
        engine.evaluate(0.0, {"x": 5.0})
        engine.evaluate(1.0, {"x": 0.0})
        counters = metrics.snapshot()["counters"]
        assert counters["slo.violations"] == 1.0
        assert counters["slo.recoveries"] == 1.0
        assert counters["slo.violations.x"] == 1.0


class TestAlertSink:
    def test_alerts_jsonl_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "alerts.jsonl")
        engine = SloEngine([SloRule.parse("x < 1")], alerts_path=path)
        engine.evaluate(0.5, {"x": 5.0})
        engine.evaluate(1.5, {"x": 0.0})
        loaded = load_alerts(path)
        assert [a.kind for a in loaded] == ["violation", "recovery"]
        assert loaded[0] == Alert(0.5, "violation", "x < 1", "x", 5.0, 1.0)

    def test_load_alerts_tolerates_torn_tail(self, tmp_path):
        path = os.path.join(tmp_path, "alerts.jsonl")
        engine = SloEngine([SloRule.parse("x < 1")], alerts_path=path)
        engine.evaluate(0.0, {"x": 5.0})
        with open(path, "a") as handle:
            handle.write('{"schema_version": 1, "t": 9.0, "kind": "vi')
        loaded = load_alerts(path)
        assert len(loaded) == 1
        assert loaded[0].kind == "violation"

    def test_alert_json_schema_fields(self):
        alert = Alert(1.0, "violation", "x < 1", "x", 5.0, 1.0)
        doc = alert.to_json()
        assert doc["schema_version"] == 1
        assert json.loads(json.dumps(doc)) == doc
        assert Alert.from_json(doc) == alert
