"""Training-side live telemetry: trainer ledgers, the TrainTelemetry
pipeline, stall/divergence SLOs, and the non-perturbation contract.

The acceptance scenarios from DESIGN.md §14 all live here:

* a fake-clock run with telemetry attached produces **bit-identical**
  weights to the same-seed ``live=None`` run, with sampling provably
  happening mid-run;
* an injected trainer hang crosses the stall rule **exactly once** and
  recovers exactly once when steps resume;
* SIGKILLing an engine-mode training process mid-run leaves a loadable
  ``train_live.json`` and a parseable ``alerts.jsonl``.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.gan.discriminator import PatchDiscriminator
from repro.gan.generator import PatchGenerator
from repro.gan.trainer import GanTrainConfig, train_gan
from repro.obs import (
    LiveConfig,
    Metrics,
    TrainTelemetry,
    TrainerState,
    load_train_snapshot,
)
from repro.obs.slo import load_alerts

pytestmark = pytest.mark.obslive

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


def _small_models():
    return (PatchGenerator(patch_size=16, latent_dim=8, base_channels=8,
                           seed=3),
            PatchDiscriminator(patch_size=16, seed=4))


def _state_bytes(module):
    return {key: np.asarray(value).tobytes()
            for key, value in module.state_dict().items()}


class TestTrainerLedger:
    def test_step_records_progress_and_metrics(self):
        clock = FakeClock()
        state = TrainerState("gan", total_steps=10, clock=clock)
        state.step(3, loss=0.5, grad_norm=2.0)
        probe = state.probe()
        assert probe["steps_done"] == 4.0       # step index 3 => 4 complete
        assert probe["total_steps"] == 10.0
        assert probe["progress"] == pytest.approx(0.4)
        assert probe["loss"] == 0.5
        assert probe["grad_norm"] == 2.0
        assert probe["finished"] == 0.0

    def test_non_numeric_metric_values_are_dropped(self):
        state = TrainerState("gan", 10, FakeClock())
        state.step(0, loss=1.0, note="diverged")
        probe = state.probe()
        assert probe["loss"] == 1.0
        assert "note" not in probe

    def test_checkpoint_age_tracks_injected_clock(self):
        clock = FakeClock()
        state = TrainerState("gan", 10, clock)
        assert "checkpoint_age_s" not in state.probe()  # never checkpointed
        clock.advance(5.0)
        state.checkpoint_saved()
        clock.advance(4.0)
        probe = state.probe()
        assert probe["checkpoint_age_s"] == pytest.approx(4.0)
        assert probe["checkpoints"] == 1.0

    def test_zero_total_steps_has_no_progress(self):
        probe = TrainerState("adhoc", 0, FakeClock()).probe()
        assert "progress" not in probe

    def test_recovery_epoch_and_finish(self):
        state = TrainerState("gan", 10, FakeClock())
        state.recovery()
        state.set_epoch(2)
        state.finish()
        probe = state.probe()
        assert probe["recoveries"] == 1.0
        assert probe["eot_epoch"] == 2.0
        assert probe["finished"] == 1.0


class TestTrainTelemetry:
    def test_primary_trainer_aliases_flat_train_namespace(self):
        live = TrainTelemetry(clock=FakeClock())
        attack = live.attach("attack", 10)
        gan = live.attach("gan", 5)
        attack.step(0, loss=3.0)
        gan.step(0, loss=1.0)
        observed = live.sample_once(1.0)
        # First attach is primary: publishes both flat and namespaced.
        assert observed["train.steps_done"] == 1.0
        assert observed["train.loss"] == 3.0
        assert observed["train.attack.loss"] == 3.0
        # Secondary trainers only publish namespaced.
        assert observed["train.gan.loss"] == 1.0
        assert live.primary == "attack"

    def test_reattach_reuses_ledger(self):
        live = TrainTelemetry(clock=FakeClock())
        first = live.attach("gan", 10)
        first.step(4)
        again = live.attach("gan", 99)
        assert again is first
        assert again.steps_done == 5  # cumulative across attempts

    def test_derived_steps_per_s_from_fake_clock(self):
        live = TrainTelemetry(clock=FakeClock())
        state = live.attach("gan", 10)
        state.step(0)
        live.sample_once(1.0)
        state.step(1)
        state.step(2)
        observed = live.sample_once(3.0)
        # 2 steps over 2 fake seconds.
        assert observed["train.steps_per_s"] == pytest.approx(1.0)

    def test_ensure_probe_registers_once_per_prefix(self):
        live = TrainTelemetry(clock=FakeClock())
        calls = [0]

        def probe():
            calls[0] += 1
            return {"value": 1.0}

        live.ensure_probe("pool", probe)
        live.ensure_probe("pool", probe)
        live.sample_once(1.0)
        assert calls[0] == 1

    def test_host_probes_sample_proc_and_workspace(self):
        live = TrainTelemetry(clock=FakeClock())
        live.register_host_probes()
        live.register_host_probes()  # idempotent
        observed = live.sample_once(1.0)
        assert "proc.cpu_seconds" in observed
        assert "workspace.buffer_bytes" in observed
        assert sum(1 for prefix, _ in live._probes if prefix == "proc") == 1

    def test_snapshot_file_is_train_live_json(self, tmp_path):
        live = TrainTelemetry(directory=str(tmp_path), clock=FakeClock())
        state = live.attach("gan", 4)
        state.step(0, loss=1.0)
        live.sample_once(1.0)
        assert os.path.exists(os.path.join(tmp_path, "train_live.json"))
        assert not os.path.exists(os.path.join(tmp_path, "live.json"))
        doc = load_train_snapshot(os.path.join(tmp_path, "train_live.json"))
        assert doc["trainers"]["gan"]["primary"] is True
        assert doc["trainers"]["gan"]["steps_done"] == 1
        assert "train.loss" in doc["series"]

    def test_mirror_totals_are_exact_over_many_ticks(self):
        """Periodic per-tick mirrors plus the final stop() mirror must sum
        to the cumulative ledger totals — never double-counted."""
        metrics = Metrics()
        live = TrainTelemetry(clock=FakeClock(), metrics=metrics)
        state = live.attach("gan", 10)
        state.step(0, loss=2.0)
        state.checkpoint_saved()
        live.sample_once(1.0)
        state.step(1, loss=1.5)
        live.sample_once(2.0)
        live.sample_once(3.0)  # idle tick: no new deltas to fold
        state.recovery()
        live.stop(final_sample=True)  # final mirror tops up exactly
        counters = metrics.snapshot()["counters"]
        assert counters["train.gan.steps"] == 2.0
        assert counters["train.gan.checkpoints"] == 1.0
        assert counters["train.gan.recoveries"] == 1.0
        assert metrics.snapshot()["gauges"]["train.gan.loss"] == 1.5


class TestZeroOverhead:
    def test_live_none_run_spawns_no_sampler_thread(self, tmp_path):
        generator, discriminator = _small_models()
        before = {t.name for t in threading.enumerate()}
        train_gan(generator, discriminator, "star",
                  GanTrainConfig(steps=2, batch_size=4))
        after = {t.name for t in threading.enumerate()} - before
        assert not any("live-sampler" in name for name in after)
        assert os.listdir(tmp_path) == []

    def test_unstarted_telemetry_spawns_no_thread(self):
        before = {t.name for t in threading.enumerate()}
        live = TrainTelemetry(clock=FakeClock())
        live.attach("gan", 4)
        after = {t.name for t in threading.enumerate()} - before
        assert not any("live-sampler" in name for name in after)


class TestNonPerturbation:
    def test_live_attached_run_is_bit_identical(self, tmp_path, monkeypatch):
        """Probes are pure readers: a same-seed run with telemetry sampling
        every step produces byte-identical weights to a live=None run."""
        import repro.gan.trainer as gan_trainer

        config = GanTrainConfig(steps=6, batch_size=4)
        baseline_g, baseline_d = _small_models()
        train_gan(baseline_g, baseline_d, "star", config)

        clock = FakeClock()
        live = TrainTelemetry(directory=str(tmp_path / "run"),
                              config=LiveConfig(interval_s=1.0),
                              clock=clock)
        real_sample = gan_trainer.sample_batch

        def hooked(*args, **kwargs):
            # Tick the sampler between steps; pass the batch through
            # untouched so the rng stream is identical.
            live.sample_once(clock.advance(1.0))
            return real_sample(*args, **kwargs)

        monkeypatch.setattr(gan_trainer, "sample_batch", hooked)
        live_g, live_d = _small_models()
        train_gan(live_g, live_d, "star", config, live=live)

        assert live.ticks >= config.steps  # sampling really happened
        assert _state_bytes(live_g) == _state_bytes(baseline_g)
        assert _state_bytes(live_d) == _state_bytes(baseline_d)

    def test_pipeline_records_trainer_and_guard_series(
            self, tmp_path, monkeypatch):
        import repro.gan.trainer as gan_trainer

        clock = FakeClock()
        live = TrainTelemetry(directory=str(tmp_path),
                              config=LiveConfig(interval_s=1.0),
                              clock=clock)
        real_sample = gan_trainer.sample_batch
        monkeypatch.setattr(
            gan_trainer, "sample_batch",
            lambda *a, **k: (live.sample_once(clock.advance(1.0)),
                             real_sample(*a, **k))[1])
        generator, discriminator = _small_models()
        train_gan(generator, discriminator, "star",
                  GanTrainConfig(steps=4, batch_size=4), live=live)
        live.sample_once(clock.advance(1.0))

        names = live.series_names()
        assert "train.loss" in names and "train.gan.loss" in names
        assert "train.steps_per_s" in names
        assert "train.gan.guard.trips" in names
        assert "train.checkpoint_age_s" in names
        assert "proc.cpu_seconds" in names
        doc = load_train_snapshot(os.path.join(tmp_path, "train_live.json"))
        assert doc["trainers"]["gan"]["finished"] is True
        assert doc["trainers"]["gan"]["steps_done"] == 4


class TestStallSlo:
    def test_injected_hang_fires_one_violation_then_one_recovery(
            self, tmp_path, monkeypatch):
        """A mid-run hang (sampler ticks, no step progress) decays
        train.steps_per_s through the stall rule exactly once; resuming
        steps recovers it exactly once."""
        import repro.gan.trainer as gan_trainer

        clock = FakeClock()
        live = TrainTelemetry(
            directory=str(tmp_path),
            config=LiveConfig(interval_s=1.0, window_s=4.0,
                              rules=("train.steps_per_s > 0.5 for_ticks 2",)),
            clock=clock)
        real_sample = gan_trainer.sample_batch
        calls = [0]

        def hooked(*args, **kwargs):
            calls[0] += 1
            live.sample_once(clock.advance(1.0))
            if calls[0] == 9:
                # The hang: five sampler ticks with zero steps landing.
                for _ in range(5):
                    live.sample_once(clock.advance(1.0))
            return real_sample(*args, **kwargs)

        monkeypatch.setattr(gan_trainer, "sample_batch", hooked)
        generator, discriminator = _small_models()
        train_gan(generator, discriminator, "star",
                  GanTrainConfig(steps=16, batch_size=4), live=live)

        kinds = [alert.kind for alert in live.engine.alerts]
        assert kinds == ["violation", "recovery"]
        rule = "train.steps_per_s > 0.5 for_ticks 2"
        assert all(alert.rule == rule for alert in live.engine.alerts)
        assert live.engine.violated_rules() == []  # healthy at the end
        # The durable sink saw exactly the same two transitions.
        alerts = load_alerts(os.path.join(tmp_path, "alerts.jsonl"))
        assert [alert.kind for alert in alerts] == ["violation", "recovery"]


SIGKILL_CHILD = textwrap.dedent("""
    import os, sys, threading, time
    sys.path.insert(0, {src!r})
    from repro.gan.discriminator import PatchDiscriminator
    from repro.gan.generator import PatchGenerator
    from repro.gan.trainer import GanTrainConfig, train_gan
    from repro.obs import LiveConfig, TrainTelemetry

    run_dir = sys.argv[1]
    live = TrainTelemetry(
        directory=run_dir,
        config=LiveConfig(interval_s=0.02,
                          rules=("train.steps_per_s > 1e9",)))
    live.start()

    def announce():
        while True:
            if (os.path.exists(os.path.join(run_dir, "train_live.json"))
                    and os.path.exists(os.path.join(run_dir,
                                                    "alerts.jsonl"))):
                print("READY", flush=True)
                return
            time.sleep(0.01)

    threading.Thread(target=announce, daemon=True).start()
    generator = PatchGenerator(patch_size=16, latent_dim=8,
                               base_channels=8, seed=3)
    discriminator = PatchDiscriminator(patch_size=16, seed=4)
    # Engine-mode schedule (workers=0), effectively unbounded step count:
    # trains until SIGKILLed, never stops the sampler cleanly.
    train_gan(generator, discriminator, "star",
              GanTrainConfig(steps=10**9, batch_size=4, workers=0),
              live=live)
""")


class TestSigkillDurability:
    def test_sigkilled_training_leaves_loadable_artifacts(self, tmp_path):
        """SIGKILL an engine-mode training process mid-run: the atomic
        train_live.json must load whole and alerts.jsonl must parse."""
        run_dir = str(tmp_path / "run")
        child_src = SIGKILL_CHILD.format(
            src=os.path.abspath(os.path.join(REPO_ROOT, "src")))
        proc = subprocess.Popen([sys.executable, "-c", child_src, run_dir],
                                stdout=subprocess.PIPE, text=True)
        try:
            line = ""
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "READY" in line or proc.poll() is not None:
                    break
            assert "READY" in line, "child never produced telemetry files"
            time.sleep(0.2)  # a few more sampler ticks mid-training
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        doc = load_train_snapshot(os.path.join(run_dir, "train_live.json"))
        assert doc["ticks"] >= 1
        assert "train.steps_done" in doc["series"]
        assert doc["trainers"]["gan"]["primary"] is True

        # steps_per_s can never exceed 1e9, so the rule is violated as
        # soon as a rate is observable — and every line is whole JSON.
        alerts = load_alerts(os.path.join(run_dir, "alerts.jsonl"))
        assert len(alerts) >= 1
        assert alerts[0].kind == "violation"
        assert alerts[0].metric == "train.steps_per_s"
