"""Live telemetry wired into DetectionServer: periodic mirrors, the
zero-overhead ``live=None`` contract, and SIGKILL durability.

Everything runs the in-process backend (``workers=0``) so no worker
processes are involved — the SIGKILL test kills the *server host*
process, which is exactly the failure the atomic-snapshot / durable-
append contract exists for.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.detection.config import TinyYoloConfig
from repro.detection.model import TinyYolo
from repro.obs import Run, load_live_snapshot
from repro.obs.slo import load_alerts
from repro.serve import SERVE_STATS_NAME, DetectionServer, ServeConfig

pytestmark = pytest.mark.obslive

INPUT_SIZE = 64
REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


@pytest.fixture(scope="module")
def detector():
    model = TinyYolo(TinyYoloConfig(input_size=INPUT_SIZE,
                                    width_multiplier=0.25))
    return model.eval()


def make_frames(count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random((3, INPUT_SIZE, INPUT_SIZE)).astype(np.float32)
            for _ in range(count)]


def inproc_config(**overrides):
    defaults = dict(workers=0, max_batch=4, batch_window_s=0.002,
                    queue_capacity=16, deadline_s=30.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestZeroOverhead:
    def test_live_none_attaches_nothing(self, detector):
        before = {t.name for t in threading.enumerate()}
        server = DetectionServer(detector, inproc_config())
        try:
            assert server.live is None
            after = {t.name for t in threading.enumerate()} - before
            assert not any("live-sampler" in name for name in after)
        finally:
            server.close()

    def test_live_none_without_obs_writes_no_files(self, detector, tmp_path):
        server = DetectionServer(detector, inproc_config())
        try:
            session = server.open_session("t")
            for future in [server.submit(session, frame)
                           for frame in make_frames(4)]:
                future.result(timeout=30)
        finally:
            server.close()
        assert os.listdir(tmp_path) == []


class TestPeriodicMirror:
    def test_serve_stats_json_refreshed_before_close(self, detector, tmp_path):
        """Satellite fix: the stats file exists *during* the run, not only
        after a clean close."""
        run = Run(str(tmp_path / "run"))
        server = DetectionServer(
            detector, inproc_config(stats_interval_s=0.02), obs=run)
        try:
            session = server.open_session("t")
            stats_path = os.path.join(run.directory, SERVE_STATS_NAME)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                for future in [server.submit(session, frame)
                               for frame in make_frames(2)]:
                    future.result(timeout=30)
                if os.path.exists(stats_path):
                    break
            assert os.path.exists(stats_path), \
                "no serve_stats.json written mid-life"
            doc = json.load(open(stats_path))
            assert doc["schema_version"] == 1
            assert doc["stats"]["ok"] >= 1
        finally:
            server.close()

    def test_periodic_plus_final_mirror_never_double_counts(
            self, detector, tmp_path):
        run = Run(str(tmp_path / "run"))
        server = DetectionServer(
            detector, inproc_config(stats_interval_s=0.01), obs=run)
        n = 12
        try:
            session = server.open_session("t")
            for future in [server.submit(session, frame)
                           for frame in make_frames(n)]:
                future.result(timeout=30)
            time.sleep(0.1)  # let several mirror intervals elapse
        finally:
            server.close()
        counters = run.metrics.snapshot()["counters"]
        assert counters["serve.ok"] == float(n)
        assert counters["serve.accepted"] == float(n)
        hist = run.metrics.snapshot()["histograms"]["serve.latency_s"]
        assert hist["count"] == n

    def test_probe_surface(self, detector):
        server = DetectionServer(detector, inproc_config())
        try:
            session = server.open_session("t")
            for future in [server.submit(session, frame)
                           for frame in make_frames(4)]:
                future.result(timeout=30)
            probe = server.probe()
        finally:
            server.close()
        assert probe["ok"] == 4
        assert probe["queue_depth"] >= 0
        assert "latency_p50_ms" in probe and "latency_p99_ms" in probe
        assert 0.0 <= probe["batch_fill"] <= 1.0
        assert probe["pool.respawns"] == 0
        assert probe["degraded"] == 1.0  # workers=0 is chosen-degraded


class TestLiveAttached:
    def test_live_series_and_snapshot_land_in_run_dir(
            self, detector, tmp_path):
        from repro.obs import LiveConfig
        run = Run(str(tmp_path / "run"))
        server = DetectionServer(
            detector, inproc_config(), obs=run,
            live=LiveConfig(interval_s=0.02,
                            rules=("serve.shed_rate < 0.5",)))
        try:
            assert server.live is not None
            session = server.open_session("t")
            for future in [server.submit(session, frame)
                           for frame in make_frames(8)]:
                future.result(timeout=30)
            time.sleep(0.15)
        finally:
            server.close()
        doc = load_live_snapshot(os.path.join(run.directory, "live.json"))
        assert doc["ticks"] >= 1
        assert "serve.ok" in doc["series"]
        assert "proc.rss_mb" in doc["series"]
        assert "serve.shed_rate < 0.5" in doc["slo"]
        # live=True (defaults) is accepted too, but not started here.


SIGKILL_CHILD = textwrap.dedent("""
    import os, sys, time
    import numpy as np
    sys.path.insert(0, {src!r})
    from repro.detection.config import TinyYoloConfig
    from repro.detection.model import TinyYolo
    from repro.obs import LiveConfig, Run
    from repro.serve import DetectionServer, ServeConfig

    run_dir = sys.argv[1]
    detector = TinyYolo(TinyYoloConfig(input_size=64,
                                       width_multiplier=0.25)).eval()
    run = Run(run_dir)
    server = DetectionServer(
        detector,
        ServeConfig(workers=0, max_batch=4, queue_capacity=8,
                    stats_interval_s=0.02),
        obs=run,
        live=LiveConfig(interval_s=0.02,
                        rules=("serve.queue_depth < 1",)))
    session = server.open_session("victim")
    rng = np.random.default_rng(0)
    announced = False
    while True:  # serve until SIGKILLed; never close() cleanly
        frames = [rng.random((3, 64, 64), dtype=np.float32).astype(np.float32)
                  for _ in range(4)]
        for future in [server.submit(session, frame) for frame in frames]:
            future.result(timeout=30)
        stats = os.path.join(run_dir, "serve_stats.json")
        alerts = os.path.join(run_dir, "alerts.jsonl")
        if not announced and os.path.exists(stats) and os.path.exists(alerts):
            print("READY", flush=True)
            announced = True
""")


class TestSigkillDurability:
    def test_sigkilled_server_leaves_loadable_artifacts(self, tmp_path):
        """The acceptance scenario: SIGKILL the serving process mid-
        traffic; serve_stats.json must load, alerts.jsonl must parse, and
        live.json must be a whole JSON document."""
        run_dir = str(tmp_path / "run")
        child_src = SIGKILL_CHILD.format(
            src=os.path.abspath(os.path.join(REPO_ROOT, "src")))
        proc = subprocess.Popen([sys.executable, "-c", child_src, run_dir],
                                stdout=subprocess.PIPE, text=True)
        try:
            line = ""
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "READY" in line or proc.poll() is not None:
                    break
            assert "READY" in line, "child never produced telemetry files"
            # A few more ticks of traffic, then the axe.
            time.sleep(0.2)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        stats = json.load(open(os.path.join(run_dir, "serve_stats.json")))
        assert stats["stats"]["ok"] >= 1
        assert stats["schema_version"] == 1

        # queue_depth < 1 is violated whenever work is queued, so the
        # alert stream is non-empty — and every line is whole JSON.
        alerts = load_alerts(os.path.join(run_dir, "alerts.jsonl"))
        assert len(alerts) >= 1
        assert alerts[0].kind == "violation"

        live = json.load(open(os.path.join(run_dir, "live.json")))
        assert live["ticks"] >= 1
        assert "serve.ok" in live["series"]
