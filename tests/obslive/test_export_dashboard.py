"""Speedscope export + the TTY/HTML dashboard renderers.

The speedscope checks are shape checks against the published file format
(schema URL, frames table, well-nested evented samples) — enough that
https://www.speedscope.app accepts the output.
"""

import json
import os

import pytest

from repro.obs import (
    LiveConfig,
    LiveTelemetry,
    gather_dashboard,
    render_html,
    render_tty,
    sparkline,
    trace_to_speedscope,
    validate_speedscope,
)
from repro.obs.trace import Tracer, load_trace

pytestmark = pytest.mark.obslive


def make_trace(tmp_path):
    path = os.path.join(tmp_path, "trace.jsonl")
    tracer = Tracer(sink_path=path)
    with tracer.span("root"):
        with tracer.span("child_a"):
            with tracer.span("grandchild"):
                pass
        with tracer.span("child_b"):
            pass
    tracer.flush()
    return load_trace(path)


class TestSpeedscope:
    def test_export_shape(self, tmp_path):
        spans = make_trace(tmp_path)
        doc = trace_to_speedscope(spans, name="unit")
        assert doc["$schema"].endswith("file-format-schema.json")
        assert doc["profiles"][0]["type"] == "evented"
        names = {frame["name"] for frame in doc["shared"]["frames"]}
        assert {"root", "child_a", "child_b", "grandchild"} <= names
        events = doc["profiles"][0]["events"]
        # Every open has a matching close: equal counts, stack-balanced.
        assert len([e for e in events if e["type"] == "O"]) == \
            len([e for e in events if e["type"] == "C"])

    def test_export_validates(self, tmp_path):
        doc = trace_to_speedscope(make_trace(tmp_path), name="unit")
        assert validate_speedscope(doc) == []

    def test_events_time_ordered_and_nested(self, tmp_path):
        doc = trace_to_speedscope(make_trace(tmp_path), name="unit")
        events = doc["profiles"][0]["events"]
        times = [event["at"] for event in events]
        assert times == sorted(times)
        stack = []
        for event in events:
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack.pop() == event["frame"]
        assert stack == []

    def test_validator_rejects_malformed_documents(self):
        assert validate_speedscope({}) != []
        assert validate_speedscope({"$schema": "http://wrong"}) != []
        # Mismatched open/close must be caught.
        bad = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": [{"name": "f"}]},
            "profiles": [{
                "type": "evented", "name": "p", "unit": "seconds",
                "startValue": 0, "endValue": 1,
                "events": [{"type": "O", "frame": 0, "at": 0}],
            }],
        }
        assert any("unclosed" in p or "open" in p
                   for p in validate_speedscope(bad))

    def test_empty_trace_exports_empty_profile(self):
        doc = trace_to_speedscope([], name="empty")
        assert validate_speedscope(doc) == []
        assert doc["profiles"][0]["events"] == []


class TestDashboard:
    def make_run_dir(self, tmp_path):
        run_dir = str(tmp_path)
        clock = {"t": 0.0}

        def tick():
            clock["t"] += 1.0
            return clock["t"]

        live = LiveTelemetry(
            directory=run_dir,
            config=LiveConfig(rules=("serve.depth < 3",)),
            clock=tick)
        depths = iter([1.0, 5.0, 5.0, 1.0, 2.0])
        live.add_probe("serve", lambda: {"depth": next(depths),
                                         "latency_p99_ms": 42.0})
        for _ in range(5):
            live.sample_once()
        return run_dir

    def test_gather_on_populated_run_dir(self, tmp_path):
        run_dir = self.make_run_dir(tmp_path)
        dash = gather_dashboard(run_dir)
        assert dash["live"] is not None
        assert "serve.depth" in dash["live"]["series"]
        assert len(dash["alerts"]) == 2  # violation + recovery

    def test_gather_on_empty_dir_is_all_optional(self, tmp_path):
        empty = os.path.join(tmp_path, "empty")
        os.makedirs(empty)
        dash = gather_dashboard(empty)
        assert dash["live"] is None and dash["manifest"] is None
        # Renderers must not crash on a completely empty run.
        assert isinstance(render_tty(dash), str)
        assert render_html(dash).startswith("<!DOCTYPE html>")

    def test_tty_render_contains_series_and_alerts(self, tmp_path):
        dash = gather_dashboard(self.make_run_dir(tmp_path))
        text = render_tty(dash)
        assert "serve.depth" in text
        assert "violation" in text
        assert "serve.depth < 3" in text

    def test_html_render_is_self_contained(self, tmp_path):
        dash = gather_dashboard(self.make_run_dir(tmp_path))
        html = render_html(dash, title="unit test")
        assert html.startswith("<!DOCTYPE html>")
        assert "unit test" in html
        assert "serve.depth" in html
        assert "<script src=" not in html  # no external JS
        assert 'href="http' not in html    # no external CSS
        assert "prefers-color-scheme" in html

    def test_history_section_from_committed_file(self, tmp_path):
        repo_history = os.path.join(os.path.dirname(__file__), "..", "..",
                                    "BENCH_history.jsonl")
        dash = gather_dashboard(self.make_run_dir(tmp_path),
                                history_path=repo_history)
        assert dash["history"] is not None
        assert "detection_serve" in dash["history"]["benchmarks"]
        assert "detection_serve" in render_tty(dash)


class TestTrainDashboard:
    def make_train_run_dir(self, tmp_path):
        from repro.obs import TrainTelemetry

        run_dir = str(tmp_path)
        clock = {"t": 0.0}

        def tick():
            clock["t"] += 1.0
            return clock["t"]

        live = TrainTelemetry(
            directory=run_dir,
            config=LiveConfig(window_s=4.0,
                              rules=("train.steps_per_s > 0.5 for_ticks 2",)),
            clock=tick)
        state = live.attach("gan", 8)
        live.ensure_probe("train.gan.pool",
                          lambda: {"workers_alive": 2.0, "utilization": 0.5,
                                   "in_flight": 1.0, "pending": 0.0,
                                   "respawns": 0.0})
        losses = iter([3.0, 2.0, 1.5, 1.2, 1.0, 0.9, 0.8, 0.7])
        for step in range(8):
            state.step(step, loss=next(losses), grad_norm=1.0)
            if step == 0:
                state.checkpoint_saved()
            live.sample_once()
        state.finish()
        live.sample_once()
        return run_dir

    def test_gather_loads_train_live(self, tmp_path):
        dash = gather_dashboard(self.make_train_run_dir(tmp_path))
        assert dash["train_live"] is not None
        assert dash["live"] is None  # no serving producer in this dir
        assert dash["train_live"]["trainers"]["gan"]["finished"] is True
        assert "train.loss" in dash["train_live"]["series"]

    def test_tty_render_has_train_section(self, tmp_path):
        dash = gather_dashboard(self.make_train_run_dir(tmp_path))
        text = render_tty(dash)
        assert "gan" in text
        assert "train.loss" in text
        assert "train.steps_per_s" in text
        assert "train.steps_per_s > 0.5 for_ticks 2" in text
        assert "worker pools:" in text  # health grid from train.gan.pool.*
        assert "workers_alive=2" in text

    def test_html_render_has_train_cards(self, tmp_path):
        dash = gather_dashboard(self.make_train_run_dir(tmp_path))
        html = render_html(dash, title="train unit")
        assert "Training" in html
        assert "train.loss" in html
        assert "Training SLOs" in html
        assert "<script src=" not in html

    def test_mixed_dir_renders_both_producers(self, tmp_path):
        serve_dir = TestDashboard().make_run_dir(tmp_path)
        self.make_train_run_dir(tmp_path)
        dash = gather_dashboard(serve_dir)
        assert dash["live"] is not None and dash["train_live"] is not None
        text = render_tty(dash)
        assert "serve.depth" in text and "train.loss" in text


class TestDashboardViews:
    def test_cli_view_filters_producers(self, tmp_path):
        import subprocess
        import sys
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        TestDashboard().make_run_dir(run_dir)
        TestTrainDashboard().make_train_run_dir(run_dir)
        repo = os.path.join(os.path.dirname(__file__), "..", "..")
        script = os.path.join(repo, "scripts", "obs_dashboard.py")
        env = dict(os.environ, PYTHONPATH=os.path.join(repo, "src"))

        def run_view(view):
            out = subprocess.run([sys.executable, script, run_dir,
                                  "--view", view],
                                 capture_output=True, text=True, env=env)
            assert out.returncode == 0, out.stderr
            return out.stdout

        # serve.depth leaks into every view via the *shared* alerts file,
        # so view isolation is asserted on alert-free series names.
        both = run_view("all")
        assert "serve.latency_p99_ms" in both and "train.loss" in both
        serve_only = run_view("serve")
        assert "serve.latency_p99_ms" in serve_only
        assert "train.loss" not in serve_only
        train_only = run_view("train")
        assert "train.loss" in train_only
        assert "serve.latency_p99_ms" not in train_only
        # Alerts are shared files: visible from every view.
        assert "violation" in serve_only and "violation" in train_only


class TestSparkline:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] != line[-1]  # rising series uses different glyphs

    def test_sparkline_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0], width=3)
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_sparkline_downsamples_wide_input(self):
        line = sparkline(list(range(1000)), width=16)
        assert len(line) == 16


class TestDashboardScript:
    def test_cli_renders_and_exports(self, tmp_path):
        import subprocess
        import sys
        run_dir = TestDashboard().make_run_dir(tmp_path / "run")
        repo = os.path.join(os.path.dirname(__file__), "..", "..")
        script = os.path.join(repo, "scripts", "obs_dashboard.py")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(repo, "src"))
        out = subprocess.run([sys.executable, script, run_dir],
                             capture_output=True, text=True, env=env)
        assert out.returncode == 0, out.stderr
        assert "serve.depth" in out.stdout

        html_path = os.path.join(tmp_path, "report.html")
        out = subprocess.run([sys.executable, script, run_dir,
                              "--html", html_path],
                             capture_output=True, text=True, env=env)
        assert out.returncode == 0, out.stderr
        assert os.path.exists(html_path)

        flame_path = os.path.join(tmp_path, "flame.json")
        out = subprocess.run([sys.executable, script, run_dir,
                              "--flamegraph", flame_path],
                             capture_output=True, text=True, env=env)
        assert out.returncode == 0, out.stderr
        doc = json.load(open(flame_path))
        assert validate_speedscope(doc) == []
