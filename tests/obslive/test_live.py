"""LiveTelemetry under a fake clock: deterministic ticks, probes, derived
values, snapshot files — no sampler thread anywhere in this module."""

import json
import os

import pytest

from repro.obs import (
    LIVE_SNAPSHOT_NAME,
    LiveConfig,
    LiveTelemetry,
    load_live_snapshot,
)

pytestmark = pytest.mark.obslive


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


def test_config_validation():
    with pytest.raises(ValueError):
        LiveConfig(interval_s=0.0)
    with pytest.raises(ValueError):
        LiveConfig(capacity=1)
    with pytest.raises(ValueError):
        LiveConfig(window_s=0.0)


def test_probe_samples_land_prefixed():
    clock = FakeClock()
    live = LiveTelemetry(config=LiveConfig(), clock=clock)
    counter = {"n": 0}

    def probe():
        counter["n"] += 1
        return {"depth": counter["n"], "shed": 0}

    live.add_probe("serve", probe)
    observed = live.sample_once(clock.advance(0.25))
    assert observed["serve.depth"] == 1.0
    assert observed["serve.shed"] == 0.0
    live.sample_once(clock.advance(0.25))
    assert live.last("serve.depth") == 2.0
    assert live.ticks == 2


def test_deterministic_rollups_under_fake_clock():
    """Two identical drives of the pipeline produce identical rollups."""
    def drive():
        clock = FakeClock()
        live = LiveTelemetry(config=LiveConfig(window_s=5.0), clock=clock)
        values = iter([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        live.add_probe("m", lambda: {"x": next(values)})
        for _ in range(8):
            live.sample_once(clock.advance(1.0))
        return live.series("m.x").rollup()

    assert drive() == drive()


def test_derived_values_see_series_history():
    clock = FakeClock()
    live = LiveTelemetry(config=LiveConfig(window_s=10.0), clock=clock)
    state = {"accepted": 0}

    def probe():
        state["accepted"] += 10
        return dict(state)

    live.add_probe("serve", probe)
    live.add_derived(
        "serve.accept_rate",
        lambda lv, now: lv.rate("serve.accepted", now))
    live.sample_once(clock.advance(1.0))
    assert live.last("serve.accept_rate") is None  # one point: no rate yet
    live.sample_once(clock.advance(1.0))
    assert live.last("serve.accept_rate") == pytest.approx(10.0)


def test_failing_probe_and_derived_never_kill_the_tick():
    clock = FakeClock()
    live = LiveTelemetry(config=LiveConfig(), clock=clock)

    def bad_probe():
        raise RuntimeError("host is dying")

    live.add_probe("bad", bad_probe)
    live.add_probe("good", lambda: {"x": 1.0})
    live.add_derived("boom", lambda lv, now: 1 / 0)
    observed = live.sample_once(clock.advance(0.25))
    assert observed["good.x"] == 1.0
    assert "boom" not in observed
    assert live.ticks == 1


def test_non_numeric_probe_values_are_skipped():
    clock = FakeClock()
    live = LiveTelemetry(config=LiveConfig(), clock=clock)
    live.add_probe("m", lambda: {"ok": 2.5, "label": "pool", "none": None})
    observed = live.sample_once(clock.advance(0.25))
    assert observed == {"m.ok": 2.5}


def test_slo_rules_fire_from_sampled_values(tmp_path):
    clock = FakeClock()
    live = LiveTelemetry(
        directory=str(tmp_path),
        config=LiveConfig(rules=("serve.depth < 10",)),
        clock=clock)
    depths = iter([2.0, 15.0, 15.0, 3.0])
    live.add_probe("serve", lambda: {"depth": next(depths)})
    for _ in range(4):
        live.sample_once(clock.advance(1.0))
    kinds = [alert.kind for alert in live.engine.alerts]
    assert kinds == ["violation", "recovery"]
    # Alerts are on disk too (durable jsonl).
    alerts_file = os.path.join(tmp_path, "alerts.jsonl")
    lines = [json.loads(line) for line in open(alerts_file)]
    assert [line["kind"] for line in lines] == ["violation", "recovery"]


def test_snapshot_file_written_atomically_every_tick(tmp_path):
    clock = FakeClock()
    live = LiveTelemetry(directory=str(tmp_path),
                         config=LiveConfig(), clock=clock)
    live.add_probe("m", lambda: {"x": 1.0})
    live.sample_once(clock.advance(1.0))
    path = os.path.join(tmp_path, LIVE_SNAPSHOT_NAME)
    doc = load_live_snapshot(path)
    assert doc["ticks"] == 1
    assert "m.x" in doc["series"]
    # No temp files left behind by the atomic write.
    leftovers = [name for name in os.listdir(tmp_path)
                 if name not in (LIVE_SNAPSHOT_NAME, "live_trace.jsonl",
                                 "alerts.jsonl")]
    assert leftovers == []


def test_snapshot_writers_and_on_sample_run_each_tick(tmp_path):
    clock = FakeClock()
    live = LiveTelemetry(config=LiveConfig(), clock=clock)
    calls = {"writer": 0, "sample": 0}
    live.add_snapshot_writer(lambda: calls.__setitem__(
        "writer", calls["writer"] + 1))
    live.on_sample(lambda: calls.__setitem__("sample", calls["sample"] + 1))
    live.sample_once(clock.advance(1.0))
    live.sample_once(clock.advance(1.0))
    assert calls == {"writer": 2, "sample": 2}


def test_tick_overhead_is_self_monitored():
    clock = FakeClock()
    live = LiveTelemetry(config=LiveConfig(), clock=clock)
    live.add_probe("m", lambda: {"x": 1.0})
    live.sample_once(clock.advance(1.0))
    roll = live.series("live.tick_seconds").rollup()
    assert roll.count == 1
    assert roll.last >= 0.0


def test_snapshot_series_recent_bounded():
    clock = FakeClock()
    live = LiveTelemetry(
        config=LiveConfig(capacity=256, snapshot_recent=8), clock=clock)
    live.add_probe("m", lambda: {"x": 1.0})
    for _ in range(50):
        live.sample_once(clock.advance(1.0))
    doc = live.snapshot(clock.t)
    assert len(doc["series"]["m.x"]["recent"]) == 8
    assert doc["series"]["m.x"]["rollup"]["count"] == 50


def test_start_stop_thread_lifecycle(tmp_path):
    """The background thread is only exercised for start/stop hygiene —
    determinism tests all drive sample_once directly."""
    live = LiveTelemetry(directory=str(tmp_path),
                         config=LiveConfig(interval_s=0.01))
    live.add_probe("m", lambda: {"x": 1.0})
    with live:
        pass
    assert live.ticks >= 1  # stop() takes a final sample
    assert os.path.exists(os.path.join(tmp_path, LIVE_SNAPSHOT_NAME))
