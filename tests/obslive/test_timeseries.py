"""Ring-buffer time series: lock-free writer/reader contract + rollups.

Everything here is driven with literal (t, value) pairs — no threads, no
clocks — so rollups and rates are exact and the tests are deterministic.
"""

import numpy as np
import pytest

from repro.obs import Rollup, Timeseries

pytestmark = pytest.mark.obslive


class TestRing:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Timeseries("x", capacity=1)

    def test_append_and_chronological_snapshot(self):
        ts = Timeseries("x", capacity=8)
        for i in range(5):
            ts.append(float(i), float(10 * i))
        times, values = ts.snapshot()
        assert times.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert values.tolist() == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_wraparound_keeps_newest_in_order(self):
        ts = Timeseries("x", capacity=4)
        for i in range(10):
            ts.append(float(i), float(i))
        assert len(ts) == 4
        assert ts.total_appended == 10
        times, values = ts.snapshot()
        assert times.tolist() == [6.0, 7.0, 8.0, 9.0]
        assert values.tolist() == [6.0, 7.0, 8.0, 9.0]

    def test_last_after_wraparound(self):
        ts = Timeseries("x", capacity=3)
        for i in range(7):
            ts.append(float(i), float(i * i))
        assert ts.last() == (6.0, 36.0)

    def test_empty_series_reads(self):
        ts = Timeseries("x", capacity=4)
        times, values = ts.snapshot()
        assert len(times) == 0 and len(values) == 0
        assert ts.last() is None
        assert ts.rate(10.0, now=5.0) is None

    def test_window_filters_by_time(self):
        ts = Timeseries("x", capacity=16)
        for i in range(10):
            ts.append(float(i), float(i))
        times, values = ts.window(since_t=6.0)
        assert times.tolist() == [6.0, 7.0, 8.0, 9.0]


class TestRates:
    def test_counter_rate_over_window(self):
        ts = Timeseries("accepted", capacity=16)
        # 10 events/second cumulative counter.
        for i in range(6):
            ts.append(float(i), float(10 * i))
        assert ts.rate(window_s=10.0, now=5.0) == pytest.approx(10.0)

    def test_counter_reset_clamps_to_zero(self):
        ts = Timeseries("accepted", capacity=16)
        ts.append(0.0, 100.0)
        ts.append(1.0, 5.0)  # producer restarted: counter went backwards
        assert ts.rate(window_s=10.0, now=1.0) == 0.0

    def test_single_sample_has_no_rate(self):
        ts = Timeseries("x", capacity=4)
        ts.append(0.0, 1.0)
        assert ts.rate(window_s=10.0, now=0.0) is None


class TestRollup:
    def test_rollup_is_deterministic(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        a = Rollup.from_values(values)
        b = Rollup.from_values(values)
        assert a == b
        assert a.count == 5
        assert a.mean == pytest.approx(3.0)
        assert a.min == 1.0 and a.max == 5.0
        assert a.p50 == pytest.approx(3.0)
        assert a.last == 4.0

    def test_rollup_p99_matches_numpy(self):
        values = list(range(100))
        roll = Rollup.from_values(values)
        assert roll.p99 == pytest.approx(float(np.percentile(values, 99)))

    def test_rollup_filters_non_finite(self):
        roll = Rollup.from_values([1.0, float("nan"), float("inf"), 3.0])
        assert roll.count == 2
        assert roll.mean == pytest.approx(2.0)

    def test_empty_rollup_serializes_nulls(self):
        doc = Rollup.from_values([]).to_json()
        assert doc["count"] == 0
        assert doc["mean"] is None and doc["p99"] is None

    def test_series_rollup_windowed(self):
        ts = Timeseries("x", capacity=32)
        for i in range(20):
            ts.append(float(i), float(i))
        windowed = ts.rollup(window_s=5.0, now=19.0)
        assert windowed.min == 14.0 and windowed.max == 19.0
        full = ts.rollup()
        assert full.count == 20
