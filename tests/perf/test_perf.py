"""The repro.perf instrumentation toolkit."""

import contextlib
import json
import os
import time

import numpy as np
import pytest

from repro.detection import TinyYolo, reduced_config
from repro.nn import Tensor, no_grad
from repro.perf import (
    REPORT_SCHEMA_VERSION,
    LayerProfiler,
    PerfRecorder,
    StageStats,
    load_report,
    stage_scope,
    write_report,
)

pytestmark = pytest.mark.perf


class TestPerfRecorder:
    def test_stage_accumulates_time_and_items(self):
        perf = PerfRecorder()
        for _ in range(3):
            with perf.stage("forward", items=4):
                time.sleep(0.001)
        stats = perf.stages["forward"]
        assert stats.calls == 3
        assert stats.items == 12
        assert stats.seconds >= 0.003
        assert perf.fps("forward") == pytest.approx(12 / stats.seconds)

    def test_stage_records_even_on_exception(self):
        perf = PerfRecorder()
        with pytest.raises(RuntimeError):
            with perf.stage("decode"):
                raise RuntimeError("boom")
        assert perf.stages["decode"].calls == 1

    def test_counters_accumulate(self):
        perf = PerfRecorder()
        perf.count("frames", 8)
        perf.count("frames", 4)
        assert perf.counters["frames"] == 12

    def test_unknown_stage_is_zero(self):
        perf = PerfRecorder()
        assert perf.stage_seconds("nope") == 0.0
        assert perf.fps("nope") == 0.0

    def test_merge_folds_stages_and_counters(self):
        a, b = PerfRecorder(), PerfRecorder()
        with a.stage("nms", items=1):
            pass
        with b.stage("nms", items=2):
            pass
        b.count("frames", 5)
        a.merge(b)
        assert a.stages["nms"].calls == 2
        assert a.stages["nms"].items == 3
        assert a.counters["frames"] == 5

    def test_report_shares_sum_to_one(self):
        perf = PerfRecorder()
        with perf.stage("forward"):
            time.sleep(0.001)
        with perf.stage("nms"):
            time.sleep(0.001)
        report = perf.report()
        assert set(report["stages"]) == {"forward", "nms"}
        assert sum(s["share"] for s in report["stages"].values()) == pytest.approx(1.0)
        assert report["timed_seconds"] <= report["wall_seconds"]
        json.dumps(report)  # JSON-ready

    def test_items_per_second_zero_without_items(self):
        stats = StageStats()
        assert stats.items_per_second() == 0.0


class TestStageScope:
    def test_none_recorder_is_noop(self):
        scope = stage_scope(None, "forward")
        assert isinstance(scope, contextlib.nullcontext)

    def test_recorder_scope_times(self):
        perf = PerfRecorder()
        with stage_scope(perf, "forward", items=2):
            pass
        assert perf.stages["forward"].items == 2


class TestLayerProfiler:
    @pytest.fixture(scope="class")
    def model(self):
        return TinyYolo(reduced_config(input_size=32, width_multiplier=0.25),
                        seed=0)

    def test_profiles_layers_and_detaches_cleanly(self, model, rng):
        image = Tensor(rng.random((1, 3, 32, 32)).astype(np.float32))
        with no_grad():
            baseline = model(image)
        profiler = LayerProfiler(model)
        with profiler, no_grad():
            profiled = model(image)
        # Profiling must not perturb the numerics.
        np.testing.assert_array_equal(baseline[0].data, profiled[0].data)
        table = profiler.table()
        assert table, "expected per-layer rows"
        assert all(seconds >= 0 and calls >= 1 for _, seconds, calls in table)
        # Slowest-first ordering.
        seconds = [row[1] for row in table]
        assert seconds == sorted(seconds, reverse=True)
        # Detach removed every shim: forward is the class attribute again.
        for _, module in LayerProfiler._named_modules(model):
            assert "forward" not in module.__dict__

    def test_attach_is_idempotent(self, model):
        profiler = LayerProfiler(model).attach()
        wrapped = len(profiler._wrapped)
        profiler.attach()
        assert len(profiler._wrapped) == wrapped
        profiler.detach()


class TestProcessStats:
    def test_normal_path_reports_rss_and_cpu(self):
        from repro.perf import process_stats
        stats = process_stats()
        assert stats["cpu_seconds"] >= 0.0
        if os.path.exists("/proc/self/statm"):
            assert stats["rss_mb"] > 0.0

    def test_missing_statm_degrades_to_none(self, monkeypatch):
        """Satellite fix: a host without /proc/self/statm (macOS,
        restricted containers) must get None-valued stats, not a raise."""
        import repro.perf.timers as timers
        monkeypatch.setattr(timers, "_STATM_PATH",
                            "/nonexistent/statm-for-test")
        stats = timers.process_stats()
        assert stats["rss_mb"] is None
        assert isinstance(stats["cpu_seconds"], float)

    def test_live_sampler_skips_none_valued_stats(self, monkeypatch):
        """The live probe path: a None gauge is dropped for the tick
        instead of poisoning the series or killing the sampler."""
        import repro.perf.timers as timers
        from repro.obs import LiveTelemetry
        monkeypatch.setattr(timers, "_STATM_PATH",
                            "/nonexistent/statm-for-test")
        live = LiveTelemetry()
        live.add_probe("proc", timers.process_stats)
        observed = live.sample_once(1.0)
        assert "proc.rss_mb" not in observed
        assert "proc.cpu_seconds" in observed


class TestReportIo:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        document = write_report(path, {"batched_fps": 123.0})
        assert document["schema_version"] == REPORT_SCHEMA_VERSION
        loaded = load_report(path)
        assert loaded["batched_fps"] == 123.0

    def test_version_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        path2 = str(tmp_path / "BENCH_bad.json")
        with open(path, "w") as handle:
            json.dump({"schema_version": 999}, handle)
        with pytest.raises(ValueError, match="schema_version"):
            load_report(path)
        with open(path2, "w") as handle:
            json.dump({}, handle)
        with pytest.raises(ValueError):
            load_report(path2)

    def test_version_check_can_be_skipped(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        with open(path, "w") as handle:
            json.dump({"schema_version": 999, "x": 1}, handle)
        assert load_report(path, expected_version=None)["x"] == 1

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        write_report(path, {"a": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
