"""Trainer-level bit-identity: engine schedules vs their serial oracles.

The acceptance bar of DESIGN.md §10: for both trainers, ``workers=0`` and
``workers=N`` produce byte-equal parameters — including across a
checkpoint/resume boundary with the worker pool live.
"""

import numpy as np
import pytest

import repro.attack.trainer as attack_trainer
from repro.attack.config import AttackConfig
from repro.attack.trainer import train_patch_attack
from repro.detection.config import reduced_config
from repro.detection.model import TinyYolo
from repro.gan.discriminator import PatchDiscriminator
from repro.gan.generator import PatchGenerator
from repro.gan.trainer import GanTrainConfig, train_gan
from repro.runtime import RuntimeConfig
from repro.scene.video import AttackScenario

pytestmark = pytest.mark.parallel


def _state_dicts_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], np.asarray(b[key]), err_msg=key)


def _train_gan(workers):
    generator = PatchGenerator(16, latent_dim=8, seed=3)
    discriminator = PatchDiscriminator(16, seed=4)
    train_gan(generator, discriminator, "star",
              GanTrainConfig(steps=3, batch_size=4, seed=5, workers=workers))
    return generator, discriminator


class TestGanEngine:
    def test_workers_match_serial_oracle_byte_for_byte(self):
        oracle_g, oracle_d = _train_gan(workers=0)
        for workers in (1, 2):
            generator, discriminator = _train_gan(workers=workers)
            _state_dicts_equal(generator.state_dict(), oracle_g.state_dict())
            _state_dicts_equal(discriminator.state_dict(),
                               oracle_d.state_dict())


def _attack_setup(workers, steps=4):
    model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25),
                     seed=0)
    scenario = AttackScenario(image_size=64)
    config = AttackConfig(steps=steps, warmup_steps=1, batch_frames=3,
                          frame_pool=3, gan_batch=3, k=20, workers=workers)
    return model, scenario, config


class TestAttackEngine:
    def test_identity_and_resume_parity(self, tmp_path, monkeypatch):
        # 1. Serial oracle vs one-worker pool: byte-equal final patch.
        oracle = train_patch_attack(*_attack_setup(workers=0))
        parallel = train_patch_attack(*_attack_setup(workers=1))
        np.testing.assert_array_equal(parallel.patch, oracle.patch)
        np.testing.assert_array_equal(parallel.alpha, oracle.alpha)

        # 2. Crash the parallel run mid-loop (parent side: the engine
        # step calls discriminator_loss exactly once per attack step, so
        # call 4 dies at step 3, after the checkpoints at 0 and 2), then
        # resume — still byte-equal to the uninterrupted run.
        ckpt = str(tmp_path / "attack.ckpt.npz")
        runtime = RuntimeConfig(checkpoint_path=ckpt, checkpoint_interval=2,
                                keep_checkpoint=True)
        real_loss = attack_trainer.discriminator_loss
        calls = {"n": 0}

        def crashing_loss(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 4:
                raise KeyboardInterrupt("simulated crash")
            return real_loss(*args, **kwargs)

        monkeypatch.setattr(attack_trainer, "discriminator_loss", crashing_loss)
        with pytest.raises(KeyboardInterrupt):
            train_patch_attack(*_attack_setup(workers=1), runtime=runtime)
        monkeypatch.setattr(attack_trainer, "discriminator_loss", real_loss)

        resumed = train_patch_attack(*_attack_setup(workers=1),
                                     runtime=runtime)
        np.testing.assert_array_equal(resumed.patch, oracle.patch)
