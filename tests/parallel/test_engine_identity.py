"""ParallelEvaluator: bit-identity of every worker count vs the serial oracle."""

import numpy as np
import pytest

from repro.parallel import ArraySpec, ParallelEvaluator, WorkSpec, shard_indices

from ._workers import GRAD_SHAPE, toy_init, toy_work

pytestmark = pytest.mark.parallel

N_SAMPLES = 6


def make_spec():
    return WorkSpec(
        init_fn=toy_init,
        work_fn=toy_work,
        init_payload={"scale": 2.0},
        param_specs=(ArraySpec("w", GRAD_SHAPE),),
        grad_specs=(ArraySpec("g", GRAD_SHAPE),),
        max_samples=N_SAMPLES,
    )


def run_schedule(workers, steps=3):
    """A tiny multi-step 'training' loop: params evolve from reduced grads."""
    rng = np.random.default_rng(5)
    params = {"w": rng.standard_normal(GRAD_SHAPE).astype(np.float32)}
    with ParallelEvaluator(make_spec(), workers) as evaluator:
        for step in range(steps):
            tasks = [{"seed": 7, "step": step, "samples": shard}
                     for shard in shard_indices(N_SAMPLES, max(1, workers))]
            out = evaluator.evaluate(params, tasks, N_SAMPLES, ["g"])
            reduced = evaluator.reduce_grads(out)["g"]
            loss = evaluator.reduce(
                [np.float32(s["loss"]) for s in out.scalars])
            params["w"] = params["w"] - np.float32(0.01) * reduced
    return params["w"], float(loss)


class TestShardIndices:
    @pytest.mark.parametrize("n,shards", [(6, 1), (6, 2), (6, 4), (7, 3),
                                          (1, 4), (5, 5), (8, 16)])
    def test_partition_covers_exactly_once(self, n, shards):
        got = shard_indices(n, shards)
        flat = [i for shard in got for i in shard]
        assert flat == list(range(n))
        assert all(shard for shard in got)
        assert len(got) <= max(1, min(shards, n))

    def test_near_equal_sizes(self):
        sizes = [len(s) for s in shard_indices(10, 3)]
        assert max(sizes) - min(sizes) <= 1


class TestBitIdentity:
    def test_worker_counts_match_serial_oracle_byte_for_byte(self):
        oracle_w, oracle_loss = run_schedule(workers=0)
        for workers in (1, 2, 4):
            w, loss = run_schedule(workers=workers)
            np.testing.assert_array_equal(w, oracle_w, strict=True)
            assert loss == oracle_loss

    def test_duplicate_sample_detected(self):
        with ParallelEvaluator(make_spec(), 0) as evaluator:
            tasks = [{"seed": 7, "step": 0, "samples": [0, 0, 1]}]
            with pytest.raises(RuntimeError, match="produced twice"):
                evaluator.evaluate({"w": np.ones(GRAD_SHAPE, np.float32)},
                                   tasks, 2, ["g"])

    def test_missing_sample_detected(self):
        with ParallelEvaluator(make_spec(), 0) as evaluator:
            tasks = [{"seed": 7, "step": 0, "samples": [0, 1]}]
            with pytest.raises(RuntimeError, match="never produced"):
                evaluator.evaluate({"w": np.ones(GRAD_SHAPE, np.float32)},
                                   tasks, 4, ["g"])
