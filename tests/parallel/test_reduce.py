"""Fixed-tree reduction: the determinism keystone of the parallel engine."""

import numpy as np
import pytest

from repro.parallel import tree_reduce, tree_reduce_named

pytestmark = pytest.mark.parallel


def _operands(n, seed=0, shape=(5, 3)):
    rng = np.random.default_rng(seed)
    # Wildly varying magnitudes so float32 addition order actually matters.
    return [(rng.standard_normal(shape) * 10.0 ** rng.integers(-6, 6))
            .astype(np.float32) for _ in range(n)]


class TestTreeReduce:
    def test_matches_explicit_tree_even(self):
        a, b, c, d = _operands(4)
        expected = (a + b) + (c + d)
        np.testing.assert_array_equal(tree_reduce([a, b, c, d]), expected)

    def test_matches_explicit_tree_odd_carry(self):
        a, b, c, d, e = _operands(5)
        # The odd trailing operand rides up unchanged: ((a+b)+(c+d)) + e.
        expected = ((a + b) + (c + d)) + e
        np.testing.assert_array_equal(tree_reduce([a, b, c, d, e]), expected)

    @pytest.mark.parametrize("n", [1, 2, 3, 6, 7, 8, 13])
    def test_float64_ground_truth_within_tolerance(self, n):
        ops = _operands(n, seed=n)
        got = tree_reduce(ops)
        assert got.dtype == np.float32
        np.testing.assert_allclose(
            got, np.sum([o.astype(np.float64) for o in ops], axis=0),
            rtol=1e-4, atol=1e-4)

    def test_operands_never_mutated(self):
        ops = _operands(5)
        before = [o.copy() for o in ops]
        tree_reduce(ops)
        for original, snapshot in zip(ops, before):
            np.testing.assert_array_equal(original, snapshot)

    def test_single_operand_returns_independent_copy(self):
        (a,) = _operands(1)
        out = tree_reduce([a])
        np.testing.assert_array_equal(out, a)
        out += 1.0
        assert not np.array_equal(out, a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce([])

    def test_shape_depends_only_on_count(self):
        # Byte-equal result when the same operands arrive as different
        # array objects (as they do from the shared-memory slab copies).
        ops = _operands(7, seed=3)
        np.testing.assert_array_equal(
            tree_reduce(ops), tree_reduce([o.copy() for o in ops]))

    def test_scalar_operands(self):
        vals = [np.float32(v) for v in (1e8, 1.0, -1e8, 3.0, 7.5)]
        expected = ((vals[0] + vals[1]) + (vals[2] + vals[3])) + vals[4]
        assert tree_reduce(vals) == expected


class TestTreeReduceNamed:
    def test_keywise(self):
        samples = [{"w": np.float32(i), "b": np.float32(10 * i)}
                   for i in range(5)]
        out = tree_reduce_named(samples)
        assert out["w"] == tree_reduce([s["w"] for s in samples])
        assert out["b"] == tree_reduce([s["b"] for s in samples])

    def test_missing_key_is_an_error(self):
        with pytest.raises(KeyError):
            tree_reduce_named([{"w": np.float32(1)}, {"b": np.float32(2)}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce_named([])
