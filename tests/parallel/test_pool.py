"""WorkerPool robustness: shared-memory transport, death/timeout recovery.

These spawn real processes, so each test builds the smallest pool that
exercises its claim; the toy workers live in ``_workers.py`` (spawn
pickles them by module reference).
"""

import numpy as np
import pytest

from repro.parallel import ArraySpec, TaskError, WorkerPool, WorkerPoolError, WorkSpec
from repro.parallel.reduce import tree_reduce

from ._workers import GRAD_SHAPE, toy_init, toy_work

pytestmark = pytest.mark.parallel

N_SAMPLES = 6


def make_spec():
    return WorkSpec(
        init_fn=toy_init,
        work_fn=toy_work,
        init_payload={"scale": 2.0},
        param_specs=(ArraySpec("w", GRAD_SHAPE),),
        grad_specs=(ArraySpec("g", GRAD_SHAPE),),
        max_samples=N_SAMPLES,
    )


def make_tasks(mode="square", marker=None, **extra):
    tasks = []
    for start in range(0, N_SAMPLES, 2):
        task = {"mode": "square", "seed": 7, "step": 0,
                "samples": [start, start + 1]}
        tasks.append(task)
    if mode != "square":
        tasks[0].update({"mode": mode, "marker": marker, **extra})
    return tasks


def expected_rows(params):
    """The serial oracle: run the worker function in-process."""
    ctx = toy_init({"scale": 2.0})
    rows = []
    for task in make_tasks():
        rows.extend(toy_work(ctx, params, task))
    return dict((index, (grads, scalars)) for index, grads, scalars in rows)


def collect(pool, tasks):
    scalar_rows = pool.run_tasks(tasks)
    out = {}
    for task_rows in scalar_rows:
        for sample_index, scalars in task_rows:
            out[sample_index] = (pool.grad_copy("g", sample_index), scalars)
    return out


@pytest.fixture
def params():
    rng = np.random.default_rng(11)
    return {"w": rng.standard_normal(GRAD_SHAPE).astype(np.float32)}


def assert_matches_oracle(got, params):
    want = expected_rows(params)
    assert sorted(got) == sorted(want) == list(range(N_SAMPLES))
    for index in want:
        np.testing.assert_array_equal(got[index][0], want[index][0]["g"])
        assert got[index][1] == want[index][1]


class TestWorkerPool:
    def test_round_trip_matches_serial_oracle(self, params):
        with WorkerPool(make_spec(), workers=2) as pool:
            pool.broadcast(params)
            got = collect(pool, make_tasks())
        assert_matches_oracle(got, params)

    def test_rebroadcast_is_seen_by_workers(self, params):
        with WorkerPool(make_spec(), workers=2) as pool:
            pool.broadcast(params)
            collect(pool, make_tasks())
            fresh = {"w": params["w"] * np.float32(3.0)}
            pool.broadcast(fresh)
            got = collect(pool, make_tasks())
        assert_matches_oracle(got, fresh)

    def test_sigkilled_worker_is_respawned_and_task_requeued(
            self, params, tmp_path):
        marker = str(tmp_path / "died_once")
        with WorkerPool(make_spec(), workers=2) as pool:
            pool.broadcast(params)
            got = collect(pool, make_tasks("die_once", marker))
            assert pool.counters.worker_deaths >= 1
            assert pool.counters.respawns >= 1
            assert pool.counters.requeues >= 1
        assert_matches_oracle(got, params)

    def test_hung_task_times_out_and_retries(self, params, tmp_path):
        marker = str(tmp_path / "slept_once")
        spec = make_spec()
        with WorkerPool(spec, workers=2, task_timeout=1.0) as pool:
            pool.broadcast(params)
            got = collect(pool, make_tasks("sleep_once", marker, sleep=30.0))
            assert pool.counters.timeouts >= 1
            assert pool.counters.respawns >= 1
        assert_matches_oracle(got, params)

    def test_worker_exception_surfaces_as_task_error(self, params, tmp_path):
        marker = str(tmp_path / "raised_once")
        with WorkerPool(make_spec(), workers=1) as pool:
            pool.broadcast(params)
            with pytest.raises(TaskError, match="intentional worker failure"):
                pool.run_tasks(make_tasks("raise", marker))

    def test_retry_budget_is_bounded(self, params):
        # A task that kills its worker on *every* attempt (marker=None)
        # must fail loudly after max_task_retries instead of spinning.
        tasks = make_tasks()
        tasks[0].update({"mode": "die_once", "marker": None})
        pool = WorkerPool(make_spec(), workers=1, max_task_retries=1)
        try:
            pool.broadcast(params)
            with pytest.raises((WorkerPoolError, TaskError)):
                pool.run_tasks(tasks)
        finally:
            pool.close()

    def test_close_is_clean_and_final(self, params):
        pool = WorkerPool(make_spec(), workers=2)
        pool.broadcast(params)
        collect(pool, make_tasks())
        processes = [h.process for h in pool._handles.values()]
        pool.close()
        assert all(not p.is_alive() for p in processes)
        pool.close()  # idempotent
        with pytest.raises(WorkerPoolError):
            pool.run_tasks(make_tasks())

    def test_grads_reduce_identically_to_inprocess_tree(self, params):
        with WorkerPool(make_spec(), workers=2) as pool:
            pool.broadcast(params)
            got = collect(pool, make_tasks())
        want = expected_rows(params)
        np.testing.assert_array_equal(
            tree_reduce([got[i][0] for i in range(N_SAMPLES)]),
            tree_reduce([want[i][0]["g"] for i in range(N_SAMPLES)]))
