"""Genuine-concurrency check — only meaningful where cores exist.

Bit-identity and robustness are asserted unconditionally elsewhere; this
module is the one place a *speedup* is asserted, so it skips (rather than
fails) on single-CPU machines, matching the conditional throughput gate
in ``scripts/bench_train.py``.
"""

import os
import time

import pytest

import numpy as np

from repro.parallel import ArraySpec, WorkerPool, WorkSpec

from ._workers import GRAD_SHAPE, toy_init, toy_work

pytestmark = [
    pytest.mark.parallel,
    pytest.mark.skipif((os.cpu_count() or 1) < 2,
                       reason="speedup assertions need >= 2 CPUs"),
]


def test_two_workers_overlap_slow_tasks():
    delay = 0.3
    tasks = [{"mode": "slow", "sleep": delay, "seed": 1, "step": 0,
              "samples": [i]} for i in range(4)]
    spec = WorkSpec(init_fn=toy_init, work_fn=toy_work,
                    init_payload={"scale": 1.0},
                    param_specs=(ArraySpec("w", GRAD_SHAPE),),
                    grad_specs=(ArraySpec("g", GRAD_SHAPE),),
                    max_samples=4)
    with WorkerPool(spec, workers=2) as pool:
        pool.broadcast({"w": np.ones(GRAD_SHAPE, np.float32)})
        start = time.perf_counter()
        pool.run_tasks(tasks)
        elapsed = time.perf_counter() - start
    # Serial floor is 4·delay; two workers must beat it with margin.
    assert elapsed < 3.5 * delay
