"""Module-level worker functions for the pool/engine tests.

The spawn start method pickles ``init_fn``/``work_fn`` by reference, so
they must live in an importable module — not inside a test function.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro.utils.rng import derive_seed

GRAD_SHAPE = (3, 4)


def toy_init(payload):
    """Context is just the payload dict (e.g. {"scale": 2.0})."""
    return dict(payload)


def toy_work(ctx, params, task):
    """One row per sample: grad = scale · w · f(sample rng), plus hazards.

    ``task["mode"]`` selects a hazard exercised exactly once per marker
    file (so the retry after respawn/timeout succeeds):

    * ``"square"`` — plain deterministic compute;
    * ``"die_once"`` — SIGKILL this worker before computing;
    * ``"sleep_once"`` — sleep past the pool's task timeout;
    * ``"raise"`` — raise inside ``work_fn`` (an application error, which
      must surface as TaskError rather than be retried).
    """
    mode = task.get("mode", "square")
    marker = task.get("marker")
    if mode == "slow":
        # Deterministic artificial latency on every attempt — used by the
        # (multi-core only) overlap test to measure genuine concurrency.
        time.sleep(task["sleep"])
    # marker=None means the hazard fires on *every* attempt (for the
    # retry-budget test); otherwise it fires once and leaves a marker.
    if mode != "square" and (marker is None or not os.path.exists(marker)):
        if marker is not None:
            with open(marker, "w"):
                pass
        if mode == "die_once":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "sleep_once":
            time.sleep(task["sleep"])
        elif mode == "raise":
            raise ValueError("intentional worker failure")
    rows = []
    for sample_index in task["samples"]:
        rng = np.random.default_rng(
            derive_seed(task["seed"], "toy", task["step"], sample_index))
        noise = rng.standard_normal(GRAD_SHAPE).astype(np.float32)
        grad = np.float32(ctx["scale"]) * params["w"] * noise
        rows.append((sample_index, {"g": np.ascontiguousarray(grad)},
                     {"loss": float(grad.sum())}))
    return rows
