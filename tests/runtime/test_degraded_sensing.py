"""Graceful degradation under sensor faults: confirmation coasting, the
eval protocol under dropped frames, and the Deployable protocol check."""

import numpy as np
import pytest

from repro.av import AvPipeline, DetectionConfirmer
from repro.detection.config import reduced_config
from repro.detection.decode import Detection
from repro.detection.model import TinyYolo
from repro.eval.protocol import Deployable, run_challenge
from repro.runtime import FaultSchedule
from repro.scene.video import AttackScenario

pytestmark = pytest.mark.runtime


def det(box, class_id, score=0.9):
    return Detection(
        box_xyxy=np.asarray(box, dtype=np.float32),
        score=score,
        class_id=class_id,
        class_probs=np.zeros(5, dtype=np.float32),
    )


BOX = [20, 20, 40, 40]


class TestConfirmerCoasting:
    def test_gap_preserves_streak_instead_of_resetting(self):
        confirmer = DetectionConfirmer(confirm_frames=3, coast_frames=2)
        confirmer.update([det(BOX, 2)])
        confirmer.update([det(BOX, 2)])
        # Sensor gap mid-streak: a dropped frame is not observed absence.
        assert confirmer.update(None) == []
        confirmed = confirmer.update([det(BOX, 2)])
        assert len(confirmed) == 1  # third hit confirms — streak survived

    def test_confirmed_object_stays_visible_through_gap(self):
        confirmer = DetectionConfirmer(confirm_frames=3, coast_frames=2)
        for _ in range(3):
            confirmer.update([det(BOX, 2)])
        during_gap = confirmer.update(None)
        assert len(during_gap) == 1
        np.testing.assert_array_equal(during_gap[0].box_xyxy,
                                      np.asarray(BOX, dtype=np.float32))

    def test_gap_longer_than_coast_budget_drops_object(self):
        confirmer = DetectionConfirmer(confirm_frames=3, coast_frames=1)
        for _ in range(3):
            confirmer.update([det(BOX, 2)])
        assert len(confirmer.update(None)) == 1   # first gap: coasts
        assert confirmer.update(None) == []        # budget exhausted

    def test_observed_absence_still_resets_streak(self):
        confirmer = DetectionConfirmer(confirm_frames=3, coast_frames=2)
        confirmer.update([det(BOX, 2)])
        confirmer.update([det(BOX, 2)])
        confirmer.update([])  # seen and absent — not a sensor fault
        assert confirmer.update([det(BOX, 2)]) == []

    def test_coast_frames_validation(self):
        with pytest.raises(ValueError):
            DetectionConfirmer(coast_frames=-1)


@pytest.fixture(scope="module")
def small_model():
    return TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)


@pytest.fixture(scope="module")
def small_scenario():
    return AttackScenario(image_size=64)


class TestProtocolUnderFaults:
    def test_run_challenge_completes_with_coasted_outcomes(
            self, small_model, small_scenario):
        faults = FaultSchedule.dropped_frames(0.2)
        result = run_challenge(small_model, small_scenario, "angle/0",
                               n_runs=1, seed=1, faults=faults)
        outcomes = result.runs[0].outcomes
        assert len(outcomes) > 0
        assert any(o.coasted for o in outcomes)
        assert 0.0 <= result.pwc <= 100.0

    def test_fault_schedule_is_reproducible(self, small_model, small_scenario):
        faults = FaultSchedule.dropped_frames(0.3, seed=4)
        a = run_challenge(small_model, small_scenario, "angle/0",
                          n_runs=1, faults=faults)
        b = run_challenge(small_model, small_scenario, "angle/0",
                          n_runs=1, faults=faults)
        assert [o.coasted for o in a.runs[0].outcomes] == \
            [o.coasted for o in b.runs[0].outcomes]

    def test_clean_run_has_no_coasted_frames(self, small_model, small_scenario):
        result = run_challenge(small_model, small_scenario, "angle/0",
                               n_runs=1)
        assert not any(o.coasted for o in result.runs[0].outcomes)


class TestDeployableProtocol:
    def test_non_deployable_artifact_rejected(self, small_model, small_scenario):
        with pytest.raises(TypeError, match="Deployable"):
            run_challenge(small_model, small_scenario, "angle/0",
                          artifact=object(), n_runs=1)

    def test_structural_conformance_is_enough(self):
        class Decals:
            def deploy(self, physical=False, rng=None):
                return None

        assert isinstance(Decals(), Deployable)
        assert not isinstance(object(), Deployable)


class TestPipelineUnderFaults:
    def test_run_marks_sensor_faults_and_survives(self, small_model):
        pipeline = AvPipeline(small_model)
        frames = [np.full((3, 64, 64), 0.3, dtype=np.float32) for _ in range(8)]
        faults = FaultSchedule(drop_probability=0.4, noise_probability=0.2, seed=2)
        traces = pipeline.run(frames, faults=faults, rng=np.random.default_rng(2))
        assert len(traces) == 8
        assert any(t.sensor_fault for t in traces)
        for trace in traces:
            if trace.sensor_fault:
                assert trace.detections == []
            assert trace.decision is not None
