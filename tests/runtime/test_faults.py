"""Sensor-fault schedules (repro.runtime.faults)."""

import numpy as np
import pytest

from repro.runtime import FAULT_KINDS, FaultEvent, FaultSchedule

pytestmark = pytest.mark.runtime


class TestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("flicker")

    def test_probabilities_must_be_unit_interval(self):
        with pytest.raises(ValueError):
            FaultSchedule(drop_probability=1.2)
        with pytest.raises(ValueError):
            FaultSchedule(noise_probability=-0.1)

    def test_probabilities_must_sum_below_one(self):
        with pytest.raises(ValueError):
            FaultSchedule(drop_probability=0.6, noise_probability=0.6)


class TestSampling:
    def test_deterministic_given_seed(self):
        schedule = FaultSchedule(drop_probability=0.3, noise_probability=0.2, seed=5)
        a = schedule.sample(50, np.random.default_rng(5))
        b = schedule.sample(50, np.random.default_rng(5))
        assert [e.kind if e else None for e in a] == \
            [e.kind if e else None for e in b]

    def test_marginal_rates_roughly_match(self):
        schedule = FaultSchedule(drop_probability=0.2, noise_probability=0.1,
                                 occlusion_probability=0.1)
        events = schedule.sample(4000, np.random.default_rng(0))
        kinds = [e.kind for e in events if e is not None]
        n = len(events)
        assert kinds.count("drop") / n == pytest.approx(0.2, abs=0.03)
        assert kinds.count("noise") / n == pytest.approx(0.1, abs=0.03)
        assert kinds.count("occlude") / n == pytest.approx(0.1, abs=0.03)
        assert set(kinds) <= set(FAULT_KINDS)

    def test_zero_schedule_is_all_clear(self):
        assert FaultSchedule().sample(20) == [None] * 20


class TestApply:
    def _frame(self):
        return np.full((3, 16, 16), 0.25, dtype=np.float32)

    def test_none_event_passthrough(self):
        frame = self._frame()
        out = FaultSchedule().apply(frame, None)
        assert out is frame

    def test_drop_returns_none(self):
        schedule = FaultSchedule.dropped_frames(1.0)
        assert schedule.apply(self._frame(), FaultEvent("drop")) is None

    def test_noise_keeps_shape_and_range(self):
        schedule = FaultSchedule(noise_probability=1.0, noise_sigma=0.3)
        out = schedule.apply(self._frame(), FaultEvent("noise", magnitude=0.3),
                             np.random.default_rng(0))
        assert out.shape == (3, 16, 16)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert not np.array_equal(out, self._frame())

    def test_occlusion_paints_gray_rectangle(self):
        schedule = FaultSchedule(occlusion_probability=1.0, occlusion_fraction=0.5)
        frame = self._frame()
        out = schedule.apply(frame, FaultEvent("occlude", magnitude=0.5),
                             np.random.default_rng(0))
        assert out is not frame  # input untouched
        assert np.array_equal(frame, self._frame())
        occluded = np.isclose(out, 0.5).all(axis=0)
        assert occluded.sum() == 8 * 8

    def test_degrade_stream_mixes_drops_and_frames(self):
        schedule = FaultSchedule(drop_probability=0.5, seed=3)
        frames = [self._frame() for _ in range(40)]
        stream = schedule.degrade_stream(frames, np.random.default_rng(3))
        assert len(stream) == 40
        dropped = sum(1 for f in stream if f is None)
        assert 0 < dropped < 40
