"""Divergence guard + bounded retry (repro.runtime.guard / .retry)."""

import math

import pytest

from repro.runtime import (
    DivergenceError,
    DivergenceGuard,
    GuardConfig,
    RetryPolicy,
    run_with_recovery,
)

pytestmark = pytest.mark.runtime


class TestGuard:
    def test_finite_metrics_pass(self):
        guard = DivergenceGuard()
        guard.check(3, loss=0.7, g_grad_norm=12.0)  # no raise

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_loss_trips(self, bad):
        guard = DivergenceGuard()
        with pytest.raises(DivergenceError) as err:
            guard.check(5, loss=bad)
        assert err.value.step == 5
        assert "loss" in err.value.reason

    def test_exploding_norm_trips_only_norm_keys(self):
        guard = DivergenceGuard(GuardConfig(grad_norm_threshold=100.0))
        guard.check(1, loss=1e6)  # huge but finite non-norm metric is fine
        with pytest.raises(DivergenceError):
            guard.check(1, g_grad_norm=101.0)

    def test_norm_threshold_can_be_disabled(self):
        guard = DivergenceGuard(GuardConfig(grad_norm_threshold=None))
        guard.check(1, g_grad_norm=1e12)  # no raise

    def test_is_floating_point_error(self):
        assert issubclass(DivergenceError, FloatingPointError)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(max_retries=-1)
        with pytest.raises(ValueError):
            GuardConfig(lr_decay=0.0)
        with pytest.raises(ValueError):
            GuardConfig(checkpoint_interval=0)


class TestRetry:
    def test_success_first_try(self):
        assert run_with_recovery(lambda k: k + 41) == 41

    def test_recovers_after_divergence(self):
        calls = []
        recoveries = []

        def attempt(k):
            calls.append(k)
            if k < 2:
                raise DivergenceError(step=7, reason="boom")
            return "done"

        result = run_with_recovery(
            attempt, RetryPolicy(max_retries=3),
            on_divergence=lambda k, err: recoveries.append((k, err.step)),
        )
        assert result == "done"
        assert calls == [0, 1, 2]
        assert recoveries == [(1, 7), (2, 7)]

    def test_exhaustion_reraises_as_floating_point_error(self):
        def attempt(k):
            raise DivergenceError(step=k, reason="persistent")

        with pytest.raises(FloatingPointError):
            run_with_recovery(attempt, RetryPolicy(max_retries=2))

    def test_other_exceptions_propagate_immediately(self):
        calls = []

        def attempt(k):
            calls.append(k)
            raise KeyError("not a divergence")

        with pytest.raises(KeyError):
            run_with_recovery(attempt, RetryPolicy(max_retries=5))
        assert calls == [0]

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_retries=3, backoff_seconds=1.5, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(1.5)
        assert policy.delay(2) == pytest.approx(3.0)
        assert policy.delay(3) == pytest.approx(6.0)
        assert RetryPolicy(backoff_seconds=0.0).delay(3) == 0.0
