"""End-to-end fault tolerance: crash/resume, divergence recovery, cache
integrity (the PR's acceptance criteria)."""

import numpy as np
import pytest

import repro.attack.trainer as attack_trainer
import repro.experiments as experiments
from repro.attack.artifacts import cached_path, load_attack, save_attack
from repro.attack.config import AttackConfig
from repro.attack.trainer import AttackResult, train_patch_attack
from repro.detection.config import reduced_config
from repro.detection.model import TinyYolo
from repro.nn import Tensor
from repro.nn.serialization import CheckpointError
from repro.runtime import GuardConfig, RuntimeConfig
from repro.scene.video import AttackScenario
from repro.utils.logging import TrainLog

pytestmark = pytest.mark.runtime


def _small_setup():
    model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)
    scenario = AttackScenario(image_size=64)
    config = AttackConfig(steps=6, warmup_steps=2, batch_frames=6,
                          frame_pool=6, gan_batch=4, k=20)
    return model, scenario, config


class TestKillAndResume:
    def test_resume_reproduces_uninterrupted_run_bit_for_bit(
            self, tmp_path, monkeypatch):
        model, scenario, config = _small_setup()
        baseline = train_patch_attack(model, scenario, config)

        # Crash the run partway through: attack_loss is called once per
        # attack step, so failing on its 4th call kills the loop at step 3,
        # after the checkpoints at steps 0 and 2 have landed.
        ckpt = str(tmp_path / "attack.ckpt.npz")
        runtime = RuntimeConfig(checkpoint_path=ckpt, checkpoint_interval=2,
                                keep_checkpoint=True)
        real_loss = attack_trainer.attack_loss
        calls = {"n": 0}

        def crashing_loss(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 4:
                raise KeyboardInterrupt("simulated SIGKILL")
            return real_loss(*args, **kwargs)

        monkeypatch.setattr(attack_trainer, "attack_loss", crashing_loss)
        with pytest.raises(KeyboardInterrupt):
            train_patch_attack(model, scenario, config, runtime=runtime)
        monkeypatch.setattr(attack_trainer, "attack_loss", real_loss)

        # Resume from the on-disk snapshot in a fresh call.
        log = TrainLog("resumed")
        resumed = train_patch_attack(
            model, scenario, config, log=log,
            runtime=RuntimeConfig(checkpoint_path=ckpt, checkpoint_interval=2),
        )

        restores = log.events_of("checkpoint_restore")
        assert len(restores) == 1 and restores[0]["step"] == 2
        assert np.array_equal(resumed.patch, baseline.patch)
        assert np.array_equal(resumed.alpha, baseline.alpha)

    def test_checkpoint_deleted_after_successful_run(self, tmp_path):
        import os

        model, scenario, config = _small_setup()
        ckpt = str(tmp_path / "attack.ckpt.npz")
        train_patch_attack(
            model, scenario, config,
            runtime=RuntimeConfig(checkpoint_path=ckpt, checkpoint_interval=2),
        )
        assert not os.path.exists(ckpt)


class TestDivergenceRecovery:
    def test_nan_loss_rolls_back_cuts_lr_and_completes(self, monkeypatch):
        model, scenario, config = _small_setup()
        real_loss = attack_trainer.attack_loss
        calls = {"n": 0}

        def nan_once(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                return Tensor(float("nan"))
            return real_loss(*args, **kwargs)

        monkeypatch.setattr(attack_trainer, "attack_loss", nan_once)
        log = TrainLog("recovered")
        result = train_patch_attack(model, scenario, config, log=log)

        recoveries = log.events_of("divergence_recovery")
        assert len(recoveries) == 1
        event = recoveries[0]
        assert event["step"] == 2
        assert "non-finite g_loss" in event["reason"]
        assert event["attempt"] == 1
        assert event["lr"] == pytest.approx(config.learning_rate * 0.5)
        assert np.isfinite(result.patch).all()

    def test_persistent_divergence_exhausts_as_floating_point_error(
            self, monkeypatch):
        model, scenario, config = _small_setup()
        monkeypatch.setattr(attack_trainer, "attack_loss",
                            lambda *a, **k: Tensor(float("nan")))
        runtime = RuntimeConfig(guard=GuardConfig(max_retries=1))
        with pytest.raises(FloatingPointError):
            train_patch_attack(model, scenario, config, runtime=runtime)


class TestWorkbenchCacheIntegrity:
    def _canned_result(self, config):
        log = TrainLog("stub")
        log.log(0, g_loss=1.0)
        return AttackResult(
            patch=np.full((1, config.k, config.k), 0.5, dtype=np.float32),
            alpha=np.ones((config.k, config.k), dtype=np.float32),
            config=config,
            history=log,
            world_size_m=0.45,
        )

    def test_truncated_artifact_is_retrained_not_loaded(
            self, tmp_path, monkeypatch):
        bench = experiments.Workbench.smoke(cache_dir=str(tmp_path))
        config = bench.attack_config()
        trains = {"n": 0}

        def stub_train(model, scenario, cfg, log=None, runtime=None):
            trains["n"] += 1
            return self._canned_result(cfg)

        monkeypatch.setattr(experiments, "train_patch_attack", stub_train)
        monkeypatch.setattr(experiments.Workbench, "detector",
                            lambda self, force_retrain=False: None)
        monkeypatch.setattr(experiments.Workbench, "scenario",
                            lambda self: None)

        first = bench.train_attack(config)
        assert trains["n"] == 1
        path = cached_path(bench.cache_dir, config, kind="attack")

        # Cache hit: no retrain.
        bench.train_attack(config)
        assert trains["n"] == 1

        # Truncate the artifact mid-file — the poisoned cache must be
        # discarded, retrained, and overwritten with a valid archive.
        import os

        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.warns(UserWarning, match="corrupt cached artifact"):
            retrained = bench.train_attack(config)
        assert trains["n"] == 2
        assert np.array_equal(retrained.patch, first.patch)
        reloaded = load_attack(path)  # now valid again
        assert np.array_equal(reloaded.patch, first.patch)

    def test_load_attack_rejects_truncation_directly(self, tmp_path):
        import os

        config = AttackConfig(k=12)
        path = str(tmp_path / "attack.npz")
        save_attack(self._canned_result(config), path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 3)
        with pytest.raises(CheckpointError):
            load_attack(path)


class TestBatchFrameClamping:
    """Satellite: _batch_frames must not crash on small pools."""

    @staticmethod
    def _frames(n):
        from repro.scene.video import TrainingFrame

        return [TrainingFrame(image=np.zeros((3, 8, 8), dtype=np.float32),
                              target_box_xywh=np.zeros(4),
                              placements=[], pose=None)
                for _ in range(n)]

    def test_small_pool_yields_clamped_batch(self):
        from repro.attack.trainer import _batch_frames

        config = AttackConfig(batch_frames=12, group=3)
        batch = _batch_frames(self._frames(3), config, np.random.default_rng(0))
        assert len(batch) == 3  # one complete run, not a crash

    def test_small_pool_clamps_without_consecutive_grouping(self):
        from repro.attack.trainer import _batch_frames

        config = AttackConfig(batch_frames=12, consecutive=False)
        batch = _batch_frames(self._frames(5), config, np.random.default_rng(0))
        assert len(batch) == 5

    def test_empty_pool_raises_value_error(self):
        from repro.attack.trainer import _batch_frames

        with pytest.raises(ValueError, match="empty"):
            _batch_frames([], AttackConfig(), np.random.default_rng(0))

    def test_pool_without_complete_run_raises(self):
        from repro.attack.trainer import _batch_frames

        with pytest.raises(ValueError, match="complete run"):
            _batch_frames(self._frames(2), AttackConfig(group=3),
                          np.random.default_rng(0))
