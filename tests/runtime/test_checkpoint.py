"""Atomic, digest-verified checkpoints (repro.runtime.checkpoint)."""

import os

import numpy as np
import pytest

from repro.nn import Adam, SGD, Linear, load_module, save_module
from repro.nn.layers import Parameter
from repro.nn.serialization import (
    CheckpointError,
    load_state,
    save_state,
    state_digest,
)
from repro.runtime import (
    CheckpointManager,
    TrainingCheckpoint,
    capture_rng,
    restore_rng,
)

pytestmark = pytest.mark.runtime


class TestStateSerialization:
    def test_roundtrip_preserves_arrays(self, tmp_path):
        path = str(tmp_path / "state.npz")
        state = {"a": np.arange(12, dtype=np.float32).reshape(3, 4),
                 "b": np.asarray(7, dtype=np.int64)}
        save_state(path, state)
        back = load_state(path)
        np.testing.assert_array_equal(back["a"], state["a"])
        assert int(back["b"]) == 7

    def test_no_tmp_litter_after_save(self, tmp_path):
        path = str(tmp_path / "state.npz")
        save_state(path, {"a": np.zeros(3)})
        assert sorted(os.listdir(tmp_path)) == ["state.npz"]

    def test_truncated_file_raises(self, tmp_path):
        path = str(tmp_path / "state.npz")
        save_state(path, {"a": np.arange(4096, dtype=np.float64)})
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_bit_flip_fails_digest(self, tmp_path):
        path = str(tmp_path / "state.npz")
        save_state(path, {"a": np.zeros(64, dtype=np.uint8)})
        data = bytearray(open(path, "rb").read())
        # Flip a byte inside the stored (uncompressed) array payload.
        marker = data.find(b"a.npy") + 200
        data[marker] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_state(str(tmp_path / "nope.npz"))

    def test_digest_is_content_addressed(self):
        a = {"x": np.ones(4, dtype=np.float32)}
        b = {"x": np.ones(4, dtype=np.float32)}
        c = {"x": np.full(4, 2.0, dtype=np.float32)}
        assert state_digest(a) == state_digest(b)
        assert state_digest(a) != state_digest(c)

    def test_module_roundtrip_with_digest(self, tmp_path):
        path = str(tmp_path / "module.npz")
        layer = Linear(4, 3, rng=np.random.default_rng(1))
        save_module(layer, path)
        other = Linear(4, 3, rng=np.random.default_rng(2))
        load_module(other, path)
        np.testing.assert_array_equal(other.weight.data, layer.weight.data)

    def test_corrupt_module_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "module.npz")
        save_module(Linear(8, 8, rng=np.random.default_rng(1)), path)
        with open(path, "r+b") as handle:
            handle.truncate(20)
        with pytest.raises(CheckpointError):
            load_module(Linear(8, 8, rng=np.random.default_rng(2)), path)


class TestTrainingCheckpoint:
    def _checkpoint(self):
        rng = np.random.default_rng(9)
        rng.random(5)  # advance so the state is mid-stream
        return TrainingCheckpoint(
            step=17,
            state={"w": np.arange(6, dtype=np.float32)},
            rngs={"batch": capture_rng(rng)},
            scalars={"lr": 5e-4},
        ), rng

    def test_manager_roundtrip(self, tmp_path):
        checkpoint, rng = self._checkpoint()
        manager = CheckpointManager(str(tmp_path / "ck.npz"), interval=4)
        manager.save(checkpoint)
        back = manager.load()
        assert back.step == 17
        assert back.scalars["lr"] == pytest.approx(5e-4)
        np.testing.assert_array_equal(back.state["w"], checkpoint.state["w"])
        # The restored stream continues exactly where the captured one will.
        fresh = np.random.default_rng(0)
        restore_rng(fresh, back.rngs["batch"])
        np.testing.assert_array_equal(fresh.random(8), rng.random(8))

    def test_manager_corrupt_file_returns_none(self, tmp_path):
        checkpoint, _ = self._checkpoint()
        manager = CheckpointManager(str(tmp_path / "ck.npz"), interval=1)
        manager.save(checkpoint)
        with open(manager.path, "r+b") as handle:
            handle.truncate(10)
        assert manager.load() is None
        assert isinstance(manager.last_error, CheckpointError)

    def test_manager_cadence_and_delete(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ck.npz"), interval=5)
        assert manager.due(0) and manager.due(10) and not manager.due(7)
        checkpoint, _ = self._checkpoint()
        manager.save(checkpoint)
        manager.delete()
        assert manager.load() is None

    def test_disabled_manager_is_inert(self):
        manager = CheckpointManager(None, interval=3)
        checkpoint, _ = self._checkpoint()
        manager.save(checkpoint)  # no-op
        assert manager.load() is None

    def test_copy_is_deep(self):
        checkpoint, _ = self._checkpoint()
        clone = checkpoint.copy()
        clone.state["w"][0] = 99.0
        assert checkpoint.state["w"][0] == 0.0


class TestOptimizerState:
    def _params(self, seed):
        rng = np.random.default_rng(seed)
        return [Parameter(rng.random((3, 2)).astype(np.float32)),
                Parameter(rng.random(4).astype(np.float32))]

    def _train_steps(self, optimizer, params, n):
        rng = np.random.default_rng(0)
        for _ in range(n):
            for p in params:
                p.grad = rng.random(p.data.shape).astype(np.float32)
            optimizer.step()

    @pytest.mark.parametrize("factory", [
        lambda ps: Adam(ps, lr=1e-3),
        lambda ps: SGD(ps, lr=1e-2, momentum=0.9),
    ])
    def test_resumed_optimizer_matches_uninterrupted(self, factory):
        params_a = self._params(1)
        opt_a = factory(params_a)
        self._train_steps(opt_a, params_a, 6)

        params_b = self._params(1)
        opt_b = factory(params_b)
        self._train_steps(opt_b, params_b, 3)
        snapshot = {k: np.asarray(v).copy() for k, v in opt_b.state_dict().items()}
        weights = [p.data.copy() for p in params_b]

        params_c = self._params(2)  # different init, fully restored below
        for p, w in zip(params_c, weights):
            p.data = w.copy()
        opt_c = factory(params_c)
        opt_c.load_state_dict(snapshot)
        # Replay the same last 3 gradient draws the uninterrupted run saw.
        rng = np.random.default_rng(0)
        for _ in range(3):
            for p in params_c:
                rng.random(p.data.shape)  # discard first-3-step draws
        for _ in range(3):
            for p in params_c:
                p.grad = rng.random(p.data.shape).astype(np.float32)
            opt_c.step()
        for pa, pc in zip(params_a, params_c):
            np.testing.assert_array_equal(pa.data, pc.data)
