#!/usr/bin/env python
"""Universal decals: one decal, many scenes (future-work extension).

The paper trains its decal for one scene and lists speed/scene robustness
as future work. This example trains two attacks — one on the target scene
only, one across several scene styles — and evaluates both on a *held-out*
scene style, showing the universal decal generalizes better.

Usage::

    python examples/universal_decal.py [--profile smoke|reduced]
"""

import argparse
import dataclasses

import numpy as np

from repro.eval import evaluate_challenges, format_table
from repro.experiments import Workbench


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("smoke", "reduced"), default="smoke")
    args = parser.parse_args()
    factory = Workbench.smoke if args.profile == "smoke" else Workbench.reduced
    bench = factory(seed=0)
    detector = bench.detector()

    print("== Training the single-scene attack (paper setting)")
    single = bench.train_attack()

    print("== Training the universal attack across 4 scene styles")
    universal = bench.train_attack(
        bench.attack_config(universal_styles=(11, 22, 33, 44))
    )

    # Held-out scene: a style seed neither attack trained on.
    held_out = dataclasses.replace(bench.scenario(), style_seed=999)
    challenges = ("rotation/fix", "speed/slow")
    rows = {
        "single-scene decal": evaluate_challenges(
            detector, held_out, artifact=single, challenges=challenges,
            target_class=single.config.target_class, n_runs=2,
        ),
        "universal decal": evaluate_challenges(
            detector, held_out, artifact=universal, challenges=challenges,
            target_class=universal.config.target_class, n_runs=2,
        ),
    }
    print(format_table("Held-out scene (digital PWC / CWC)", rows, challenges))


if __name__ == "__main__":
    main()
