#!/usr/bin/env python
"""Render a full attack approach video and a per-frame detection trace.

Simulates the paper's dynamic evaluation: a car approaches the attacked
road marking at a chosen speed while the detector runs on every frame. The
script prints the per-frame classification (the data behind PWC/CWC) and
writes every frame to ``artifacts/video/``.

Usage::

    python examples/approach_video.py [--challenge speed/normal] [--physical]
"""

import argparse
import os

import numpy as np

from repro.detection import CLASS_NAMES, detections_from_outputs
from repro.eval import classify_frame, cwc, pwc
from repro.experiments import Workbench
from repro.nn import Tensor, no_grad
from repro.scene import challenge_trajectory, render_run
from repro.utils import save_image


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--challenge", default="speed/normal")
    parser.add_argument("--physical", action="store_true")
    parser.add_argument("--no-attack", action="store_true",
                        help="render the clean baseline video instead")
    parser.add_argument("--profile", choices=("smoke", "reduced"), default="smoke")
    parser.add_argument("--out", default="artifacts/video")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    factory = Workbench.smoke if args.profile == "smoke" else Workbench.reduced
    bench = factory(seed=0)
    detector = bench.detector()
    scenario = bench.scenario()

    decals = None
    target_label = CLASS_NAMES.index("word")
    if not args.no_attack:
        attack = bench.train_attack()
        decals = attack.deploy(physical=args.physical,
                               rng=np.random.default_rng(1))
        target_label = CLASS_NAMES.index(attack.config.target_class)

    poses = challenge_trajectory(args.challenge)
    frames = render_run(scenario, poses, np.random.default_rng(2),
                        decals=decals, physical=args.physical)

    outcomes = []
    print(f"frame  dist(m)  predicted      score")
    with no_grad():
        for index, frame in enumerate(frames):
            outputs = detector(Tensor(frame.image[None]))
            detections = detections_from_outputs(outputs, detector.config)[0]
            outcome = classify_frame(detections, frame.target_box_xywh)
            outcomes.append(outcome)
            name = ("-" if outcome.predicted_class is None
                    else CLASS_NAMES[outcome.predicted_class])
            print(f"{index:5d}  {frame.pose.distance:7.2f}  {name:12s}  "
                  f"{outcome.score:.2f}")
            save_image(frame.image, os.path.join(args.out, f"frame_{index:03d}.ppm"))

    print()
    print(f"PWC = {pwc(outcomes, target_label):.0f}%  "
          f"CWC = {'yes' if cwc(outcomes, target_label) else 'no'}  "
          f"(target class: {CLASS_NAMES[target_label]})")
    print(f"frames written to {args.out}/")


if __name__ == "__main__":
    main()
