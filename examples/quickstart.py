#!/usr/bin/env python
"""Quickstart: the whole pipeline in one script, at smoke scale.

Builds the synthetic road dataset, trains the reduced YOLOv3-tiny victim,
trains the monochrome decal attack of the paper, and reports PWC/CWC on
two challenges. Runs in a few minutes on a laptop CPU; artifacts are cached
under ``.repro_cache`` so a second run is instant.

Usage::

    python examples/quickstart.py [--profile smoke|reduced]
"""

import argparse

from repro.experiments import Workbench
from repro.eval import format_table
from repro.utils import ascii_preview


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("smoke", "reduced"), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    factory = Workbench.smoke if args.profile == "smoke" else Workbench.reduced
    bench = factory(seed=args.seed)

    print("== 1. Fine-tuning the victim detector on the synthetic road dataset")
    detector = bench.detector()
    print(f"   detector: {detector.num_parameters():,} parameters, "
          f"input {detector.config.input_size}px")

    print("== 2. Training the decal attack (GAN + EOT + consecutive frames)")
    attack = bench.train_attack()
    print("   final attack loss:", round(attack.history.last("attack"), 3))
    print("   generated decal (black ink = the printed shape):")
    print(ascii_preview(attack.patch, 36))

    print("== 3. Evaluating PWC / CWC on two challenges")
    challenges = ("speed/slow", "rotation/fix")
    digital = bench.evaluate(attack, challenges=challenges, physical=False)
    clean = bench.evaluate(None, challenges=challenges, physical=False)
    print(format_table(
        "Quickstart results (digital environment)",
        {"w/o attack": clean, "ours": digital},
        challenges,
    ))
    if args.profile == "smoke":
        print()
        print("Note: the smoke profile demonstrates the wiring in minutes; "
              "for meaningful attack numbers run with --profile reduced "
              "(first run trains and caches the calibrated artifacts).")


if __name__ == "__main__":
    main()
