#!/usr/bin/env python
"""Decal designer: explore shape priors, sizes and EOT robustness.

A domain-specific walk through the patch machinery:

1. generate the Four Shapes prior samples;
2. train a small GAN per shape and save the generated decals;
3. push one decal through every EOT trick and save the transformed views
   — the exact augmentation distribution the attack optimizes against.

Outputs PGM/PPM files under ``artifacts/designer/``.

Usage::

    python examples/decal_designer.py [--size 40]
"""

import argparse
import os

import numpy as np

from repro.eot import EOTPipeline, TransformParams
from repro.gan import GanTrainConfig, PatchDiscriminator, PatchGenerator, train_gan
from repro.nn import Tensor
from repro.patch import SHAPE_NAMES, shape_image
from repro.utils import ascii_preview, save_image


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=40)
    parser.add_argument("--out", default="artifacts/designer")
    parser.add_argument("--gan-steps", type=int, default=40)
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    print("== Four Shapes prior samples")
    rng = np.random.default_rng(0)
    for shape in SHAPE_NAMES:
        sample = shape_image(shape, args.size, rng)
        save_image(sample, os.path.join(args.out, f"prior_{shape}.pgm"))

    print("== GAN-generated decals per shape")
    for shape in SHAPE_NAMES:
        generator = PatchGenerator(args.size, latent_dim=16, seed=1)
        discriminator = PatchDiscriminator(args.size, seed=2)
        train_gan(generator, discriminator, shape,
                  GanTrainConfig(steps=args.gan_steps, learning_rate=1e-3))
        decal = generator(Tensor(generator.sample_latent(1, rng))).data[0]
        save_image(decal, os.path.join(args.out, f"generated_{shape}.pgm"))
        print(f"-- {shape}:")
        print(ascii_preview(decal, 30))

    print("== EOT views of a star decal")
    pipeline = EOTPipeline.with_tricks(
        frozenset({"resize", "rotation", "gamma", "perspective"})
    )
    star = Tensor(shape_image("star", args.size, rng)[None])
    views = {
        "resized": TransformParams(scale=0.6),
        "rotated": TransformParams(angle_degrees=40.0),
        "gamma": TransformParams(gamma_value=1.6),
        "perspective": TransformParams(perspective_tilt=0.6),
    }
    for name, params in views.items():
        transformed = pipeline.apply(star, params).data[0]
        save_image(transformed, os.path.join(args.out, f"eot_{name}.pgm"))
    print(f"wrote artifacts to {args.out}/")


if __name__ == "__main__":
    main()
