#!/usr/bin/env python
"""The digital→physical gap: why the paper restricts decals to one color.

Reproduces the paper's §IV-B argument in miniature:

1. train our monochrome, shape-constrained decal attack;
2. train the Sava et al. [34] colored-patch baseline;
3. pass both through the printer model and compare the pixel error;
4. evaluate both digitally and physically and show the baseline collapse.

Usage::

    python examples/physical_gap.py [--profile smoke|reduced]
"""

import argparse

import numpy as np

from repro.experiments import Workbench
from repro.eval import format_table
from repro.scene import print_patch


def print_error(patch_rgb: np.ndarray, seed: int = 0) -> float:
    """Mean absolute pixel change caused by printing."""
    printed = print_patch(patch_rgb, np.random.default_rng(seed))
    return float(np.abs(printed - np.clip(patch_rgb, 0, 1)).mean())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("smoke", "reduced"), default="smoke")
    args = parser.parse_args()
    factory = Workbench.smoke if args.profile == "smoke" else Workbench.reduced
    bench = factory(seed=0)
    bench.detector()

    print("== Training both attacks")
    ours = bench.train_attack()
    sava = bench.train_baseline()

    mono_rgb = np.repeat(ours.patch, 3, axis=0)
    print(f"printer error, monochrome decal: {print_error(mono_rgb):.3f}")
    print(f"printer error, colored baseline: {print_error(sava.patch_rgb):.3f}")

    challenges = ("speed/slow", "angle/0")
    rows = {
        "ours digital": bench.evaluate(ours, challenges=challenges, physical=False),
        "ours physical": bench.evaluate(ours, challenges=challenges, physical=True),
        "[34] digital": bench.evaluate(sava, challenges=challenges, physical=False),
        "[34] physical": bench.evaluate(sava, challenges=challenges, physical=True),
    }
    print(format_table("Digital vs physical (PWC / CWC)", rows, challenges))
    print("The colored baseline loses far more of its digital effectiveness "
          "after printing — the paper's reason for monochrome decals.")


if __name__ == "__main__":
    main()
