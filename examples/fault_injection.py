#!/usr/bin/env python
"""Sensor faults vs. the confirmation rule: CWC under dropped frames.

The paper's CWC metric demands three *consecutive* wrong-class frames —
a rule that implicitly assumes a perfect camera feed. This example
evaluates the trained decal attack while the frame stream degrades
(a fraction of frames never reaches the detector) and shows how the
evaluation protocol coasts through bounded sensor gaps (DESIGN.md §7)
instead of letting a single dropped frame reset the consecutive count.

Usage::

    python examples/fault_injection.py [--profile smoke|reduced]
"""

import argparse

from repro.experiments import Workbench
from repro.runtime import FaultSchedule

DROP_RATES = (0.0, 0.1, 0.2, 0.4)
CHALLENGES = ("speed/slow", "angle/0")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("smoke", "reduced"), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    factory = Workbench.smoke if args.profile == "smoke" else Workbench.reduced
    bench = factory(seed=args.seed)

    print("== 1. Training (or loading) the decal attack")
    attack = bench.train_attack()

    print("== 2. Evaluating under increasingly lossy frame streams")
    header = "drop rate | " + " | ".join(f"{c:>12}" for c in CHALLENGES)
    print()
    print(header)
    print("-" * len(header))
    for rate in DROP_RATES:
        faults = None
        if rate > 0.0:
            faults = FaultSchedule.dropped_frames(rate)
        results = bench.evaluate(attack, challenges=CHALLENGES,
                                 physical=False, faults=faults)
        cells = " | ".join(f"{results[c].cell():>12}" for c in CHALLENGES)
        coasted = sum(
            sum(o.coasted for o in run.outcomes)
            for c in CHALLENGES for run in results[c].runs
        )
        print(f"{rate:>9.0%} | {cells}   ({coasted} coasted frames)")

    print()
    print("Each cell is PWC / CWC (Y = three consecutive wrong-class frames).")
    print("Dropped frames coast on the last observation for up to two")
    print("consecutive gaps — mirroring the AV confirmation tracker — so a")
    print("lossy feed degrades the numbers gradually instead of voiding the")
    print("consecutive-frame rule outright.")


if __name__ == "__main__":
    main()
