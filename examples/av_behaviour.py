#!/usr/bin/env python
"""Behavioural impact: what the decals do to the *vehicle*, not the model.

Runs the full AV perception stack — detector → 3-consecutive-frame
confirmation → rule planner — over a clean approach video and over the
same video with decals deployed, then compares the per-frame driving
actions. This is the paper's conclusion ("erroneous responses") made
measurable.

Usage::

    python examples/av_behaviour.py [--profile smoke|reduced] [--physical]
"""

import argparse

import numpy as np

from repro.av import Action, AvPipeline
from repro.experiments import Workbench
from repro.scene import challenge_trajectory, render_run


def run_video(pipeline, scenario, decals, physical, seed=3):
    poses = challenge_trajectory("speed/slow")
    frames = render_run(scenario, poses, np.random.default_rng(seed),
                        decals=decals, physical=physical)
    traces = pipeline.run([f.image for f in frames])
    return frames, traces


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("smoke", "reduced"), default="smoke")
    parser.add_argument("--physical", action="store_true")
    args = parser.parse_args()

    factory = Workbench.smoke if args.profile == "smoke" else Workbench.reduced
    bench = factory(seed=0)
    detector = bench.detector()
    scenario = bench.scenario()
    attack = bench.train_attack()
    pipeline = AvPipeline(detector, confirm_frames=3)

    _, clean_traces = run_video(pipeline, scenario, None, args.physical)
    decals = attack.deploy(physical=args.physical, rng=np.random.default_rng(7))
    _, attacked_traces = run_video(pipeline, scenario, decals, args.physical)

    print(f"{'frame':>5}  {'clean action':>14}  {'attacked action':>16}")
    changed = 0
    for index, (clean, attacked) in enumerate(zip(clean_traces, attacked_traces)):
        marker = "  <-- changed" if clean.decision.action != attacked.decision.action else ""
        if marker:
            changed += 1
        print(f"{index:5d}  {clean.decision.action.value:>14}  "
              f"{attacked.decision.action.value:>16}{marker}")

    print()
    print("clean action histogram:   ",
          {a.value: n for a, n in AvPipeline.action_counts(clean_traces).items() if n})
    print("attacked action histogram:",
          {a.value: n for a, n in AvPipeline.action_counts(attacked_traces).items() if n})
    print(f"{changed} of {len(clean_traces)} frames changed the vehicle's action.")


if __name__ == "__main__":
    main()
