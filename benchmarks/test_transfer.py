"""White-box vs. transfer (extension, DESIGN.md §6).

The paper attacks in the white-box setting only. This bench measures how
much of the attack survives against an *independently trained* detector
(same architecture and data distribution, different initialization seed) —
the first question a defender asks. Expected shape: the white-box PWC is
an upper bound; transfer retains only part of it.
"""

import numpy as np
import pytest

from repro.experiments import Workbench


@pytest.fixture(scope="module")
def transfer_setup(workbench):
    attack = workbench.train_attack()
    victim = workbench.detector()
    # An independently seeded detector over the same dataset distribution.
    surrogate_bench = Workbench(workbench.profile, seed=workbench.seed + 1,
                                cache_dir=workbench.cache_dir)
    transfer_detector = surrogate_bench.detector()
    return workbench, attack, victim, transfer_detector


def _pwc_mean(results):
    return float(np.mean([r.pwc for r in results.values()]))


def test_transfer_report(transfer_setup, benchmark):
    from repro.eval import evaluate_challenges

    workbench, attack, victim, transfer_detector = transfer_setup
    challenges = ("rotation/fix", "speed/slow", "angle/0")
    scenario = workbench.scenario()

    whitebox = evaluate_challenges(
        victim, scenario, artifact=attack, challenges=challenges,
        target_class=attack.config.target_class, physical=False, n_runs=3,
    )
    transfer = evaluate_challenges(
        transfer_detector, scenario, artifact=attack, challenges=challenges,
        target_class=attack.config.target_class, physical=False, n_runs=3,
    )
    print()
    print("White-box vs transfer (digital PWC):")
    for challenge in challenges:
        print(f"  {challenge:15s} white-box {whitebox[challenge].cell():>9} "
              f"| transfer {transfer[challenge].cell():>9}")

    benchmark(
        lambda: evaluate_challenges(
            transfer_detector, scenario, artifact=attack,
            challenges=("rotation/fix",), physical=False, n_runs=1,
        )
    )

    # Shape assertion: white-box is at least as strong as transfer overall.
    assert _pwc_mean(whitebox) >= _pwc_mean(transfer) - 10.0
