"""Shared benchmark fixtures.

All benchmarks share one :class:`~repro.experiments.Workbench` (session
scope) whose artifacts — the fine-tuned detector and every trained attack —
are cached under ``.repro_cache`` in the repository root. The first full
run therefore trains everything; re-runs only re-evaluate.

Environment knobs:

* ``REPRO_PROFILE`` — ``reduced`` (default) or ``smoke`` for a quick pass.
* ``REPRO_CACHE_DIR`` — overrides the artifact cache location.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import Workbench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _make_workbench() -> Workbench:
    cache_dir = os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(REPO_ROOT, ".repro_cache")
    )
    profile = os.environ.get("REPRO_PROFILE", "reduced")
    if profile == "smoke":
        return Workbench.smoke(seed=0, cache_dir=cache_dir)
    if profile == "reduced":
        return Workbench.reduced(seed=0, cache_dir=cache_dir)
    raise ValueError(f"unknown REPRO_PROFILE {profile!r}")


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    bench = _make_workbench()
    bench.detector()  # train or load once up front
    return bench


@pytest.fixture(scope="session")
def artifacts_dir() -> str:
    path = os.path.join(REPO_ROOT, "artifacts")
    os.makedirs(path, exist_ok=True)
    return path
