"""Table I — real-world comparison under the three challenges.

Rows: w/o attack, ours (w/ 3 consecutive frames), ours (w/o consecutive
frames), Sava et al. [34]. Columns: rotation {fix, slight}, speed {slow,
normal, fast}, angles {−15°, 0°, +15°}. "Real-world" = simulator + printer
model + capture degradation (DESIGN.md §2).

Paper reference values (PWC / CWC):
  w/o attack:      0% everywhere, no CWC.
  ours (w/ 3cf):   92/80 | 78/45/26 | 70/78/74, CWC everywhere.
  ours (w/o 3cf):  62/56 | 53/38/20 | 58/53/53, CWC except fast.
  [34]:            46/38 | 34/19/10 | 22/34/30, CWC on a minority.

We verify the orderings the paper argues, not the absolute numbers.
"""

import numpy as np
import pytest

from repro.eval import DEFAULT_CHALLENGES, format_table


def _mean_pwc(results):
    return float(np.mean([r.pwc for r in results.values()]))


@pytest.fixture(scope="module")
def table1_rows(workbench):
    rows = {}
    rows["w/o attack"] = workbench.evaluate(None, physical=True)
    ours = workbench.train_attack()
    rows["ours (w/ 3 consec)"] = workbench.evaluate(ours, physical=True)
    no_consec = workbench.train_attack(workbench.attack_config(consecutive=False))
    rows["ours (w/o 3 consec)"] = workbench.evaluate(no_consec, physical=True)
    sava = workbench.train_baseline()
    rows["Sava et al. [34]"] = workbench.evaluate(sava, physical=True)
    return rows


def test_table1_report(table1_rows, benchmark, workbench):
    """Regenerate Table I and benchmark the evaluation protocol."""
    print()
    print(format_table("Table I — real-world environment (PWC / CWC)",
                       table1_rows, DEFAULT_CHALLENGES))

    attack = workbench.train_attack()
    benchmark(
        lambda: workbench.evaluate(
            attack, challenges=("rotation/fix",), physical=True, n_runs=1
        )
    )


def test_no_attack_row_is_clean(table1_rows):
    """The clean detector almost never emits the attacker's target class."""
    for result in table1_rows["w/o attack"].values():
        assert result.pwc <= 15.0
        assert not result.cwc


def test_ours_beats_no_consecutive_on_average(table1_rows):
    """Consecutive-frame batches help in the dynamic evaluation (§IV-B)."""
    ours = _mean_pwc(table1_rows["ours (w/ 3 consec)"])
    ablated = _mean_pwc(table1_rows["ours (w/o 3 consec)"])
    assert ours >= ablated - 5.0  # allow small seed noise, require no collapse


def test_ours_beats_sava_baseline(table1_rows):
    """The monochrome decal survives the physical gap; [34] does not."""
    ours = _mean_pwc(table1_rows["ours (w/ 3 consec)"])
    sava = _mean_pwc(table1_rows["Sava et al. [34]"])
    assert ours > sava


def test_attack_effective_somewhere(table1_rows):
    """The attack produces substantial wrong-class rates in at least some
    challenges (the paper's headline claim)."""
    best = max(r.pwc for r in table1_rows["ours (w/ 3 consec)"].values())
    assert best >= 30.0
