"""Figures 2-8 — the paper's visual artifacts, regenerated as image files.

Each test renders the corresponding figure's content into ``artifacts/``
(viewable PPM/PGM images plus an ASCII preview in the test output) and
asserts the structural properties the figure is meant to show.

* Fig. 2 — a training batch: three consecutive frames with decals at
  different rotation angles.
* Fig. 3 — the different-angle camera setting (left / center / right).
* Fig. 4 — digital vs. simulated attack frames (clean environment).
* Fig. 5 — digital vs. real-world attack frames (printed + degraded).
* Fig. 6 — decal layouts for N ∈ {2, 4, 6, 8}.
* Fig. 7 — generated decals for the four shapes.
* Fig. 8 — decals at k ∈ {20, 40, 60, 80}.
"""

import os

import numpy as np
import pytest

from repro.eot import EOTPipeline
from repro.nn import Tensor
from repro.patch import (
    apply_patches,
    placement_offsets,
    shape_image,
    soft_background_mask,
)
from repro.scene import challenge_trajectory, render_frame, render_run
from repro.scene.video import sample_training_frames
from repro.utils import ascii_preview, save_image


def _save(artifacts_dir, name, image):
    path = os.path.join(artifacts_dir, name)
    save_image(image, path)
    return path


class TestFig2BatchSamples:
    def test_three_consecutive_frames_with_rotated_decals(
        self, workbench, artifacts_dir, benchmark
    ):
        scenario = workbench.scenario()
        rng = np.random.default_rng(2)
        frames = sample_training_frames(
            scenario, rng, 3, placement_offsets(4), 1.5,
            consecutive=True, group=3, degrade_fraction=0.0,
        )
        pipeline = EOTPipeline.with_tricks(frozenset({"rotation"}))
        patch = Tensor(shape_image("star", 40)[None])
        rendered = []
        for i, frame in enumerate(frames):
            patches, alphas = [], []
            for _ in frame.placements:
                transformed, _, _ = pipeline.sample_and_apply(patch, rng)
                patches.append(transformed)
                alphas.append(soft_background_mask(transformed))
            out = benchmark.pedantic(
                apply_patches, args=(frame.image, patches, alphas, frame.placements),
                iterations=1, rounds=1,
            ) if i == 0 else apply_patches(frame.image, patches, alphas, frame.placements)
            image = out.data[0]
            rendered.append(image)
            _save(artifacts_dir, f"fig2_batch_frame{i}.ppm", image)
        print()
        print("Fig. 2 — batch sample (frame 0):")
        print(ascii_preview(rendered[0], 48))
        # Consecutive frames: object grows (camera approaches).
        assert frames[0].pose.distance > frames[2].pose.distance
        # Decals visibly change the frames.
        clean = frames[0].image
        assert not np.allclose(rendered[0], clean)


class TestFig3AngleSetting:
    def test_left_center_right_positions(self, workbench, artifacts_dir, benchmark):
        scenario = workbench.scenario()
        columns = {}
        for setting in ("-15", "0", "+15"):
            poses = challenge_trajectory(f"angle/{setting}")
            frame = benchmark.pedantic(
                render_frame, args=(scenario, poses[len(poses) // 2],
                                    np.random.default_rng(3)),
                iterations=1, rounds=1,
            ) if setting == "0" else render_frame(
                scenario, poses[len(poses) // 2], np.random.default_rng(3)
            )
            assert frame.target_box_xywh is not None
            columns[setting] = float(frame.target_box_xywh[0])
            _save(artifacts_dir, f"fig3_angle_{setting}.ppm", frame.image)
        assert columns["-15"] < columns["0"] < columns["+15"]


class TestFig4SimulatedPair:
    def test_digital_and_simulated_frames(self, workbench, artifacts_dir):
        attack = workbench.train_attack()
        scenario = workbench.scenario()
        poses = challenge_trajectory("speed/slow")
        rng = np.random.default_rng(4)
        digital = render_frame(scenario, poses[-1], rng,
                               decals=attack.deploy(physical=False))
        _save(artifacts_dir, "fig4_digital.ppm", digital.image)
        simulated = render_frame(scenario, poses[-1], rng,
                                 decals=attack.deploy(physical=False))
        _save(artifacts_dir, "fig4_simulated.ppm", simulated.image)
        print()
        print("Fig. 4 — attack frame (digital):")
        print(ascii_preview(digital.image, 48))
        assert digital.target_box_xywh is not None


class TestFig5RealWorldPair:
    def test_printed_decals_differ_from_digital(self, workbench, artifacts_dir):
        attack = workbench.train_attack()
        scenario = workbench.scenario()
        poses = challenge_trajectory("speed/slow")
        digital = render_frame(scenario, poses[-1], np.random.default_rng(5),
                               decals=attack.deploy(physical=False))
        physical = render_frame(
            scenario, poses[-1], np.random.default_rng(5),
            decals=attack.deploy(physical=True, rng=np.random.default_rng(6)),
            physical=True,
        )
        _save(artifacts_dir, "fig5_digital.ppm", digital.image)
        _save(artifacts_dir, "fig5_physical.ppm", physical.image)
        assert not np.allclose(digital.image, physical.image)


class TestFig6Layouts:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_layout_renders_n_decals(self, workbench, artifacts_dir, n):
        scenario = workbench.scenario()
        rng = np.random.default_rng(6)
        frames = sample_training_frames(
            scenario, rng, 1, placement_offsets(n), 1.2,
            consecutive=False, degrade_fraction=0.0,
        )
        frame = frames[0]
        assert len(frame.placements) == n
        patch = Tensor(shape_image("star", 40)[None])
        patches = [patch] * n
        alphas = [soft_background_mask(patch)] * n
        out = apply_patches(frame.image, patches, alphas, frame.placements)
        _save(artifacts_dir, f"fig6_layout_n{n}.ppm", out.data[0])

    def test_total_area_constant_across_n(self):
        from repro.patch import patch_world_size

        areas = {
            n: n * patch_world_size(60, n_patches=n, constant_total_area=True) ** 2
            for n in (2, 4, 6, 8)
        }
        reference = areas[4]
        for n, area in areas.items():
            assert area == pytest.approx(reference, rel=1e-6)


class TestFig7Shapes:
    def test_generated_patch_per_shape(self, workbench, artifacts_dir):
        from repro.gan import GanTrainConfig, PatchDiscriminator, PatchGenerator, train_gan

        previews = {}
        for shape in ("star", "circle", "square", "triangle"):
            generator = PatchGenerator(patch_size=24, latent_dim=8,
                                       base_channels=16, seed=7)
            discriminator = PatchDiscriminator(patch_size=24, seed=8)
            train_gan(generator, discriminator, shape,
                      GanTrainConfig(steps=30, batch_size=8, learning_rate=1e-3))
            patch = generator(
                Tensor(generator.sample_latent(1, np.random.default_rng(0)))
            ).data[0]
            previews[shape] = patch
            _save(artifacts_dir, f"fig7_shape_{shape}.pgm", patch)
        # Different shape priors give different decals.
        flat = [p.ravel() for p in previews.values()]
        assert not all(np.allclose(flat[0], other) for other in flat[1:])


class TestFig8Sizes:
    @pytest.mark.parametrize("k", [20, 40, 60, 80])
    def test_reference_decal_at_each_k(self, artifacts_dir, k):
        image = shape_image("star", k, np.random.default_rng(1))
        assert image.shape == (1, k, k)
        _save(artifacts_dir, f"fig8_size_k{k}.pgm", image)

    def test_world_footprint_monotone_in_k(self):
        from repro.patch import patch_world_size

        sizes = [patch_world_size(k) for k in (20, 40, 60, 80)]
        assert sizes == sorted(sizes)
