"""Table V — ablation over decal shape.

Paper: star decals dominate (78/45/26 speed, ≥70 angles, CWC everywhere);
circle worst (27/13/8); triangle and square in between. The argument is
that shapes with more corners carry more attackable structure.

At the reduced CPU profile the ablation comparisons run in the *digital*
environment: physical capture noise at this scale is large relative to the
between-configuration differences, and the paper's orderings are a
digital-attack property that the physical tables inherit (Table I carries
the physical comparison).
"""

import numpy as np
import pytest

from repro.eval import SPEED_ANGLE_CHALLENGES, format_table
from repro.patch import SHAPE_NAMES


@pytest.fixture(scope="module")
def table5_rows(workbench):
    rows = {}
    for shape in ("triangle", "circle", "star", "square"):
        attack = workbench.train_attack(workbench.attack_config(shape=shape))
        rows[shape] = workbench.evaluate(
            attack, challenges=SPEED_ANGLE_CHALLENGES, physical=False
        )
    return rows


def test_table5_report(table5_rows, benchmark, workbench):
    print()
    print(format_table("Table V — decal shapes", table5_rows,
                       SPEED_ANGLE_CHALLENGES))

    attack = workbench.train_attack(workbench.attack_config(shape="circle"))
    benchmark(
        lambda: workbench.evaluate(
            attack, challenges=("speed/normal",), physical=False, n_runs=1
        )
    )


def test_all_four_shapes_covered(table5_rows):
    assert set(table5_rows) == set(SHAPE_NAMES)


def test_star_competitive(table5_rows):
    """Star should be at or near the top (the paper's central shape claim)."""
    means = {
        shape: float(np.mean([r.pwc for r in results.values()]))
        for shape, results in table5_rows.items()
    }
    best = max(means.values())
    assert means["star"] >= best - 15.0


def test_shapes_differ(table5_rows):
    """Shape is not a no-op: the spread across shapes is measurable."""
    means = [
        float(np.mean([r.pwc for r in results.values()]))
        for results in table5_rows.values()
    ]
    assert max(means) - min(means) >= 1.0
