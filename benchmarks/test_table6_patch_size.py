"""Table VI — ablation over decal size k.

Paper: k=20 nearly no effect (PWC ≈10%, no CWC), k=60 best, k=80 worse
again because oversized decals occlude the object and suppress detection
altogether.

At the reduced CPU profile the ablation comparisons run in the *digital*
environment: physical capture noise at this scale is large relative to the
between-configuration differences, and the paper's orderings are a
digital-attack property that the physical tables inherit (Table I carries
the physical comparison).
"""

import numpy as np
import pytest

from repro.eval import SPEED_ANGLE_CHALLENGES, format_table

K_VALUES = (20, 40, 60, 80)


@pytest.fixture(scope="module")
def table6_rows(workbench):
    rows = {}
    for k in K_VALUES:
        attack = workbench.train_attack(workbench.attack_config(k=k))
        rows[f"k={k}"] = workbench.evaluate(
            attack, challenges=SPEED_ANGLE_CHALLENGES, physical=False
        )
    return rows


def _mean(results):
    return float(np.mean([r.pwc for r in results.values()]))


def test_table6_report(table6_rows, benchmark, workbench):
    print()
    print(format_table("Table VI — decal size k", table6_rows,
                       SPEED_ANGLE_CHALLENGES))

    attack = workbench.train_attack(workbench.attack_config(k=20))
    benchmark(
        lambda: workbench.evaluate(
            attack, challenges=("angle/+15",), physical=False, n_runs=1
        )
    )


def test_tiny_decals_weak(table6_rows):
    """k=20 decals are too small to matter in the paper; at 96² all decals
    are between 5 and 25 px, so the k=20 collapse only partially resolves --
    the check therefore carries a tolerance (see EXPERIMENTS.md)."""
    assert _mean(table6_rows["k=20"]) <= _mean(table6_rows["k=60"]) + 10.0


def test_k60_not_dominated_by_extremes(table6_rows):
    middle = _mean(table6_rows["k=60"])
    assert middle >= _mean(table6_rows["k=20"]) - 5.0
    assert middle >= _mean(table6_rows["k=80"]) - 10.0


def test_some_k_achieves_strong_attack(table6_rows):
    best = max(_mean(results) for results in table6_rows.values())
    assert best >= 8.0
