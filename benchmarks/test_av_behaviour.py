"""Behavioural ablation (extension, DESIGN.md §6).

Not a paper table: runs the full AV stack — detector → 3-consecutive-frame
confirmation → rule planner — on clean and attacked approach videos and
compares the vehicle's actions. This quantifies the paper's conclusion
("erroneous responses") beyond PWC/CWC.
"""

import numpy as np
import pytest

from repro.av import Action, AvPipeline
from repro.scene import challenge_trajectory, render_run


@pytest.fixture(scope="module")
def traces(workbench):
    detector = workbench.detector()
    scenario = workbench.scenario()
    attack = workbench.train_attack()
    pipeline = AvPipeline(detector, confirm_frames=3)
    poses = challenge_trajectory("speed/slow")

    def run(decals):
        frames = render_run(scenario, poses, np.random.default_rng(3),
                            decals=decals)
        return pipeline.run([f.image for f in frames])

    clean = run(None)
    attacked = run(attack.deploy(physical=False))
    return clean, attacked


def test_behaviour_report(traces, benchmark, workbench):
    clean, attacked = traces
    clean_counts = AvPipeline.action_counts(clean)
    attacked_counts = AvPipeline.action_counts(attacked)
    print()
    print("AV behaviour over speed/slow approach (frames per action):")
    print("  clean   :", {a.value: n for a, n in clean_counts.items() if n})
    print("  attacked:", {a.value: n for a, n in attacked_counts.items() if n})

    detector = workbench.detector()
    pipeline = AvPipeline(detector, confirm_frames=3)
    frame = np.random.default_rng(0).random(
        (3, detector.config.input_size, detector.config.input_size)
    ).astype(np.float32)
    benchmark(lambda: pipeline.step(frame))


def test_clean_run_follows_arrow(traces):
    """The clean vehicle should confirm the lane arrow and follow it."""
    clean, _ = traces
    actions = [t.decision.action for t in clean]
    assert Action.FOLLOW_ARROW in actions


def test_attack_perturbs_behaviour(traces):
    """Decals change at least some frames' driving action."""
    clean, attacked = traces
    changed = sum(
        1 for c, a in zip(clean, attacked)
        if c.decision.action != a.decision.action
    )
    assert changed >= 1
