"""Table II — the simulated (clean) environment.

The paper's "bedroom mock-up": no printer error, no capture degradation.
N=4, k=60, star decals. Paper: PWC 100/100 | 100/87/40 | 64/87/68 with CWC
everywhere except fast. We verify the digital environment is strictly
easier than the physical one and that speed degrades PWC monotonically.
"""

import numpy as np
import pytest

from repro.eval import DEFAULT_CHALLENGES, format_table


@pytest.fixture(scope="module")
def table2_results(workbench):
    attack = workbench.train_attack()  # N=4, k=60 default — paper's Table II config
    digital = workbench.evaluate(attack, physical=False)
    physical = workbench.evaluate(attack, physical=True)
    return digital, physical


def test_table2_report(table2_results, benchmark, workbench):
    digital, physical = table2_results
    print()
    print(format_table(
        "Table II — simulated environment (digital, PWC / CWC)",
        {"ours (N=4, k=60)": digital}, DEFAULT_CHALLENGES,
    ))

    attack = workbench.train_attack()
    benchmark(
        lambda: workbench.evaluate(
            attack, challenges=("speed/fast",), physical=False, n_runs=1
        )
    )


def test_simulated_no_harder_than_physical(table2_results):
    digital, physical = table2_results
    digital_mean = np.mean([r.pwc for r in digital.values()])
    physical_mean = np.mean([r.pwc for r in physical.values()])
    assert digital_mean >= physical_mean - 5.0


def test_speed_degrades_pwc(table2_results):
    """The paper's trend is slow ≥ fast; at reduced scale the per-run
    variance (few frames per video) allows small inversions, so the check
    carries a tolerance."""
    digital, _ = table2_results
    assert digital["speed/slow"].pwc >= digital["speed/fast"].pwc - 15.0


def test_attack_strong_in_simulation(table2_results):
    digital, _ = table2_results
    best = max(r.pwc for r in digital.values())
    assert best >= 20.0
