"""Component performance benchmarks.

Not a paper table — these quantify the cost of each pipeline stage on the
numpy stack so profile regressions are visible: detector inference, the
differentiable EOT chain, patch compositing, scene rendering and the
physical degradation models.
"""

import numpy as np
import pytest

from repro.detection import TinyYolo, detections_from_outputs, reduced_config
from repro.eot import EOTPipeline
from repro.nn import Tensor, no_grad
from repro.patch import apply_patches, placement_offsets, shape_image, soft_background_mask
from repro.patch.apply import PixelPlacement
from repro.scene import Camera, RoadScene, SceneObject, camera_degrade, print_patch, render_scene


@pytest.fixture(scope="module")
def model():
    return TinyYolo(reduced_config(input_size=96, width_multiplier=0.25), seed=0)


def test_detector_forward(model, benchmark):
    image = Tensor(np.random.default_rng(0).random((1, 3, 96, 96)).astype(np.float32))

    def run():
        with no_grad():
            return model(image)

    benchmark(run)


def test_detector_inference_with_nms(model, benchmark):
    image = Tensor(np.random.default_rng(0).random((1, 3, 96, 96)).astype(np.float32))

    def run():
        with no_grad():
            outputs = model(image)
        return detections_from_outputs(outputs, model.config, conf_threshold=0.1)

    benchmark(run)


def test_detector_backward(model, benchmark):
    def run():
        image = Tensor(
            np.random.default_rng(0).random((1, 3, 96, 96)).astype(np.float32),
            requires_grad=True,
        )
        coarse, fine = model(image)
        (coarse.sum() + fine.sum()).backward()
        return image.grad

    benchmark(run)


def test_eot_chain(benchmark):
    pipeline = EOTPipeline.with_tricks(
        frozenset({"resize", "rotation", "gamma", "perspective"})
    )
    patch = Tensor(shape_image("star", 60)[None], requires_grad=True)
    rng = np.random.default_rng(0)
    benchmark(lambda: pipeline.sample_and_apply(patch, rng))


def test_patch_compositing(benchmark):
    frame = np.full((3, 96, 96), 0.4, dtype=np.float32)
    patch = Tensor(shape_image("star", 60)[None], requires_grad=True)
    alpha = soft_background_mask(patch)
    placements = [PixelPlacement(60 + i, 30 + 10 * i, 14, height_px=10)
                  for i in range(4)]
    benchmark(lambda: apply_patches(frame, [patch] * 4, [alpha] * 4, placements))


def test_scene_rendering(benchmark):
    camera = Camera(image_size=96)
    scene = RoadScene(objects=[SceneObject("mark", z=7.0)])
    rng = np.random.default_rng(0)
    benchmark(lambda: render_scene(scene, camera, rng))


def test_print_model(benchmark):
    patch = np.random.default_rng(0).random((3, 60, 60)).astype(np.float32)
    rng = np.random.default_rng(1)
    benchmark(lambda: print_patch(patch, rng))


def test_capture_model(benchmark):
    frame = np.random.default_rng(0).random((3, 96, 96)).astype(np.float32)
    rng = np.random.default_rng(1)
    benchmark(lambda: camera_degrade(frame, rng, speed_kmh=25.0))
