"""Table IV — ablation over EOT trick subsets.

Tricks: (1) resize, (2) rotation, (3) brightness, (4) gamma,
(5) perspective. Paper rows: 1235, 1245 (chosen), 2345, 1345, 1234, all.
Key findings: dropping perspective (row 1234) hurts most; gamma (4) beats
brightness (3).

At the reduced CPU profile the ablation comparisons run in the *digital*
environment: physical capture noise at this scale is large relative to the
between-configuration differences, and the paper's orderings are a
digital-attack property that the physical tables inherit (Table I carries
the physical comparison).
"""

import numpy as np
import pytest

from repro.eot import tricks_from_numbers
from repro.eval import SPEED_ANGLE_CHALLENGES, format_table

COMBOS = {
    "(1)+(2)+(3)+(5)": (1, 2, 3, 5),
    "(1)+(2)+(4)+(5)": (1, 2, 4, 5),
    "(2)+(3)+(4)+(5)": (2, 3, 4, 5),
    "(1)+(3)+(4)+(5)": (1, 3, 4, 5),
    "(1)+(2)+(3)+(4)": (1, 2, 3, 4),
    "All": (1, 2, 3, 4, 5),
}


@pytest.fixture(scope="module")
def table4_rows(workbench):
    rows = {}
    for label, numbers in COMBOS.items():
        attack = workbench.train_attack(
            workbench.attack_config(tricks=tricks_from_numbers(numbers))
        )
        rows[label] = workbench.evaluate(
            attack, challenges=SPEED_ANGLE_CHALLENGES, physical=False
        )
    return rows


def _mean(results):
    return float(np.mean([r.pwc for r in results.values()]))


def test_table4_report(table4_rows, benchmark, workbench):
    print()
    print(format_table("Table IV — EOT trick combinations", table4_rows,
                       SPEED_ANGLE_CHALLENGES))

    attack = workbench.train_attack()
    benchmark(
        lambda: workbench.evaluate(
            attack, challenges=("speed/slow",), physical=False, n_runs=1
        )
    )


def test_dropping_perspective_hurts_most(table4_rows):
    """Row (1)(2)(3)(4) — no perspective — should be the weakest subset,
    with clear margin to the paper's chosen subset."""
    without_perspective = _mean(table4_rows["(1)+(2)+(3)+(4)"])
    chosen = _mean(table4_rows["(1)+(2)+(4)+(5)"])
    others = [
        _mean(table4_rows[label])
        for label in table4_rows
        if label != "(1)+(2)+(3)+(4)"
    ]
    assert without_perspective <= max(others)
    assert chosen >= without_perspective - 10.0


def test_all_subsets_produce_effect(table4_rows):
    for label, results in table4_rows.items():
        assert max(r.pwc for r in results.values()) > 0.0, f"{label} dead"
