"""Table III — ablation over the number of decals N at constant total area.

Paper: N ∈ {2, 4, 6, 8}; N=4/6 perform best (PWC ≥70% at angles), N=2 and
N=8 lose several points; fast speed achieves CWC only at N=4.

At the reduced CPU profile the ablation comparisons run in the *digital*
environment: physical capture noise at this scale is large relative to the
between-configuration differences, and the paper's orderings are a
digital-attack property that the physical tables inherit (Table I carries
the physical comparison).
"""

import numpy as np
import pytest

from repro.eval import SPEED_ANGLE_CHALLENGES, format_table

N_VALUES = (2, 4, 6, 8)


@pytest.fixture(scope="module")
def table3_rows(workbench):
    rows = {}
    for n in N_VALUES:
        attack = workbench.train_attack(
            workbench.attack_config(n_patches=n, constant_total_area=True)
        )
        rows[f"N={n}"] = workbench.evaluate(
            attack, challenges=SPEED_ANGLE_CHALLENGES, physical=False
        )
    return rows


def test_table3_report(table3_rows, benchmark, workbench):
    print()
    print(format_table("Table III — number of decals N (constant total area)",
                       table3_rows, SPEED_ANGLE_CHALLENGES))

    attack = workbench.train_attack(
        workbench.attack_config(n_patches=2, constant_total_area=True)
    )
    benchmark(
        lambda: workbench.evaluate(
            attack, challenges=("angle/0",), physical=False, n_runs=1
        )
    )


def test_every_n_produces_some_effect(table3_rows):
    for label, results in table3_rows.items():
        best = max(r.pwc for r in results.values())
        assert best > 0.0, f"{label} completely ineffective"


def test_middle_n_not_dominated(table3_rows):
    """The paper's finding: a moderate N (4 or 6) is at least as good as
    the extremes (2 or 8) at constant total area."""
    def mean_pwc(label):
        return float(np.mean([r.pwc for r in table3_rows[label].values()]))

    middle = max(mean_pwc("N=4"), mean_pwc("N=6"))
    extremes = max(mean_pwc("N=2"), mean_pwc("N=8"))
    assert middle >= extremes - 12.0
