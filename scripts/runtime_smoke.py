#!/usr/bin/env python
"""Crash-resume smoke test for the fault-tolerant runtime (DESIGN.md §7).

The parent launches a child process that trains a few-step decal attack
with per-step checkpointing, waits until at least one mid-run snapshot is
on disk, then SIGKILLs the child — the harshest crash there is, no atexit,
no signal handler. It then resumes the same run in-process from the
snapshot and asserts the attack completes and cleans up its checkpoint.

Run from the repo root:

    PYTHONPATH=src python scripts/runtime_smoke.py
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

ATTACK_STEPS = 5
KILL_AFTER_STEP = 2
CHILD_TIMEOUT_S = 300.0


def _build_run(checkpoint_path: str):
    from repro.attack.config import AttackConfig
    from repro.attack.trainer import train_patch_attack
    from repro.detection.config import reduced_config
    from repro.detection.model import TinyYolo
    from repro.runtime import RuntimeConfig
    from repro.scene.video import AttackScenario
    from repro.utils.logging import TrainLog

    model = TinyYolo(reduced_config(input_size=64, width_multiplier=0.25), seed=0)
    scenario = AttackScenario(image_size=64)
    config = AttackConfig(steps=ATTACK_STEPS, warmup_steps=2, batch_frames=6,
                          frame_pool=6, gan_batch=4, k=20)
    runtime = RuntimeConfig(checkpoint_path=checkpoint_path, checkpoint_interval=1)
    # echo=True: TrainLog flushes the stream after every line, so the
    # SIGKILLed child still leaves every step it reached on stdout.
    log = TrainLog("smoke", echo=True)
    return lambda: train_patch_attack(model, scenario, config, log=log,
                                      runtime=runtime), log


def child_main(checkpoint_path: str) -> int:
    run, _ = _build_run(checkpoint_path)
    run()
    return 0


def parent_main(checkpoint_path: str) -> int:
    from repro.runtime import CheckpointManager

    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__),
         "--child", "--checkpoint", checkpoint_path],
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    manager = CheckpointManager(checkpoint_path, interval=1)
    deadline = time.monotonic() + CHILD_TIMEOUT_S
    killed = False
    try:
        while time.monotonic() < deadline:
            if child.poll() is not None:
                print("FAIL: child finished before it could be killed "
                      f"(exit {child.returncode})")
                return 1
            snapshot = manager.load()
            if snapshot is not None and snapshot.step >= KILL_AFTER_STEP:
                child.send_signal(signal.SIGKILL)
                child.wait()
                killed = True
                print(f"killed child mid-run at snapshot step {snapshot.step}")
                break
            time.sleep(0.2)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    if not killed:
        print("FAIL: no mid-run snapshot appeared before the timeout")
        return 1

    run, log = _build_run(checkpoint_path)
    result = run()
    restores = log.events_of("checkpoint_restore")
    assert restores, "resume did not restore from the on-disk snapshot"
    assert restores[0]["step"] >= KILL_AFTER_STEP
    assert np.isfinite(result.patch).all(), "resumed patch is not finite"
    assert not os.path.exists(checkpoint_path), \
        "checkpoint not cleaned up after successful resume"
    print(f"resumed from step {restores[0]['step']}, "
          f"completed {ATTACK_STEPS}-step attack, checkpoint cleaned up")
    print("PASS")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--checkpoint", default=None,
                        help="checkpoint path (defaults to a temp file)")
    args = parser.parse_args()

    if args.child:
        return child_main(args.checkpoint)

    checkpoint_path = args.checkpoint
    if checkpoint_path is None:
        fd, checkpoint_path = tempfile.mkstemp(suffix=".ckpt.npz")
        os.close(fd)
        os.unlink(checkpoint_path)
    try:
        return parent_main(checkpoint_path)
    finally:
        if os.path.exists(checkpoint_path):
            os.unlink(checkpoint_path)


if __name__ == "__main__":
    sys.exit(main())
