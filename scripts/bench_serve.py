#!/usr/bin/env python
"""Load-test the detection server and emit ``BENCH_serve.json``.

Drives :class:`repro.serve.DetectionServer` (DESIGN.md §11) through up
to three phases:

* **steady** — N simulated closed-loop clients, one session each,
  streaming frames as fast as their responses return; reports p50/p99
  request latency and sustained frames/sec across all clients.
* **overload** — an open-loop burst of several times ``queue_capacity``
  into a deliberately tiny server; asserts the robustness contract:
  queue depth stays ≤ capacity (bounded by construction) and the
  overflow is *shed* with explicit counts, never queued unboundedly.
* **chaos** (``--chaos``) — the steady workload with a worker SIGKILL'd
  mid-run; asserts every admitted request resolves exactly once and the
  pool respawned the dead slot.

Re-run with ``--check`` in CI to gate a change against the committed
report (generous tolerance: serving numbers on a loaded 1-core box are
noisier than the in-process hot path).

Usage::

    PYTHONPATH=src python scripts/bench_serve.py            # write report
    PYTHONPATH=src python scripts/bench_serve.py --chaos    # + kill a worker
    PYTHONPATH=src python scripts/bench_serve.py --check    # regression gate
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
import uuid

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.detection import TinyYolo, reduced_config  # noqa: E402
from repro.obs import (  # noqa: E402
    MANIFEST_SCHEMA_VERSION,
    Run,
    append_jsonl,
    config_digest,
    host_info,
)
from repro.obs.history import check_trend  # noqa: E402
from repro.obs.live import LiveConfig  # noqa: E402
from repro.perf import load_report, write_report  # noqa: E402
from repro.serve import DetectionServer, RequestStatus, ServeConfig  # noqa: E402

DEFAULT_REPORT = os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")
DEFAULT_HISTORY = os.path.join(os.path.dirname(__file__), "..", "BENCH_history.jsonl")
#: --check tolerance: sustained fps may drop (and p99 latency may grow)
#: by this fraction before the gate fails. Serving involves process
#: scheduling, so the band is wider than bench_hotpath's 20%.
REGRESSION_TOLERANCE = 0.35


def bench_config(args: argparse.Namespace) -> dict:
    """Benchmark-relevant flags only (shared by report + obs manifest)."""
    return {
        "clients": args.clients,
        "frames_per_client": args.frames_per_client,
        "workers": args.workers,
        "max_batch": args.max_batch,
        "batch_window_ms": round(args.batch_window_s * 1e3, 3),
        "queue_capacity": args.queue_capacity,
        "input_size": args.input_size,
        "width_multiplier": args.width,
        "chaos": bool(args.chaos),
        "lowered": True,
        "seed": args.seed,
    }


def bench_manifest(config: dict, run_id: str) -> dict:
    """Provenance stamp for one benchmark run (DESIGN.md §9)."""
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "run_id": run_id,
        "config_digest": config_digest(config),
        "seeds": {"frames": config["seed"], "detector": config["seed"]},
        "host": host_info(),
    }


def build_detector(args: argparse.Namespace) -> TinyYolo:
    detector = TinyYolo(
        reduced_config(input_size=args.input_size,
                       width_multiplier=args.width),
        seed=args.seed,
    )
    detector.eval()
    return detector


def make_frames(args: argparse.Namespace, count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    return [rng.random((3, args.input_size, args.input_size)).astype(np.float32)
            for _ in range(count)]


def serve_config(args: argparse.Namespace, **overrides) -> ServeConfig:
    fields = dict(
        workers=args.workers,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_s,
        queue_capacity=args.queue_capacity,
        max_sessions=max(args.clients, 4),
        deadline_s=60.0,
        task_timeout_s=30.0,
        # Serve on the lowered (BN-folded, fused, pre-planned) forward —
        # parity-gated by pytest -m lowered (DESIGN.md §13); closes the
        # ROADMAP item from PR 8.
        lowered=True,
    )
    fields.update(overrides)
    return ServeConfig(**fields)


def _kill_one_worker(server: DetectionServer, wait_s: float = 10.0) -> bool:
    deadline = time.monotonic() + wait_s
    while time.monotonic() < deadline:
        pids = server.worker_pids()
        if pids:
            os.kill(pids[0], signal.SIGKILL)
            return True
        time.sleep(0.02)
    return False


def run_closed_loop(args: argparse.Namespace, server: DetectionServer,
                    chaos: bool = False) -> dict:
    """N client threads, each submit→await→submit over its own session.

    Returns the phase payload; raises SystemExit if any delivery
    guarantee is violated (a benchmark must not report numbers for a
    server that dropped or duplicated work).
    """
    results = [None] * args.clients
    errors: list = []
    kill_done = threading.Event()

    def client(index: int) -> None:
        frames = make_frames(args, args.frames_per_client,
                             seed=args.seed + 1000 + index)
        try:
            session = server.open_session(f"client-{index}")
            responses = []
            for frame_index, frame in enumerate(frames):
                if (chaos and index == 0
                        and frame_index == args.frames_per_client // 3):
                    kill_done.wait(timeout=15.0)
                responses.append(server.submit(session, frame).result(timeout=120))
            results[index] = responses
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((index, repr(exc)))

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(args.clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    if chaos:
        if not _kill_one_worker(server):
            raise SystemExit("FATAL: chaos phase found no live worker to kill")
        kill_done.set()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - start
    if errors:
        raise SystemExit(f"FATAL: client threads errored: {errors}")

    # Exactly-once audit: every client saw each of its seqs once, with a
    # terminal status.
    statuses: dict = {}
    latencies = []
    for index, responses in enumerate(results):
        if responses is None:
            raise SystemExit(f"FATAL: client {index} never completed")
        seqs = sorted(resp.seq for resp in responses)
        if seqs != list(range(args.frames_per_client)):
            raise SystemExit(
                f"FATAL: client {index} responses dropped/duplicated: {seqs}")
        for resp in responses:
            statuses[resp.status] = statuses.get(resp.status, 0) + 1
            if resp.status == RequestStatus.OK:
                latencies.append(resp.latency_s)
    total = args.clients * args.frames_per_client
    if statuses.get(RequestStatus.OK, 0) != total:
        raise SystemExit(
            f"FATAL: expected {total} ok responses, got {statuses}")
    latencies.sort()
    return {
        "clients": args.clients,
        "requests": total,
        "statuses": statuses,
        "wall_seconds": round(wall, 3),
        "sustained_fps": round(total / wall, 2),
        "latency_p50_ms": round(1e3 * float(np.percentile(latencies, 50)), 2),
        "latency_p99_ms": round(1e3 * float(np.percentile(latencies, 99)), 2),
    }


def run_overload(args: argparse.Namespace) -> dict:
    """Open-loop burst into a tiny server: the bounded-shed contract.

    Runs in-process (``workers=0``) so the drain rate — and therefore a
    guaranteed overflow — doesn't depend on pool warm-up timing.
    """
    capacity = 8
    detector = build_detector(args)
    config = serve_config(args, workers=0, queue_capacity=capacity,
                          batch_window_s=0.05, max_sessions=8)
    server = DetectionServer(detector, config)
    burst = capacity * 8
    try:
        session = server.open_session("burst")
        frames = make_frames(args, burst, seed=args.seed + 77)
        futures = [server.submit(session, frame) for frame in frames]
        responses = [future.result(timeout=120) for future in futures]
    finally:
        server.close()
    snap = server.snapshot()
    statuses: dict = {}
    for resp in responses:
        statuses[resp.status] = statuses.get(resp.status, 0) + 1
    if len(responses) != burst:
        raise SystemExit("FATAL: overload phase lost responses")
    if snap["max_queue_depth"] > capacity:
        raise SystemExit(
            f"FATAL: queue depth {snap['max_queue_depth']} exceeded "
            f"capacity {capacity} — admission bound violated")
    if snap["shed"] == 0:
        raise SystemExit(
            "FATAL: overload burst shed nothing — the phase is not "
            "actually overloading the server")
    return {
        "submitted": burst,
        "queue_capacity": capacity,
        "statuses": statuses,
        "shed": snap["shed"],
        "accepted": snap["accepted"],
        "max_queue_depth": snap["max_queue_depth"],
    }


def warm_up(args: argparse.Namespace, server: DetectionServer) -> None:
    """Pay the one-time costs (worker spawn, weight load, einsum path
    search) outside the measured window."""
    session = server.open_session("warmup")
    frames = make_frames(args, 2 * args.max_batch, seed=args.seed + 31337)
    for future in [server.submit(session, frame) for frame in frames]:
        future.result(timeout=120)
    server.close_session(session)


def run_benchmark(args: argparse.Namespace, obs=None) -> dict:
    detector = build_detector(args)

    live = None
    if obs is not None and args.live:
        live = LiveConfig(interval_s=args.live_interval,
                          rules=tuple(args.slo))
    server = DetectionServer(detector, serve_config(args), obs=obs,
                             live=live)
    try:
        warm_up(args, server)
        steady = run_closed_loop(args, server)
        steady_snap = server.snapshot()
    finally:
        server.close()
    steady["mean_batch_occupancy"] = round(
        steady_snap["mean_batch_occupancy"], 2)
    steady["mode"] = steady_snap["mode"]
    if steady_snap["degraded_batches"]:
        steady["degraded_batches"] = steady_snap["degraded_batches"]

    phases = {"steady": steady, "overload": run_overload(args)}

    if args.chaos:
        server = DetectionServer(detector, serve_config(args))
        try:
            warm_up(args, server)
            chaos = run_closed_loop(args, server, chaos=True)
            chaos_snap = server.snapshot()
        finally:
            server.close()
        pool = chaos_snap.get("pool") or {}
        if not pool.get("respawns"):
            raise SystemExit(
                "FATAL: chaos phase killed a worker but the pool reports "
                "no respawn")
        chaos["worker_deaths"] = pool.get("worker_deaths", 0)
        chaos["respawns"] = pool.get("respawns", 0)
        chaos["degraded_batches"] = chaos_snap["degraded_batches"]
        phases["chaos"] = chaos

    config = bench_config(args)
    run_id = obs.run_id if obs is not None else f"bench-{uuid.uuid4().hex[:12]}"
    return {
        "benchmark": "detection_serve",
        "config": config,
        "manifest": bench_manifest(config, run_id),
        # Top-level mirrors of the steady phase: what --check gates on.
        "sustained_fps": steady["sustained_fps"],
        "latency_p50_ms": steady["latency_p50_ms"],
        "latency_p99_ms": steady["latency_p99_ms"],
        "phases": phases,
    }


def check_regression(report_path: str, payload: dict) -> int:
    committed = load_report(report_path)
    fps_floor = committed["sustained_fps"] * (1.0 - REGRESSION_TOLERANCE)
    p99_ceiling = committed["latency_p99_ms"] * (1.0 + REGRESSION_TOLERANCE)
    fps = payload["sustained_fps"]
    p99 = payload["latency_p99_ms"]
    print(f"committed fps: {committed['sustained_fps']:.2f}  current: "
          f"{fps:.2f}  floor (-{REGRESSION_TOLERANCE:.0%}): {fps_floor:.2f}")
    print(f"committed p99: {committed['latency_p99_ms']:.2f} ms  current: "
          f"{p99:.2f} ms  ceiling (+{REGRESSION_TOLERANCE:.0%}): "
          f"{p99_ceiling:.2f} ms")
    status = 0
    if fps < fps_floor:
        print("FAIL: sustained fps regression exceeds tolerance")
        status = 1
    if p99 > p99_ceiling:
        print("FAIL: p99 latency regression exceeds tolerance")
        status = 1
    if status == 0:
        print("OK: within regression tolerance")
    return status


def check_history_trend(history_path: str, payload: dict) -> int:
    """Second half of the --check gate: both steady-state headline
    numbers against the robust median/MAD band of the append-only
    history — throughput must not fall below it, tail latency must not
    climb above it."""
    if not history_path or not os.path.exists(history_path):
        print("trend: no history file — pass")
        return 0
    status = 0
    for metric, direction in (("sustained_fps", "higher"),
                              ("latency_p99_ms", "lower")):
        verdict = check_trend(history_path, "detection_serve", metric,
                              payload[metric], direction=direction)
        print(verdict.describe())
        if not verdict.ok:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="simulated concurrent client streams")
    parser.add_argument("--frames-per-client", type=int, default=24)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--batch-window-s", type=float, default=0.004)
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--input-size", type=int, default=64)
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chaos", action="store_true",
                        help="also run the worker-SIGKILL phase")
    parser.add_argument("--output", default=DEFAULT_REPORT)
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="append-only JSONL perf trajectory "
                             "(empty string disables)")
    parser.add_argument("--obs-dir", default=None,
                        help="also record a repro.obs run under this "
                             "directory")
    parser.add_argument("--live", action="store_true",
                        help="attach live telemetry (requires --obs-dir): "
                             "ring-buffer series, SLO alerts, live.json — "
                             "watch with scripts/obs_dashboard.py --follow")
    parser.add_argument("--live-interval", type=float, default=0.25,
                        help="live sampler tick period (seconds)")
    parser.add_argument("--slo", action="append", default=None,
                        help="SLO rule (repeatable; replaces the default "
                             "set), e.g. 'serve.latency_p99_ms < 120'")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed report instead "
                             "of overwriting it; exit 1 past tolerance")
    args = parser.parse_args(argv)
    if args.slo is None:
        args.slo = ["serve.latency_p99_ms < 500",
                    "serve.shed_rate < 0.05",
                    "serve.respawns_per_min < 2"]
    if args.live and not args.obs_dir:
        parser.error("--live requires --obs-dir (telemetry files land in "
                     "the run directory)")

    if args.obs_dir:
        with Run(args.obs_dir, name="bench_serve",
                 config=bench_config(args), seeds={"seed": args.seed}) as obs:
            payload = run_benchmark(args, obs=obs)
    else:
        payload = run_benchmark(args)

    steady = payload["phases"]["steady"]
    print(f"steady: {steady['requests']} requests over {args.clients} "
          f"clients -> {steady['sustained_fps']:.2f} fps   "
          f"p50 {steady['latency_p50_ms']:.1f} ms   "
          f"p99 {steady['latency_p99_ms']:.1f} ms   mode={steady['mode']}")
    overload = payload["phases"]["overload"]
    print(f"overload: {overload['submitted']} burst into capacity "
          f"{overload['queue_capacity']} -> shed {overload['shed']}, "
          f"max depth {overload['max_queue_depth']}")
    if "chaos" in payload["phases"]:
        chaos = payload["phases"]["chaos"]
        print(f"chaos: worker killed mid-run -> {chaos['statuses']} "
              f"(deaths {chaos['worker_deaths']}, respawns "
              f"{chaos['respawns']})")

    status = 0
    if args.check:
        status = check_regression(args.output, payload)
        status = max(status, check_history_trend(args.history, payload))
    else:
        write_report(args.output, payload)
        print(f"wrote {os.path.abspath(args.output)}")
    if args.history:
        append_jsonl(args.history, {
            "unix_time": time.time(),
            "mode": "check" if args.check else "write",
            "status": status,
            "benchmark": "detection_serve",
            "run_id": payload["manifest"]["run_id"],
            "config_digest": payload["manifest"]["config_digest"],
            "sustained_fps": payload["sustained_fps"],
            "latency_p50_ms": payload["latency_p50_ms"],
            "latency_p99_ms": payload["latency_p99_ms"],
        })
    return status


if __name__ == "__main__":
    raise SystemExit(main())
