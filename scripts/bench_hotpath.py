#!/usr/bin/env python
"""Benchmark the detection hot path and emit ``BENCH_hotpath.json``.

Runs a seeded synthetic video through :class:`repro.av.AvPipeline` three
times:

* **per-frame** — the historical reference loop, one ``step()`` (one
  detector forward) per frame;
* **batched** — ``run(batch_size=N)``, the vectorized hot path, with a
  :class:`repro.perf.PerfRecorder` attributing forward / decode / nms /
  confirm time;
* **lowered** — the same batched run through the eval-time lowered
  detector (``TinyYolo.lower()``, DESIGN.md §13): BN folded, fused
  epilogues, pre-planned buffers.

All traces are asserted behaviourally identical (same detections,
confirmations and planner actions frame by frame) before any number is
reported, so no speedup can come from changed semantics. The JSON report
seeds the repo's perf trajectory; re-run with ``--check`` in CI to fail
on a >20% frames/sec regression against the committed report, or on the
lowered forward stage falling under its speedup floor.

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py              # write report
    PYTHONPATH=src python scripts/bench_hotpath.py --check      # regression gate
    PYTHONPATH=src python scripts/bench_hotpath.py --layers     # per-layer table
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import uuid

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.av import AvPipeline  # noqa: E402
from repro.detection import TinyYolo, reduced_config  # noqa: E402
from repro.obs import (  # noqa: E402
    MANIFEST_SCHEMA_VERSION,
    Run,
    append_jsonl,
    config_digest,
    host_info,
)
from repro.obs.history import check_trend  # noqa: E402
from repro.perf import LayerProfiler, PerfRecorder, load_report, write_report  # noqa: E402

DEFAULT_REPORT = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")
DEFAULT_HISTORY = os.path.join(os.path.dirname(__file__), "..", "BENCH_history.jsonl")
#: --check fails when batched frames/sec drops below this share of the
#: committed number.
REGRESSION_TOLERANCE = 0.20
#: --check fails when the lowered forward stage is not at least this much
#: faster than the non-lowered forward stage *of the same invocation*
#: (same machine, same load — immune to cross-host drift in the
#: committed report).
LOWERED_FORWARD_FLOOR = 1.3


def bench_config(args: argparse.Namespace) -> dict:
    """The benchmark-relevant subset of the CLI flags.

    Used for both the report payload and the :class:`repro.obs.Run`
    identity, so the digest in `BENCH_history.jsonl` and the digest in
    the run manifest agree for one invocation (output paths and other
    non-semantic flags are excluded on purpose).
    """
    return {
        "frames": args.frames,
        "batch_size": args.batch_size,
        "input_size": args.input_size,
        "width_multiplier": args.width,
        "conf_threshold": args.conf_threshold,
        "seed": args.seed,
    }


def bench_manifest(config: dict, run_id: str) -> dict:
    """Provenance stamp for one benchmark run (DESIGN.md §9).

    Same fields a :class:`repro.obs.Run` manifest leads with — run id,
    config digest, seeds, host — so `BENCH_hotpath.json` numbers can be
    attributed and compared across machines and commits.
    """
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "run_id": run_id,
        "config_digest": config_digest(config),
        "seeds": {"video": config["seed"], "detector": config["seed"]},
        "host": host_info(),
    }


def build_pipeline(args: argparse.Namespace, lowered: bool = False) -> AvPipeline:
    detector = TinyYolo(
        reduced_config(input_size=args.input_size,
                       width_multiplier=args.width),
        seed=args.seed,
    )
    return AvPipeline(detector, confirm_frames=3,
                      conf_threshold=args.conf_threshold, lowered=lowered)


def make_video(args: argparse.Namespace) -> list:
    rng = np.random.default_rng(args.seed)
    return [rng.random((3, args.input_size, args.input_size)).astype(np.float32)
            for _ in range(args.frames)]


def traces_equal(reference, batched, atol: float = 1e-3) -> bool:
    """Behavioural identity: detections, confirmations, planner actions.

    Boxes and scores are compared to within BLAS reassociation noise
    (batched and single-frame GEMMs round differently at ~1e-5 relative);
    every discrete outcome — counts, classes, track ids, planner actions —
    must match exactly.
    """
    if len(reference) != len(batched):
        return False
    for ref, bat in zip(reference, batched):
        if ref.sensor_fault != bat.sensor_fault:
            return False
        if ref.decision.action != bat.decision.action:
            return False
        if len(ref.detections) != len(bat.detections):
            return False
        for a, b in zip(ref.detections, bat.detections):
            if a.class_id != b.class_id:
                return False
            if not np.allclose(a.box_xyxy, b.box_xyxy, atol=atol, rtol=1e-5):
                return False
            if abs(a.score - b.score) > atol:
                return False
        ref_conf = [(c.track_id, c.class_id) for c in ref.confirmed]
        bat_conf = [(c.track_id, c.class_id) for c in bat.confirmed]
        if ref_conf != bat_conf:
            return False
    return True


def run_benchmark(args: argparse.Namespace, obs=None) -> dict:
    pipeline = build_pipeline(args)
    frames = make_video(args)

    # Warm up caches (decode constants, einsum paths, BLAS threads).
    pipeline.run(frames[: min(4, len(frames))], batch_size=args.batch_size)

    pipeline.reset()
    start = time.perf_counter()
    reference_traces = [pipeline.step(frame) for frame in frames]
    per_frame_seconds = time.perf_counter() - start
    per_frame_fps = len(frames) / per_frame_seconds

    perf = PerfRecorder()
    start = time.perf_counter()
    batched_traces = pipeline.run(frames, batch_size=args.batch_size, perf=perf,
                                  obs=obs)
    batched_seconds = time.perf_counter() - start
    batched_fps = len(frames) / batched_seconds

    identical = traces_equal(reference_traces, batched_traces)
    if not identical:
        raise SystemExit(
            "FATAL: batched pipeline traces diverge from the per-frame "
            "reference — refusing to report a speedup for different "
            "semantics")

    # Third phase: the same batched run through the lowered executor. The
    # lowered pipeline shares the reference detector's weights (same seed,
    # same construction) so trace identity is the lowering parity oracle.
    lowered_pipeline = build_pipeline(args, lowered=True)
    lowered_pipeline.run(frames[: min(4, len(frames))],
                         batch_size=args.batch_size)  # warm the plan cache
    lowered_perf = PerfRecorder()
    start = time.perf_counter()
    lowered_traces = lowered_pipeline.run(frames, batch_size=args.batch_size,
                                          perf=lowered_perf)
    lowered_seconds = time.perf_counter() - start
    lowered_fps = len(frames) / lowered_seconds

    lowered_identical = traces_equal(reference_traces, lowered_traces)
    if not lowered_identical:
        raise SystemExit(
            "FATAL: lowered pipeline traces diverge from the per-frame "
            "reference — the lowering parity oracle failed; refusing to "
            "report a speedup for different semantics")
    forward_speedup = (perf.stage_seconds("forward")
                       / lowered_perf.stage_seconds("forward"))

    config = bench_config(args)
    run_id = obs.run_id if obs is not None else f"bench-{uuid.uuid4().hex[:12]}"
    payload = {
        "benchmark": "av_pipeline_hotpath",
        "config": config,
        "manifest": bench_manifest(config, run_id),
        "per_frame_fps": round(per_frame_fps, 2),
        "batched_fps": round(batched_fps, 2),
        "speedup": round(batched_fps / per_frame_fps, 3),
        "trace_identical": identical,
        "perf": perf.report(),
        "lowered": {
            "fps": round(lowered_fps, 2),
            "trace_identical": lowered_identical,
            "forward_seconds": round(
                lowered_perf.stage_seconds("forward"), 6),
            "baseline_forward_seconds": round(
                perf.stage_seconds("forward"), 6),
            "forward_speedup": round(forward_speedup, 3),
            "floor": LOWERED_FORWARD_FLOOR,
        },
    }

    if args.layers:
        profiler = LayerProfiler(pipeline.detector)
        with profiler:
            pipeline.run(frames[: args.batch_size],
                         batch_size=args.batch_size)
        payload["layers"] = [
            {"layer": name, "seconds": round(seconds, 6), "calls": calls}
            for name, seconds, calls in profiler.table()
        ]
    return payload


def check_regression(report_path: str, payload: dict) -> int:
    committed = load_report(report_path)
    floor = committed["batched_fps"] * (1.0 - REGRESSION_TOLERANCE)
    current = payload["batched_fps"]
    print(f"committed batched fps: {committed['batched_fps']:.2f}  "
          f"current: {current:.2f}  floor (-{REGRESSION_TOLERANCE:.0%}): {floor:.2f}")
    if current < floor:
        print("FAIL: hot-path regression exceeds tolerance")
        return 1
    print("OK: within regression tolerance")
    return 0


def check_lowered_floor(payload: dict) -> int:
    """Lowered-forward gate: measured against the *same invocation's*
    non-lowered forward stage, so the floor holds on any machine."""
    speedup = payload["lowered"]["forward_speedup"]
    print(f"lowered forward speedup: {speedup:.2f}x  "
          f"floor: {LOWERED_FORWARD_FLOOR:.2f}x")
    if speedup < LOWERED_FORWARD_FLOOR:
        print("FAIL: lowered forward stage under its speedup floor")
        return 1
    print("OK: lowered forward above floor")
    return 0


def check_history_trend(history_path: str, payload: dict) -> int:
    """Second half of the --check gate: the fresh number against the
    robust median/MAD trend of the append-only history (a single
    committed report can itself be a lucky outlier; the trailing window
    cannot)."""
    if not history_path or not os.path.exists(history_path):
        print("trend: no history file — pass")
        return 0
    verdict = check_trend(history_path, "av_pipeline_hotpath",
                          "batched_fps", payload["batched_fps"],
                          direction="higher")
    print(verdict.describe())
    return 0 if verdict.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=48)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--input-size", type=int, default=64)
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--conf-threshold", type=float, default=0.001,
                        help="low threshold so NMS/confirmation see real work")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_REPORT)
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="append-only JSONL perf trajectory "
                             "(empty string disables)")
    parser.add_argument("--obs-dir", default=None,
                        help="also record a repro.obs run (manifest.json + "
                             "trace.jsonl) under this directory")
    parser.add_argument("--layers", action="store_true",
                        help="include a per-layer TinyYolo timing table")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed report instead "
                             "of overwriting it; exit 1 on >20%% regression")
    args = parser.parse_args(argv)

    if args.obs_dir:
        with Run(args.obs_dir, name="bench_hotpath",
                 config=bench_config(args), seeds={"seed": args.seed}) as obs:
            payload = run_benchmark(args, obs=obs)
    else:
        payload = run_benchmark(args)
    print(f"per-frame: {payload['per_frame_fps']:.2f} fps   "
          f"batched(x{args.batch_size}): {payload['batched_fps']:.2f} fps   "
          f"speedup: {payload['speedup']:.2f}x   "
          f"trace-identical: {payload['trace_identical']}")
    lowered = payload["lowered"]
    print(f"lowered:   {lowered['fps']:.2f} fps   "
          f"forward speedup: {lowered['forward_speedup']:.2f}x   "
          f"trace-identical: {lowered['trace_identical']}")
    for name, stage in payload["perf"]["stages"].items():
        print(f"  {name:>8}: {stage['seconds']*1e3:8.1f} ms  "
              f"({stage['share']:5.1%})  {stage['calls']} calls")

    status = 0
    if args.check:
        status = check_regression(args.output, payload)
        status = max(status, check_lowered_floor(payload))
        status = max(status, check_history_trend(args.history, payload))
    else:
        write_report(args.output, payload)
        print(f"wrote {os.path.abspath(args.output)}")
    if args.history:
        # The append-only trajectory: one line per invocation (including
        # --check gates), so the fps history is machine-readable instead
        # of a single overwritten file.
        append_jsonl(args.history, {
            "unix_time": time.time(),
            "mode": "check" if args.check else "write",
            "status": status,
            "benchmark": "av_pipeline_hotpath",
            "run_id": payload["manifest"]["run_id"],
            "config_digest": payload["manifest"]["config_digest"],
            "per_frame_fps": payload["per_frame_fps"],
            "batched_fps": payload["batched_fps"],
            "speedup": payload["speedup"],
            "lowered_fps": payload["lowered"]["fps"],
            "lowered_forward_speedup": payload["lowered"]["forward_speedup"],
        })
    return status


if __name__ == "__main__":
    raise SystemExit(main())
