#!/usr/bin/env python
"""Benchmark the detection hot path and emit ``BENCH_hotpath.json``.

Runs a seeded synthetic video through :class:`repro.av.AvPipeline` three
times:

* **per-frame** — the historical reference loop, one ``step()`` (one
  detector forward) per frame;
* **batched** — ``run(batch_size=N)``, the vectorized hot path, with a
  :class:`repro.perf.PerfRecorder` attributing forward / decode / nms /
  confirm time;
* **lowered** — the same batched run through the eval-time lowered
  detector (``TinyYolo.lower()``, DESIGN.md §13): BN folded, fused
  epilogues, pre-planned buffers;
* **quant** — the same batched run through the int8-quantized plan
  (``TinyYolo.quantize()``, DESIGN.md §15), calibrated on the first
  frames of the bench video. Unlike the first three phases this one is
  an *accuracy-vs-speed point*: instead of trace identity it records an
  accuracy budget — per-layer activation error vs the lowered fp graph
  plus end-to-end PWC/CWC deltas vs the fp oracle on the seed
  challenge — and refuses to report a speedup when the budget is blown.

The first three traces are asserted behaviourally identical (same
detections, confirmations and planner actions frame by frame) before any
number is reported, so no speedup can come from changed semantics. The
JSON report seeds the repo's perf trajectory; re-run with ``--check`` in
CI to fail on a >20% frames/sec regression against the committed report,
on the lowered forward stage falling under its speedup floor, or on the
quantized forward falling under its own floor vs the lowered forward of
the same invocation.

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py              # write report
    PYTHONPATH=src python scripts/bench_hotpath.py --check      # regression gate
    PYTHONPATH=src python scripts/bench_hotpath.py --layers     # per-layer table
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import uuid

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.av import AvPipeline  # noqa: E402
from repro.detection import TinyYolo, reduced_config  # noqa: E402
from repro.obs import (  # noqa: E402
    MANIFEST_SCHEMA_VERSION,
    Run,
    append_jsonl,
    config_digest,
    host_info,
)
from repro.eval.protocol import run_challenge  # noqa: E402
from repro.nn.quant import activation_error_stats, calibrate_detector  # noqa: E402
from repro.obs.history import check_trend  # noqa: E402
from repro.perf import LayerProfiler, PerfRecorder, load_report, write_report  # noqa: E402
from repro.scene.video import AttackScenario  # noqa: E402

DEFAULT_REPORT = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")
DEFAULT_HISTORY = os.path.join(os.path.dirname(__file__), "..", "BENCH_history.jsonl")
#: --check fails when batched frames/sec drops below this share of the
#: committed number.
REGRESSION_TOLERANCE = 0.20
#: --check fails when the lowered forward stage is not at least this much
#: faster than the non-lowered forward stage *of the same invocation*
#: (same machine, same load — immune to cross-host drift in the
#: committed report).
LOWERED_FORWARD_FLOOR = 1.3
#: --check fails when the int8 forward stage is not at least this much
#: faster than the *lowered* forward stage of the same invocation —
#: quantization must pay for its accuracy loss on top of lowering, not
#: merely match it.
QUANT_FORWARD_FLOOR = 1.15
#: Declared accuracy budget of the quantized path: |PWC(int8) − PWC(fp)|
#: on the seed challenge must stay within this absolute delta, and the
#: CWC majority outcome must match. Enforced at report time — a blown
#: budget refuses to report the speedup at all.
QUANT_PWC_TOLERANCE = 0.05
#: Frames of the bench video used for the calibration pass.
QUANT_CALIBRATION_FRAMES = 16


def bench_config(args: argparse.Namespace) -> dict:
    """The benchmark-relevant subset of the CLI flags.

    Used for both the report payload and the :class:`repro.obs.Run`
    identity, so the digest in `BENCH_history.jsonl` and the digest in
    the run manifest agree for one invocation (output paths and other
    non-semantic flags are excluded on purpose).
    """
    return {
        "frames": args.frames,
        "batch_size": args.batch_size,
        "input_size": args.input_size,
        "width_multiplier": args.width,
        "conf_threshold": args.conf_threshold,
        "seed": args.seed,
    }


def bench_manifest(config: dict, run_id: str) -> dict:
    """Provenance stamp for one benchmark run (DESIGN.md §9).

    Same fields a :class:`repro.obs.Run` manifest leads with — run id,
    config digest, seeds, host — so `BENCH_hotpath.json` numbers can be
    attributed and compared across machines and commits.
    """
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "run_id": run_id,
        "config_digest": config_digest(config),
        "seeds": {"video": config["seed"], "detector": config["seed"]},
        "host": host_info(),
    }


def build_pipeline(args: argparse.Namespace, lowered: bool = False,
                   precision: str = "fp", calibration=None) -> AvPipeline:
    detector = TinyYolo(
        reduced_config(input_size=args.input_size,
                       width_multiplier=args.width),
        seed=args.seed,
    )
    return AvPipeline(detector, confirm_frames=3,
                      conf_threshold=args.conf_threshold, lowered=lowered,
                      precision=precision, calibration=calibration)


def make_video(args: argparse.Namespace) -> list:
    rng = np.random.default_rng(args.seed)
    return [rng.random((3, args.input_size, args.input_size)).astype(np.float32)
            for _ in range(args.frames)]


def traces_equal(reference, batched, atol: float = 1e-3) -> bool:
    """Behavioural identity: detections, confirmations, planner actions.

    Boxes and scores are compared to within BLAS reassociation noise
    (batched and single-frame GEMMs round differently at ~1e-5 relative);
    every discrete outcome — counts, classes, track ids, planner actions —
    must match exactly.
    """
    if len(reference) != len(batched):
        return False
    for ref, bat in zip(reference, batched):
        if ref.sensor_fault != bat.sensor_fault:
            return False
        if ref.decision.action != bat.decision.action:
            return False
        if len(ref.detections) != len(bat.detections):
            return False
        for a, b in zip(ref.detections, bat.detections):
            if a.class_id != b.class_id:
                return False
            if not np.allclose(a.box_xyxy, b.box_xyxy, atol=atol, rtol=1e-5):
                return False
            if abs(a.score - b.score) > atol:
                return False
        ref_conf = [(c.track_id, c.class_id) for c in ref.confirmed]
        bat_conf = [(c.track_id, c.class_id) for c in bat.confirmed]
        if ref_conf != bat_conf:
            return False
    return True


def run_benchmark(args: argparse.Namespace, obs=None) -> dict:
    pipeline = build_pipeline(args)
    frames = make_video(args)

    # Warm up caches (decode constants, einsum paths, BLAS threads).
    pipeline.run(frames[: min(4, len(frames))], batch_size=args.batch_size)

    pipeline.reset()
    start = time.perf_counter()
    reference_traces = [pipeline.step(frame) for frame in frames]
    per_frame_seconds = time.perf_counter() - start
    per_frame_fps = len(frames) / per_frame_seconds

    perf = PerfRecorder()
    start = time.perf_counter()
    batched_traces = pipeline.run(frames, batch_size=args.batch_size, perf=perf,
                                  obs=obs)
    batched_seconds = time.perf_counter() - start
    batched_fps = len(frames) / batched_seconds

    identical = traces_equal(reference_traces, batched_traces)
    if not identical:
        raise SystemExit(
            "FATAL: batched pipeline traces diverge from the per-frame "
            "reference — refusing to report a speedup for different "
            "semantics")

    # Third phase: the same batched run through the lowered executor. The
    # lowered pipeline shares the reference detector's weights (same seed,
    # same construction) so trace identity is the lowering parity oracle.
    lowered_pipeline = build_pipeline(args, lowered=True)
    lowered_pipeline.run(frames[: min(4, len(frames))],
                         batch_size=args.batch_size)  # warm the plan cache
    lowered_perf = PerfRecorder()
    start = time.perf_counter()
    lowered_traces = lowered_pipeline.run(frames, batch_size=args.batch_size,
                                          perf=lowered_perf)
    lowered_seconds = time.perf_counter() - start
    lowered_fps = len(frames) / lowered_seconds

    lowered_identical = traces_equal(reference_traces, lowered_traces)
    if not lowered_identical:
        raise SystemExit(
            "FATAL: lowered pipeline traces diverge from the per-frame "
            "reference — the lowering parity oracle failed; refusing to "
            "report a speedup for different semantics")
    forward_speedup = (perf.stage_seconds("forward")
                       / lowered_perf.stage_seconds("forward"))

    # Fourth phase: the int8-quantized plan (DESIGN.md §15). Calibrated on
    # the leading frames of the same video, timed against the *lowered*
    # forward of this invocation (quantization must beat the strongest fp
    # baseline, not the eager one), and reported with its accuracy budget
    # instead of trace identity.
    calibration = calibrate_detector(
        lowered_pipeline.infer_model,
        np.stack(frames[:QUANT_CALIBRATION_FRAMES]))
    quant_pipeline = build_pipeline(args, precision="int8",
                                    calibration=calibration)
    quant_pipeline.run(frames[: min(4, len(frames))],
                       batch_size=args.batch_size)  # warm the plan cache
    quant_perf = PerfRecorder()
    start = time.perf_counter()
    quant_traces = quant_pipeline.run(frames, batch_size=args.batch_size,
                                      perf=quant_perf)
    quant_seconds = time.perf_counter() - start
    quant_fps = len(frames) / quant_seconds
    quant_forward_speedup = (lowered_perf.stage_seconds("forward")
                             / quant_perf.stage_seconds("forward"))
    action_agreement = float(np.mean([
        ref.decision.action == q.decision.action
        for ref, q in zip(reference_traces, quant_traces)]))

    # Accuracy budget, half one: per-layer activation error vs the lowered
    # fp graph on one bench batch.
    layer_errors = activation_error_stats(
        lowered_pipeline.infer_model, quant_pipeline.infer_model,
        np.stack(frames[: args.batch_size]))
    worst_layer = max(layer_errors, key=lambda k: layer_errors[k]["max_rel"])
    # Accuracy budget, half two: end-to-end PWC/CWC vs the fp oracle on
    # the seed challenge (rendered scene, not noise frames).
    scenario = AttackScenario(image_size=args.input_size)
    oracle = run_challenge(quant_pipeline.detector, scenario, "speed/normal",
                           n_runs=1, seed=args.seed, lowered=True)
    quant_result = run_challenge(quant_pipeline.detector, scenario,
                                 "speed/normal", n_runs=1, seed=args.seed,
                                 precision="int8", calibration=calibration)
    pwc_delta = abs(quant_result.pwc - oracle.pwc)
    cwc_match = bool(quant_result.cwc == oracle.cwc)
    if pwc_delta > QUANT_PWC_TOLERANCE or not cwc_match:
        raise SystemExit(
            f"FATAL: quantized accuracy budget blown — |ΔPWC|={pwc_delta:.4f}"
            f" (tolerance {QUANT_PWC_TOLERANCE}), CWC match={cwc_match} — "
            "refusing to report a speedup outside the declared budget")

    config = bench_config(args)
    run_id = obs.run_id if obs is not None else f"bench-{uuid.uuid4().hex[:12]}"
    payload = {
        "benchmark": "av_pipeline_hotpath",
        "config": config,
        "manifest": bench_manifest(config, run_id),
        "per_frame_fps": round(per_frame_fps, 2),
        "batched_fps": round(batched_fps, 2),
        "speedup": round(batched_fps / per_frame_fps, 3),
        "trace_identical": identical,
        "perf": perf.report(),
        "lowered": {
            "fps": round(lowered_fps, 2),
            "trace_identical": lowered_identical,
            "forward_seconds": round(
                lowered_perf.stage_seconds("forward"), 6),
            "baseline_forward_seconds": round(
                perf.stage_seconds("forward"), 6),
            "forward_speedup": round(forward_speedup, 3),
            "floor": LOWERED_FORWARD_FLOOR,
        },
        "quant": {
            "fps": round(quant_fps, 2),
            "forward_seconds": round(
                quant_perf.stage_seconds("forward"), 6),
            "lowered_forward_seconds": round(
                lowered_perf.stage_seconds("forward"), 6),
            "forward_speedup_vs_lowered": round(quant_forward_speedup, 3),
            "floor": QUANT_FORWARD_FLOOR,
            "calibration": {
                "frames": calibration.frames,
                "percentile": calibration.percentile,
                "digest": calibration.digest()[:12],
            },
            "activation_error": {
                "worst_layer": worst_layer,
                "max_rel": round(layer_errors[worst_layer]["max_rel"], 5),
                "max_abs": round(layer_errors[worst_layer]["max_abs"], 5),
                "per_layer_max_rel": {
                    name: round(err["max_rel"], 5)
                    for name, err in sorted(layer_errors.items())},
            },
            "accuracy": {
                "challenge": "speed/normal",
                "pwc_fp": round(oracle.pwc, 4),
                "pwc_int8": round(quant_result.pwc, 4),
                "pwc_delta": round(pwc_delta, 4),
                "pwc_tolerance": QUANT_PWC_TOLERANCE,
                "cwc_fp": oracle.cwc,
                "cwc_int8": quant_result.cwc,
                "cwc_match": cwc_match,
                "action_agreement": round(action_agreement, 4),
            },
        },
    }

    if args.layers:
        profiler = LayerProfiler(pipeline.detector)
        with profiler:
            pipeline.run(frames[: args.batch_size],
                         batch_size=args.batch_size)
        payload["layers"] = [
            {"layer": name, "seconds": round(seconds, 6), "calls": calls}
            for name, seconds, calls in profiler.table()
        ]
    return payload


def check_regression(report_path: str, payload: dict) -> int:
    committed = load_report(report_path)
    floor = committed["batched_fps"] * (1.0 - REGRESSION_TOLERANCE)
    current = payload["batched_fps"]
    print(f"committed batched fps: {committed['batched_fps']:.2f}  "
          f"current: {current:.2f}  floor (-{REGRESSION_TOLERANCE:.0%}): {floor:.2f}")
    if current < floor:
        print("FAIL: hot-path regression exceeds tolerance")
        return 1
    print("OK: within regression tolerance")
    return 0


def check_lowered_floor(payload: dict) -> int:
    """Lowered-forward gate: measured against the *same invocation's*
    non-lowered forward stage, so the floor holds on any machine."""
    speedup = payload["lowered"]["forward_speedup"]
    print(f"lowered forward speedup: {speedup:.2f}x  "
          f"floor: {LOWERED_FORWARD_FLOOR:.2f}x")
    if speedup < LOWERED_FORWARD_FLOOR:
        print("FAIL: lowered forward stage under its speedup floor")
        return 1
    print("OK: lowered forward above floor")
    return 0


def check_quant_floor(payload: dict) -> int:
    """Quantized-forward gate: measured against the *lowered* forward
    stage of the same invocation, plus the declared accuracy budget
    (already enforced at report time — re-asserted here so a hand-edited
    report cannot sneak past the gate)."""
    quant = payload["quant"]
    speedup = quant["forward_speedup_vs_lowered"]
    accuracy = quant["accuracy"]
    print(f"quant forward speedup vs lowered: {speedup:.2f}x  "
          f"floor: {QUANT_FORWARD_FLOOR:.2f}x")
    print(f"quant accuracy: |ΔPWC|={accuracy['pwc_delta']:.4f} "
          f"(tolerance {accuracy['pwc_tolerance']})  "
          f"CWC match: {accuracy['cwc_match']}")
    if speedup < QUANT_FORWARD_FLOOR:
        print("FAIL: quantized forward under its speedup floor")
        return 1
    if (accuracy["pwc_delta"] > accuracy["pwc_tolerance"]
            or not accuracy["cwc_match"]):
        print("FAIL: quantized accuracy budget blown")
        return 1
    print("OK: quantized forward above floor, accuracy within budget")
    return 0


def check_history_trend(history_path: str, payload: dict) -> int:
    """Second half of the --check gate: the fresh number against the
    robust median/MAD trend of the append-only history (a single
    committed report can itself be a lucky outlier; the trailing window
    cannot)."""
    if not history_path or not os.path.exists(history_path):
        print("trend: no history file — pass")
        return 0
    status = 0
    fields = [("batched_fps", payload["batched_fps"])]
    if "quant" in payload:  # pre-quant payloads have no int8 phase
        fields.append(("quant_fps", payload["quant"]["fps"]))
    for field, value in fields:
        verdict = check_trend(history_path, "av_pipeline_hotpath",
                              field, value, direction="higher")
        print(verdict.describe())
        if not verdict.ok:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=48)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--input-size", type=int, default=64)
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--conf-threshold", type=float, default=0.001,
                        help="low threshold so NMS/confirmation see real work")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_REPORT)
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="append-only JSONL perf trajectory "
                             "(empty string disables)")
    parser.add_argument("--obs-dir", default=None,
                        help="also record a repro.obs run (manifest.json + "
                             "trace.jsonl) under this directory")
    parser.add_argument("--layers", action="store_true",
                        help="include a per-layer TinyYolo timing table")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed report instead "
                             "of overwriting it; exit 1 on >20%% regression")
    args = parser.parse_args(argv)

    if args.obs_dir:
        with Run(args.obs_dir, name="bench_hotpath",
                 config=bench_config(args), seeds={"seed": args.seed}) as obs:
            payload = run_benchmark(args, obs=obs)
    else:
        payload = run_benchmark(args)
    print(f"per-frame: {payload['per_frame_fps']:.2f} fps   "
          f"batched(x{args.batch_size}): {payload['batched_fps']:.2f} fps   "
          f"speedup: {payload['speedup']:.2f}x   "
          f"trace-identical: {payload['trace_identical']}")
    lowered = payload["lowered"]
    print(f"lowered:   {lowered['fps']:.2f} fps   "
          f"forward speedup: {lowered['forward_speedup']:.2f}x   "
          f"trace-identical: {lowered['trace_identical']}")
    quant = payload["quant"]
    print(f"quant:     {quant['fps']:.2f} fps   "
          f"forward speedup vs lowered: "
          f"{quant['forward_speedup_vs_lowered']:.2f}x   "
          f"|ΔPWC|: {quant['accuracy']['pwc_delta']:.4f}   "
          f"worst layer rel err: {quant['activation_error']['max_rel']:.4f} "
          f"({quant['activation_error']['worst_layer']})")
    for name, stage in payload["perf"]["stages"].items():
        print(f"  {name:>8}: {stage['seconds']*1e3:8.1f} ms  "
              f"({stage['share']:5.1%})  {stage['calls']} calls")

    status = 0
    if args.check:
        status = check_regression(args.output, payload)
        status = max(status, check_lowered_floor(payload))
        status = max(status, check_quant_floor(payload))
        status = max(status, check_history_trend(args.history, payload))
    else:
        write_report(args.output, payload)
        print(f"wrote {os.path.abspath(args.output)}")
    if args.history:
        # The append-only trajectory: one line per invocation (including
        # --check gates), so the fps history is machine-readable instead
        # of a single overwritten file.
        append_jsonl(args.history, {
            "unix_time": time.time(),
            "mode": "check" if args.check else "write",
            "status": status,
            "benchmark": "av_pipeline_hotpath",
            "run_id": payload["manifest"]["run_id"],
            "config_digest": payload["manifest"]["config_digest"],
            "per_frame_fps": payload["per_frame_fps"],
            "batched_fps": payload["batched_fps"],
            "speedup": payload["speedup"],
            "lowered_fps": payload["lowered"]["fps"],
            "lowered_forward_speedup": payload["lowered"]["forward_speedup"],
            "quant_fps": payload["quant"]["fps"],
            "quant_forward_speedup": payload["quant"]["forward_speedup_vs_lowered"],
            "quant_pwc_delta": payload["quant"]["accuracy"]["pwc_delta"],
        })
    return status


if __name__ == "__main__":
    raise SystemExit(main())
