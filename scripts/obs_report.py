#!/usr/bin/env python
"""Render and diff run telemetry produced by :mod:`repro.obs`.

A run directory holds the ``manifest.json`` / ``trace.jsonl`` pair an
active :class:`repro.obs.Run` writes. This CLI renders the per-stage
latency/throughput span tree for each run given, and with ``--diff``
compares exactly two runs: Δ wall-clock per span path, Δ metric values
(zero across counters/gauges for a same-seed re-run), exit status, and
recovery events.

Usage::

    PYTHONPATH=src python scripts/obs_report.py RUN_DIR [RUN_DIR ...]
    PYTHONPATH=src python scripts/obs_report.py --diff RUN_A RUN_B
    PYTHONPATH=src python scripts/obs_report.py --diff --json RUN_A RUN_B
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import diff_runs, load_run, render_diff, render_run  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("runs", nargs="+",
                        help="run directories (or manifest.json paths)")
    parser.add_argument("--diff", action="store_true",
                        help="compare exactly two runs instead of rendering each")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    args = parser.parse_args(argv)

    try:
        loaded = [load_run(path) for path in args.runs]
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if args.diff:
        if len(loaded) != 2:
            print("error: --diff needs exactly two runs", file=sys.stderr)
            return 2
        diff = diff_runs(loaded[0], loaded[1])
        if args.json:
            json.dump(diff, sys.stdout, indent=2, sort_keys=True, default=repr)
            print()
        else:
            print(render_diff(diff))
        return 0

    for index, run in enumerate(loaded):
        if index:
            print()
        if args.json:
            json.dump({"manifest": run.manifest,
                       "spans": [s.to_json() for s in run.spans]},
                      sys.stdout, indent=2, sort_keys=True, default=repr)
            print()
        else:
            print(render_run(run))
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that is not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
