#!/usr/bin/env python
"""Benchmark the parallel EOT training engine and emit ``BENCH_train.json``.

Runs the decal-attack trainer twice on a reduced profile:

* **serial** — ``workers=0``, the per-sample engine schedule executed
  in-process (the bit-identity oracle);
* **parallel** — ``workers=N`` (default 4), the same schedule fanned out
  over a persistent spawned worker pool with shared-memory parameter
  broadcast and fixed-tree gradient reduction (DESIGN.md §10).

Two correctness gates run before any number is reported, so a speedup can
never come from changed semantics:

* **bit-identity** — the serial and parallel final patches must be
  byte-equal (the engine's determinism contract); always enforced;
* **resume parity** — a parallel run is crashed mid-loop, resumed from its
  checkpoint, and must still reproduce the uninterrupted patch byte for
  byte (the PR 1 fault-tolerance contract under ``workers > 0``).

The ≥1.5× speedup target only holds where there are cores to run on, so
the throughput gate is enforced only when ``os.cpu_count() >= workers``;
on smaller machines the numbers are still reported and the identity gates
still bind. Re-run with ``--check`` in CI to fail on a >20% parallel
steps/sec regression against the committed report.

Usage::

    PYTHONPATH=src python scripts/bench_train.py              # write report
    PYTHONPATH=src python scripts/bench_train.py --check      # regression gate
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
import uuid

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.attack.trainer as attack_trainer  # noqa: E402
from repro.attack.config import AttackConfig  # noqa: E402
from repro.attack.trainer import train_patch_attack  # noqa: E402
from repro.detection.config import reduced_config  # noqa: E402
from repro.detection.model import TinyYolo  # noqa: E402
from repro.obs import (  # noqa: E402
    MANIFEST_SCHEMA_VERSION,
    Run,
    append_jsonl,
    config_digest,
    host_info,
)
from repro.obs.history import check_trend  # noqa: E402
from repro.obs.live import LiveConfig, TrainTelemetry  # noqa: E402
from repro.perf import PerfRecorder, load_report, write_report  # noqa: E402
from repro.runtime import RuntimeConfig  # noqa: E402
from repro.scene.video import AttackScenario  # noqa: E402

DEFAULT_REPORT = os.path.join(os.path.dirname(__file__), "..", "BENCH_train.json")
DEFAULT_HISTORY = os.path.join(os.path.dirname(__file__), "..", "BENCH_history.jsonl")
#: --check fails when parallel steps/sec drops below this share of the
#: committed number.
REGRESSION_TOLERANCE = 0.20
#: Throughput target at the default worker count — enforced only where
#: the machine has at least that many cores.
SPEEDUP_TARGET = 1.5


def bench_config(args: argparse.Namespace) -> dict:
    """The benchmark-relevant subset of the CLI flags (see bench_hotpath)."""
    return {
        "steps": args.steps,
        "warmup_steps": args.warmup_steps,
        "workers": args.workers,
        "batch_frames": args.batch_frames,
        "frame_pool": args.frame_pool,
        "k": args.k,
        "n_patches": args.n_patches,
        "gan_batch": args.gan_batch,
        "input_size": args.input_size,
        "width_multiplier": args.width,
        "image_size": args.image_size,
        "seed": args.seed,
    }


def bench_manifest(config: dict, run_id: str) -> dict:
    """Provenance stamp for one benchmark run (DESIGN.md §9)."""
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "run_id": run_id,
        "config_digest": config_digest(config),
        "seeds": {"attack": config["seed"], "detector": config["seed"]},
        "host": host_info(),
    }


def attack_config(args: argparse.Namespace, workers: int) -> AttackConfig:
    return AttackConfig(
        steps=args.steps,
        warmup_steps=args.warmup_steps,
        batch_frames=args.batch_frames,
        frame_pool=args.frame_pool,
        k=args.k,
        n_patches=args.n_patches,
        gan_batch=args.gan_batch,
        seed=args.seed,
        workers=workers,
    )


def run_training(args: argparse.Namespace, workers: int,
                 runtime: RuntimeConfig | None = None,
                 perf: PerfRecorder | None = None, obs=None, live=None):
    """One full training run; returns (AttackResult, wall_seconds).

    Model/scenario/config are rebuilt per call so every run is an
    identical, fully seeded experiment — the wall clock covers warm-up,
    pool spawn and the step loop alike (pool startup is real overhead the
    parallel number must pay for).
    """
    model = TinyYolo(
        reduced_config(input_size=args.input_size, width_multiplier=args.width),
        seed=args.seed,
    )
    scenario = AttackScenario(image_size=args.image_size)
    config = attack_config(args, workers)
    start = time.perf_counter()
    result = train_patch_attack(model, scenario, config, runtime=runtime,
                                obs=obs, perf=perf, live=live)
    return result, time.perf_counter() - start


def resume_parity(args: argparse.Namespace, reference: np.ndarray) -> bool:
    """Crash a parallel run mid-loop, resume it, compare patches byte-wise.

    The crash is injected in the *parent* step loop (``discriminator_loss``
    is called exactly once per attack step there), so the worker pool is
    torn down through the trainer's cleanup path and the resumed run must
    rebuild it from the checkpoint alone.
    """
    work_dir = tempfile.mkdtemp(prefix="bench_train_resume_")
    ckpt = os.path.join(work_dir, "attack.ckpt.npz")
    runtime = RuntimeConfig(checkpoint_path=ckpt,
                            checkpoint_interval=max(2, args.steps // 3),
                            keep_checkpoint=True)
    crash_call = max(2, (2 * args.steps) // 3)
    real_loss = attack_trainer.discriminator_loss
    calls = {"n": 0}

    def crashing_loss(*loss_args, **loss_kwargs):
        calls["n"] += 1
        if calls["n"] == crash_call:
            raise KeyboardInterrupt("bench: simulated mid-run crash")
        return real_loss(*loss_args, **loss_kwargs)

    attack_trainer.discriminator_loss = crashing_loss
    try:
        run_training(args, args.workers, runtime=runtime)
        raise SystemExit("FATAL: injected crash never fired — resume gate "
                         "is not exercising a restart")
    except KeyboardInterrupt:
        pass
    finally:
        attack_trainer.discriminator_loss = real_loss

    resumed, _ = run_training(args, args.workers, runtime=runtime)
    try:
        os.remove(ckpt)
        os.rmdir(work_dir)
    except OSError:
        pass
    return bool(np.array_equal(resumed.patch, reference))


def run_benchmark(args: argparse.Namespace, obs=None) -> dict:
    serial_result, serial_seconds = run_training(args, 0)
    perf = PerfRecorder()

    # Live train telemetry rides on the *parallel* timed run only — the
    # serial oracle stays untelemetered, so the bit-identity gate below
    # additionally proves the sampler never perturbs training numerics.
    live = None
    if obs is not None and args.live:
        live = TrainTelemetry(
            directory=obs.directory,
            config=LiveConfig(interval_s=args.live_interval,
                              rules=tuple(args.slo)),
            metrics=obs.metrics)
        live.start()
    try:
        parallel_result, parallel_seconds = run_training(
            args, args.workers, perf=perf, obs=obs, live=live)
    finally:
        if live is not None:
            live.stop()

    identical = bool(np.array_equal(serial_result.patch, parallel_result.patch))
    if not identical:
        raise SystemExit(
            "FATAL: parallel final patch diverges from the workers=0 oracle "
            "— refusing to report a speedup for different numerics")

    if args.skip_resume_gate:
        resume_ok = None
    else:
        resume_ok = resume_parity(args, parallel_result.patch)
        if not resume_ok:
            raise SystemExit(
                "FATAL: checkpoint/resume under workers>0 does not reproduce "
                "the uninterrupted run byte for byte")

    serial_sps = args.steps / serial_seconds
    parallel_sps = args.steps / parallel_seconds
    speedup = parallel_sps / serial_sps
    cpus = os.cpu_count() or 1
    speedup_enforced = cpus >= args.workers
    if speedup_enforced and speedup < SPEEDUP_TARGET:
        raise SystemExit(
            f"FATAL: {speedup:.2f}x at {args.workers} workers on {cpus} CPUs "
            f"is below the {SPEEDUP_TARGET}x target")

    config = bench_config(args)
    run_id = obs.run_id if obs is not None else f"bench-{uuid.uuid4().hex[:12]}"
    return {
        "benchmark": "parallel_train_engine",
        "config": config,
        "manifest": bench_manifest(config, run_id),
        "serial_seconds": round(serial_seconds, 2),
        "parallel_seconds": round(parallel_seconds, 2),
        "serial_steps_per_sec": round(serial_sps, 4),
        "parallel_steps_per_sec": round(parallel_sps, 4),
        "speedup": round(speedup, 3),
        "speedup_gate": {
            "target": SPEEDUP_TARGET,
            "cpus": cpus,
            "enforced": speedup_enforced,
        },
        "bit_identical": identical,
        "resume_parity": resume_ok,
        "perf": perf.report(),
        "live": None if live is None else {
            "ticks": live.ticks,
            "alerts": len(live.engine.alerts),
            "violated_rules": live.engine.violated_rules(),
            "rules": [str(rule) for rule in live.engine.rules],
        },
    }


def check_regression(report_path: str, payload: dict) -> int:
    committed = load_report(report_path)
    floor = committed["parallel_steps_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
    current = payload["parallel_steps_per_sec"]
    print(f"committed parallel steps/sec: "
          f"{committed['parallel_steps_per_sec']:.4f}  current: {current:.4f}  "
          f"floor (-{REGRESSION_TOLERANCE:.0%}): {floor:.4f}")
    if current < floor:
        print("FAIL: training-engine regression exceeds tolerance")
        return 1
    print("OK: within regression tolerance")
    return 0


def check_history_trend(history_path: str, payload: dict) -> int:
    """Second half of the --check gate: judge the fresh parallel
    throughput against the robust median/MAD band of the append-only
    history (insufficient history passes — a young trend cannot veto)."""
    if not history_path or not os.path.exists(history_path):
        print("trend: no history file — pass")
        return 0
    verdict = check_trend(history_path, "parallel_train_engine",
                          "parallel_steps_per_sec",
                          payload["parallel_steps_per_sec"],
                          direction="higher")
    print(verdict.describe())
    return 0 if verdict.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=20)
    parser.add_argument("--warmup-steps", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--batch-frames", type=int, default=6)
    parser.add_argument("--frame-pool", type=int, default=12)
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--n-patches", type=int, default=2)
    parser.add_argument("--gan-batch", type=int, default=4)
    parser.add_argument("--input-size", type=int, default=64)
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--image-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_REPORT)
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="append-only JSONL perf trajectory "
                             "(empty string disables)")
    parser.add_argument("--obs-dir", default=None,
                        help="also record a repro.obs run (manifest.json + "
                             "trace.jsonl) under this directory")
    parser.add_argument("--skip-resume-gate", action="store_true",
                        help="skip the crash/resume parity run (the two "
                             "timed runs and the bit-identity gate still run)")
    parser.add_argument("--live", action="store_true",
                        help="attach live train telemetry to the parallel "
                             "run (requires --obs-dir): ring-buffer series, "
                             "SLO alerts, train_live.json — watch with "
                             "scripts/obs_dashboard.py --view train --follow")
    parser.add_argument("--live-interval", type=float, default=0.25,
                        help="live sampler tick period (seconds)")
    parser.add_argument("--slo", action="append", default=None,
                        help="SLO rule (repeatable; replaces the default "
                             "set), e.g. 'train.steps_per_s > 0.5 for_ticks 3'")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed report instead "
                             "of overwriting it; exit 1 on >20%% regression")
    args = parser.parse_args(argv)
    if args.slo is None:
        # Stall detection is deliberately generous (0.05 steps/s) so slow
        # shared runners don't alert on healthy-but-leisurely training.
        args.slo = ["train.steps_per_s > 0.05 for_ticks 3",
                    "train.grad_norm < 1e3",
                    "train.checkpoint_age_s < 300"]
    if args.live and not args.obs_dir:
        parser.error("--live requires --obs-dir (telemetry files land in "
                     "the run directory)")

    if args.obs_dir:
        with Run(args.obs_dir, name="bench_train",
                 config=bench_config(args), seeds={"seed": args.seed}) as obs:
            payload = run_benchmark(args, obs=obs)
    else:
        payload = run_benchmark(args)
    gate = payload["speedup_gate"]
    print(f"serial(workers=0): {payload['serial_steps_per_sec']:.4f} steps/s   "
          f"parallel(x{args.workers}): "
          f"{payload['parallel_steps_per_sec']:.4f} steps/s   "
          f"speedup: {payload['speedup']:.2f}x "
          f"({'enforced' if gate['enforced'] else 'reported only'} "
          f"on {gate['cpus']} CPUs)")
    print(f"bit-identical: {payload['bit_identical']}   "
          f"resume-parity: {payload['resume_parity']}")
    if payload.get("live"):
        summary = payload["live"]
        print(f"live: {summary['ticks']} ticks, {summary['alerts']} alerts, "
              f"violated={summary['violated_rules'] or 'none'}")
    for name, stage in payload["perf"]["stages"].items():
        print(f"  {name:>24}: {stage['seconds']*1e3:8.1f} ms  "
              f"({stage['share']:5.1%})  {stage['calls']} calls")

    status = 0
    if args.check:
        status = check_regression(args.output, payload)
        status = max(status, check_history_trend(args.history, payload))
    else:
        write_report(args.output, payload)
        print(f"wrote {os.path.abspath(args.output)}")
    if args.history:
        append_jsonl(args.history, {
            "unix_time": time.time(),
            "mode": "check" if args.check else "write",
            "status": status,
            "benchmark": "parallel_train_engine",
            "run_id": payload["manifest"]["run_id"],
            "config_digest": payload["manifest"]["config_digest"],
            "serial_steps_per_sec": payload["serial_steps_per_sec"],
            "parallel_steps_per_sec": payload["parallel_steps_per_sec"],
            "speedup": payload["speedup"],
        })
    return status


if __name__ == "__main__":
    raise SystemExit(main())
