#!/usr/bin/env python
"""Live TTY dashboard / static HTML report / flamegraph export for a run.

Consumes the observability artifacts a run directory accumulates —
``manifest.json``, ``serve_stats.json``, ``live.json``, ``alerts.jsonl``,
``trace.jsonl`` / ``serve_trace.jsonl`` — all of which are written
atomically or append-durably, so this tool can watch a directory while
the producer is still running (or after it was SIGKILLed) without ever
seeing a torn file.

Usage::

    PYTHONPATH=src python scripts/obs_dashboard.py RUNDIR               # one-shot TTY
    PYTHONPATH=src python scripts/obs_dashboard.py RUNDIR --follow      # live refresh
    PYTHONPATH=src python scripts/obs_dashboard.py RUNDIR --html out.html
    PYTHONPATH=src python scripts/obs_dashboard.py RUNDIR --flamegraph out.json
    PYTHONPATH=src python scripts/obs_dashboard.py RUNDIR --history BENCH_history.jsonl
    PYTHONPATH=src python scripts/obs_dashboard.py RUNDIR --view train --follow
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import (  # noqa: E402
    gather_dashboard,
    render_html,
    render_tty,
    trace_to_speedscope,
    validate_speedscope,
)
from repro.obs.trace import load_trace  # noqa: E402


def export_flamegraph(run_dir: str, out_path: str, trace_name: str) -> int:
    """Write a speedscope-compatible profile from a recorded span trace."""
    candidates = ([trace_name] if trace_name
                  else ["trace.jsonl", "serve_trace.jsonl", "live_trace.jsonl"])
    trace_path = None
    for name in candidates:
        path = name if os.path.isabs(name) else os.path.join(run_dir, name)
        if os.path.exists(path):
            trace_path = path
            break
    if trace_path is None:
        print(f"no trace file found in {run_dir} (tried: {candidates})")
        return 1
    spans = load_trace(trace_path)
    document = trace_to_speedscope(
        spans, name=os.path.basename(trace_path))
    problems = validate_speedscope(document)
    if problems:
        print("refusing to write an invalid speedscope file:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    with open(out_path, "w") as handle:
        json.dump(document, handle)
    print(f"wrote {os.path.abspath(out_path)} "
          f"({len(spans)} spans from {trace_path}) — open at "
          f"https://www.speedscope.app")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run_dir", help="run directory (repro.obs.Run / "
                                        "DetectionServer obs directory)")
    parser.add_argument("--follow", action="store_true",
                        help="clear and re-render the TTY view until ^C")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period with --follow (seconds)")
    parser.add_argument("--html", metavar="OUT",
                        help="write a static self-contained HTML report")
    parser.add_argument("--flamegraph", metavar="OUT",
                        help="write speedscope-compatible flamegraph JSON "
                             "from the run's span trace")
    parser.add_argument("--trace", default="",
                        help="trace file for --flamegraph (default: first of "
                             "trace.jsonl / serve_trace.jsonl / "
                             "live_trace.jsonl)")
    parser.add_argument("--history", default="",
                        help="also summarize a BENCH_history.jsonl trend file")
    parser.add_argument("--view", choices=("all", "serve", "train"),
                        default="all",
                        help="restrict the dashboard to one producer: "
                             "'serve' (live.json + serve_stats.json) or "
                             "'train' (train_live.json); default renders "
                             "whatever the directory holds")
    parser.add_argument("--alerts-tail", type=int, default=20)
    args = parser.parse_args(argv)

    if not os.path.isdir(args.run_dir):
        print(f"not a directory: {args.run_dir}")
        return 1

    def gather():
        dash = gather_dashboard(args.run_dir, alerts_tail=args.alerts_tail,
                                history_path=args.history or None)
        # A view only hides the other producer's sections — gathering stays
        # whole-directory so alerts/traces (shared files) always show.
        if args.view == "serve":
            dash["train_live"] = None
        elif args.view == "train":
            dash["live"] = None
            dash["serve_stats"] = None
        return dash

    # --flamegraph and --html compose; either (or both) suppresses the TTY view.
    status = 0
    if args.flamegraph:
        status = export_flamegraph(args.run_dir, args.flamegraph, args.trace)

    if args.html:
        html = render_html(gather())
        with open(args.html, "w") as handle:
            handle.write(html)
        print(f"wrote {os.path.abspath(args.html)}")

    if args.flamegraph or args.html:
        return status

    if args.follow:
        try:
            while True:
                frame = render_tty(gather())
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                sys.stdout.flush()
                time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
    print(render_tty(gather()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
