"""Gradient-based optimizers.

The paper trains the GAN with Adam (lr = 1e-4); the detector fine-tune and
the Sava et al. baseline also use these optimizers. Both optimizers follow
the standard update rules and support per-call gradient clipping to keep
small-batch CPU training stable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for divergence monitoring).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Mutable optimizer state (moments, step count, learning rate).

        Flat dict of arrays so it can ride inside an npz training
        checkpoint (:mod:`repro.runtime.checkpoint`); parameter *values*
        are not included — they belong to the module's own state dict.
        """
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict`."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {"lr": np.asarray(self.lr, dtype=np.float64)}
        for i, velocity in enumerate(self._velocity):
            if velocity is None:
                velocity = np.zeros_like(self.parameters[i].data)
            state[f"velocity.{i}"] = velocity
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.lr = float(state["lr"])
        self._velocity = [
            np.asarray(state[f"velocity.{i}"]).copy()
            for i in range(len(self.parameters))
        ]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1 - self.beta1 ** self._step
        bias2 = 1 - self.beta2 ** self._step
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {
            "lr": np.asarray(self.lr, dtype=np.float64),
            "step": np.asarray(self._step, dtype=np.int64),
        }
        for i in range(len(self.parameters)):
            state[f"m.{i}"] = self._m[i]
            state[f"v.{i}"] = self._v[i]
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.lr = float(state["lr"])
        self._step = int(state["step"])
        self._m = [np.asarray(state[f"m.{i}"]).copy()
                   for i in range(len(self.parameters))]
        self._v = [np.asarray(state[f"v.{i}"]).copy()
                   for i in range(len(self.parameters))]
