"""Post-training int8 quantization for the frozen detector (DESIGN.md §15).

After PR 8's lowering pass the forward is one fused GEMM per layer; the
remaining lever the ROADMAP names is precision: run those GEMMs on int8
operands with int32 accumulation and dequantize in the epilogue. Unlike
lowering — which is gated on *bit-identical* detection traces — the
quantized path is reported as a separate **accuracy-vs-speed point**: the
bench phase records per-layer activation error and end-to-end PWC/CWC
deltas against the fp oracle and asserts they stay inside a declared
budget, not that they vanish.

Scheme (symmetric, no zero points):

* **Activations** — per-tensor scale ``a = amax/127`` from a calibration
  pass: :func:`calibrate_detector` runs N representative frames through
  the *lowered fp* graph and records each conv input's absolute range
  through the plan ``tap`` hook (max, or an optional percentile clip).
  Runtime values outside the calibrated range saturate at ±127.
* **Weights** — per-output-channel scale ``w[oc] = amax_oc/127`` over the
  BN-folded weights, so folding and quantization compose.
* **Layers** — ``conv1``…``conv11`` run int8; the two regression heads
  stay fp (they are 1×1 and cheap, and head error moves boxes directly).

Exact int8 GEMM on a BLAS-only substrate
----------------------------------------
NumPy has no fast integer GEMM — ``matmul`` on int8/int32 runs 20–100×
slower than BLAS sgemm here. Instead the int8 operands are held as exact
small integers *in float32* and multiplied with sgemm: every product is
an integer ≤ 127², and a partial sum of at most :data:`K_CHUNK` = 1024
such terms is bounded by ``1024·127² < 2²⁴``, the float32 exact-integer
range — so each chunk's sgemm result is the exact integer answer
regardless of BLAS summation order. Chunks are then reduced in a true
int32 accumulator. The composition is bit-identical to a pure int32 MAC
loop and deterministic across runs, while the inner loops stay BLAS. The
int32 accumulator itself cannot overflow by construction: the reduction
depth ``K = C·k²`` is asserted ≤ :data:`MAX_REDUCE_K` = ⌊(2³¹−1)/127²⌋
at spec build time.

The executors plug into the lowering plan machinery unchanged:
:class:`QuantizedDetector` subclasses
:class:`~repro.nn.lowering.CompiledDetector` and passes its own per-layer
executor to the shared :class:`~repro.nn.lowering._Plan` — pools,
upsample, concat, topology, plan caching and the pre-sized-buffer
workspace are the same code the fp path runs.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from .functional import ConvWorkspace
from .lowering import (_BLOCK_NAMES, _HEAD_NAMES, _ConvExec, CompiledDetector,
                       FusedConvSpec)
from .serialization import state_digest

__all__ = [
    "INT8_QMAX",
    "K_CHUNK",
    "MAX_REDUCE_K",
    "QuantizationError",
    "ActivationObserver",
    "CalibrationResult",
    "calibrate_detector",
    "QuantConvSpec",
    "QuantizedDetector",
    "quantize_detector",
    "resolve_inference_model",
    "activation_error_stats",
    "quant_runtime_totals",
]

#: Symmetric int8 quantization range: values map to [-127, 127] (−128 is
#: never produced, keeping negation closed and the scheme zero-point-free).
INT8_QMAX = 127

#: Reduction-axis chunk for the exact-integer sgemm. ``K_CHUNK·127²`` must
#: stay below 2²⁴ (float32 exact-integer range) so every partial sum inside
#: a chunk's sgemm is exactly representable: 1024·16129 = 16 516 096 < 2²⁴.
K_CHUNK = 1024

#: Largest supported reduction depth ``K = C·k²``. The int32 accumulator
#: holds ``|acc| ≤ K·127²``; overflow is impossible iff ``K·127² ≤ 2³¹−1``.
MAX_REDUCE_K = (2 ** 31 - 1) // (INT8_QMAX * INT8_QMAX)


class QuantizationError(RuntimeError):
    """Quantization cannot proceed (missing calibration, bad ranges,
    unsupported shapes)."""


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------

class ActivationObserver:
    """Running per-layer absolute-range recorder (the plan ``tap`` target).

    ``percentile=100`` records the exact running max of ``|x|``; lower
    values clip each batch's range to that percentile of ``|x|`` before
    taking the running max, discarding extreme outliers at the cost of
    saturating them at inference time.
    """

    def __init__(self, percentile: float = 100.0):
        if not 0.0 < percentile <= 100.0:
            raise QuantizationError(
                f"calibration percentile must be in (0, 100], got {percentile}")
        self.percentile = float(percentile)
        self.ranges: Dict[str, float] = {}
        self.batches = 0

    def __call__(self, name: str, value: np.ndarray) -> None:
        mag = np.abs(value)
        if self.percentile >= 100.0:
            amax = float(np.max(mag))
        else:
            amax = float(np.percentile(mag, self.percentile))
        if not np.isfinite(amax):
            raise QuantizationError(
                f"non-finite activation range at layer {name!r} during "
                "calibration — the detector is producing NaN/inf")
        # Record on first sight even when amax == 0 (all-zero input): the
        # layer must appear in the result so the spec's zero-range guard —
        # not a missing-range error — handles it.
        if name not in self.ranges or amax > self.ranges[name]:
            self.ranges[name] = amax


class CalibrationResult:
    """Per-layer activation ranges plus the metadata that produced them.

    Picklable (plain dict/float fields) so serving workers can re-quantize
    after the weight broadcast, and serializable as a digest-stable state
    dict via :meth:`to_state`/:meth:`from_state` (``repro.nn.serialization``
    compatible — ``save_state(path, result.to_state())`` round-trips).
    """

    def __init__(self, ranges: Dict[str, float], frames: int,
                 percentile: float):
        self.ranges = {name: float(amax) for name, amax in ranges.items()}
        self.frames = int(frames)
        self.percentile = float(percentile)

    def __eq__(self, other) -> bool:
        return (isinstance(other, CalibrationResult)
                and self.ranges == other.ranges
                and self.frames == other.frames
                and self.percentile == other.percentile)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CalibrationResult(layers={len(self.ranges)}, "
                f"frames={self.frames}, percentile={self.percentile})")

    def to_state(self) -> Dict[str, np.ndarray]:
        """Flat array state dict (float64 ranges → exact round-trip)."""
        state: Dict[str, np.ndarray] = {
            "meta:frames": np.asarray(self.frames, dtype=np.int64),
            "meta:percentile": np.asarray(self.percentile, dtype=np.float64),
        }
        for name in sorted(self.ranges):
            state[f"range:{name}"] = np.asarray(self.ranges[name],
                                                dtype=np.float64)
        return state

    @classmethod
    def from_state(cls, state: Dict[str, np.ndarray]) -> "CalibrationResult":
        try:
            frames = int(state["meta:frames"])
            percentile = float(state["meta:percentile"])
        except KeyError as err:
            raise QuantizationError(
                f"calibration state is missing {err.args[0]!r}") from err
        ranges = {key[len("range:"):]: float(state[key])
                  for key in state if key.startswith("range:")}
        return cls(ranges, frames, percentile)

    def digest(self) -> str:
        """SHA-256 over the canonical state payload (serialization digest)."""
        return state_digest(self.to_state())


def calibrate_detector(model, frames: np.ndarray, *,
                       percentile: float = 100.0,
                       batch_size: int = 8) -> CalibrationResult:
    """Record per-layer activation ranges from representative frames.

    ``model`` is an eval-mode :class:`~repro.detection.model.TinyYolo`
    (lowered internally) or an already-compiled detector; ``frames`` is an
    ``(N, 3, H, W)`` array (a single CHW frame is promoted). The frames
    run through the **lowered fp** graph — ranges describe the float
    activations the int8 path will approximate.
    """
    data = np.ascontiguousarray(frames, dtype=np.float32)
    if data.ndim == 3:
        data = data[None]
    if data.ndim != 4 or data.shape[0] == 0:
        raise QuantizationError(
            f"calibration frames must be a non-empty (N, 3, H, W) array, "
            f"got shape {data.shape}")
    lowered = model if isinstance(model, CompiledDetector) else model.lower()
    observer = ActivationObserver(percentile)
    if batch_size < 1:
        raise QuantizationError(f"batch_size must be ≥ 1, got {batch_size}")
    for start in range(0, len(data), batch_size):
        lowered.forward_arrays(data[start:start + batch_size], tap=observer)
        observer.batches += 1
    return CalibrationResult(observer.ranges, frames=len(data),
                             percentile=percentile)


# ----------------------------------------------------------------------
# Quantized specs and executors
# ----------------------------------------------------------------------

def _chunk_bounds(k_total: int) -> List[Tuple[int, int]]:
    return [(k0, min(k0 + K_CHUNK, k_total))
            for k0 in range(0, k_total, K_CHUNK)]


class QuantConvSpec:
    """One int8 conv layer: quantized folded weights + dequant epilogue.

    Built from the fp :class:`~repro.nn.lowering.FusedConvSpec` (BN already
    folded) plus the layer's calibrated activation range. Weight values
    are stored as exact small integers in float32 (sgemm operands, see
    module docstring), pre-split into contiguous ≤ :data:`K_CHUNK` slabs
    along the reduction axis. ``runs``/``gemm_chunks`` are live-probe
    counters incremented by the executor.
    """

    __slots__ = ("name", "weight_chunks", "w_scale", "a_scale", "inv_a_scale",
                 "dequant_col", "bias_col", "kernel", "stride", "padding",
                 "out_channels", "slope", "k_total", "runs", "gemm_chunks")

    def __init__(self, fused: FusedConvSpec, act_amax: float):
        self.name = fused.name
        if not np.isfinite(act_amax) or act_amax < 0:
            raise QuantizationError(
                f"layer {fused.name!r}: calibrated activation range must be "
                f"finite and ≥ 0, got {act_amax}")
        # Zero-range guard: an all-zero (or never-activated) input tensor
        # quantizes exactly at any positive scale — use 1.0, never 0/NaN.
        amax = float(act_amax) if act_amax > 0 else 1.0
        self.a_scale = amax / INT8_QMAX
        self.inv_a_scale = INT8_QMAX / amax

        weight_2d = fused.weight_2d
        if not np.all(np.isfinite(weight_2d)):
            raise QuantizationError(
                f"layer {fused.name!r}: folded weights contain non-finite "
                "values; cannot quantize")
        w_amax = np.max(np.abs(weight_2d), axis=1)
        # Same guard per output channel: a dead (all-zero) filter keeps a
        # unit scale and quantizes to all zeros.
        w_amax = np.where(w_amax > 0, w_amax, 1.0)
        self.w_scale = (w_amax / INT8_QMAX).astype(np.float32)
        quantized = np.rint(weight_2d / self.w_scale[:, None])
        np.clip(quantized, -INT8_QMAX, INT8_QMAX, out=quantized)
        quantized = quantized.astype(np.float32)

        self.k_total = int(weight_2d.shape[1])
        if self.k_total > MAX_REDUCE_K:
            raise QuantizationError(
                f"layer {fused.name!r}: reduction depth K={self.k_total} "
                f"exceeds MAX_REDUCE_K={MAX_REDUCE_K}; int32 accumulation "
                "could overflow")
        self.weight_chunks = [np.ascontiguousarray(quantized[:, k0:k1])
                              for k0, k1 in _chunk_bounds(self.k_total)]
        self.out_channels = fused.out_channels
        # acc·(w_scale·a_scale) per output channel, broadcast onto NOHW.
        self.dequant_col = np.ascontiguousarray(
            (self.w_scale * np.float32(self.a_scale))
            .reshape(1, -1, 1, 1), dtype=np.float32)
        self.bias_col = fused.bias_col
        self.kernel = fused.kernel
        self.stride = fused.stride
        self.padding = fused.padding
        self.slope = fused.slope
        self.runs = 0
        self.gemm_chunks = 0


class _QuantConvExec:
    """One int8 conv at one input shape: quantize → gather → sgemm → dequant.

    Pipeline per call, all buffers pre-sized through the plan workspace:

    1. quantize the float input in place into an int8 buffer
       (``rint(x/a_scale)`` clipped to ±127 — saturating),
    2. zero-pad the int8 buffer (quantized zero *is* 0: padding commutes
       with quantization) and gather k² strided slices into int8 im2col
       columns ``(N, K, oh·ow)`` — 4× less memory traffic than fp cols,
    3. per ≤1024-wide K chunk: cast the column slab to float32 and sgemm
       against the pre-split integer weight slab (exact, see module
       docstring), reducing chunks in an int32 accumulator,
    4. fused epilogue: ``out = acc·(w_scale·a_scale) + bias`` then leaky
       ReLU, all in place on the float32 output buffer.
    """

    __slots__ = ("spec", "ws", "out", "tmp", "qf", "xq", "cols", "colsf",
                 "acc", "parti", "in_shape", "one_by_one")

    def __init__(self, spec: QuantConvSpec, in_shape: Tuple[int, ...],
                 ws: ConvWorkspace):
        self.spec = spec
        self.ws = ws
        self.in_shape = in_shape
        n, c, h, w = in_shape
        k, p, s = spec.kernel, spec.padding, spec.stride
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        out_shape = (n, spec.out_channels, out_h, out_w)
        name = spec.name
        self.out = ws.buffer(("quant.out", name, out_shape), out_shape)
        self.tmp = (ws.buffer(("quant.tmp", name, out_shape), out_shape)
                    if spec.slope is not None else None)
        self.qf = ws.buffer(("quant.qf", name, in_shape), in_shape)
        self.xq = ws.buffer(("quant.xq", name, in_shape), in_shape,
                            dtype=np.int8)
        self.one_by_one = (k == 1 and s == 1 and p == 0)
        ohw = out_h * out_w
        cols_shape = (n, spec.k_total, ohw)
        self.cols = (None if self.one_by_one else
                     ws.buffer(("quant.cols", name, cols_shape), cols_shape,
                               dtype=np.int8))
        chunk = min(spec.k_total, K_CHUNK)
        self.colsf = ws.buffer(("quant.colsf", name, (n, chunk, ohw)),
                               (n, chunk, ohw))
        if len(spec.weight_chunks) > 1:
            acc_shape = (n, spec.out_channels, ohw)
            self.acc = ws.buffer(("quant.acc", name, acc_shape), acc_shape,
                                 dtype=np.int32)
            self.parti = ws.buffer(("quant.parti", name, acc_shape),
                                   acc_shape, dtype=np.int32)
        else:
            self.acc = self.parti = None

    def run(self, x: np.ndarray) -> np.ndarray:
        spec = self.spec
        out = self.out
        n, c = x.shape[0], x.shape[1]
        # 1. Quantize (saturating round-to-nearest-even, deterministic).
        qf = self.qf
        np.multiply(x, spec.inv_a_scale, out=qf)
        np.rint(qf, out=qf)
        np.clip(qf, -float(INT8_QMAX), float(INT8_QMAX), out=qf)
        np.copyto(self.xq, qf, casting="unsafe")
        k, s = spec.kernel, spec.stride
        oh, ow = out.shape[2], out.shape[3]
        # 2. int8 im2col (1×1 convs read the int8 buffer directly).
        if self.one_by_one:
            cols = self.xq.reshape(n, c, oh * ow)
        else:
            padded = self.ws.pad("quant." + spec.name, self.xq, spec.padding)
            gather = self.cols.reshape(n, c, k, k, oh, ow)
            for i in range(k):
                for j in range(k):
                    gather[:, :, i, j] = padded[:, :, i:i + s * oh:s,
                                                j:j + s * ow:s]
            self.ws.pad_release(padded)
            cols = self.cols.reshape(n, spec.k_total, oh * ow)
        # 3. Chunked exact-integer sgemm with int32 reduction.
        out3 = out.reshape(n, spec.out_channels, oh * ow)
        chunks = spec.weight_chunks
        if len(chunks) == 1:
            np.copyto(self.colsf, cols, casting="unsafe")
            np.matmul(chunks[0], self.colsf, out=out3)
        else:
            for index, slab in enumerate(chunks):
                k0 = index * K_CHUNK
                width = slab.shape[1]
                colsf = self.colsf[:, :width]
                np.copyto(colsf, cols[:, k0:k0 + width], casting="unsafe")
                np.matmul(slab, colsf, out=out3)
                if index == 0:
                    np.copyto(self.acc, out3, casting="unsafe")
                else:
                    np.copyto(self.parti, out3, casting="unsafe")
                    self.acc += self.parti
            np.copyto(out3, self.acc, casting="unsafe")
        # 4. Fused dequant + bias + leaky epilogue, in place.
        out *= spec.dequant_col
        out += spec.bias_col
        if spec.slope is not None:
            np.multiply(out, spec.slope, out=self.tmp)
            np.maximum(out, self.tmp, out=out)
        spec.runs += 1
        spec.gemm_chunks += len(chunks)
        return out


def _quant_conv_exec(spec, in_shape, ws):
    """Executor dispatch for the mixed-precision plan: int8 specs get the
    quantized executor, fp specs (the regression heads) the lowered one."""
    if isinstance(spec, QuantConvSpec):
        return _QuantConvExec(spec, in_shape, ws)
    return _ConvExec(spec, in_shape, ws)


# ----------------------------------------------------------------------
# The quantized detector
# ----------------------------------------------------------------------

#: Every live quantized detector (weakly held) for the process-wide probe.
_QUANT_LOCK = threading.Lock()
_QUANT_REGISTRY: "weakref.WeakSet[QuantizedDetector]" = weakref.WeakSet()


class QuantizedDetector(CompiledDetector):
    """Int8-quantized view of a frozen :class:`TinyYolo`.

    ``conv1``…``conv11`` run the int8 executor; the regression heads stay
    fp. Shares the plan cache / workspace / topology machinery with
    :class:`~repro.nn.lowering.LoweredDetector` through
    :class:`~repro.nn.lowering.CompiledDetector` — the only difference is
    the per-layer executor family and the quantized specs.
    """

    kind = "int8"
    conv_exec = staticmethod(_quant_conv_exec)

    def __init__(self, model, calibration: CalibrationResult,
                 debug: bool = False):
        if not isinstance(calibration, CalibrationResult):
            raise QuantizationError(
                "precision='int8' requires a CalibrationResult — run "
                "calibrate_detector(model, frames) (or TinyYolo.quantize("
                "calibration_frames)) first; got "
                f"{type(calibration).__name__}")
        missing = [name for name in _BLOCK_NAMES
                   if name not in calibration.ranges]
        if missing:
            raise QuantizationError(
                f"calibration is missing activation ranges for {missing}; "
                "it was recorded against a different graph")
        super().__init__(model, debug=debug)
        self.calibration = calibration
        for name in _BLOCK_NAMES:
            fused = FusedConvSpec.from_block(name, getattr(model, name))
            self.specs[name] = QuantConvSpec(fused, calibration.ranges[name])
        for name in _HEAD_NAMES:
            self.specs[name] = FusedConvSpec.from_conv(name,
                                                       getattr(model, name))
        with _QUANT_LOCK:
            _QUANT_REGISTRY.add(self)

    # -- serialization ---------------------------------------------------
    def quant_state(self) -> Dict[str, np.ndarray]:
        """Digest-stable quantized state: calibration payload + per-layer
        weight scales (``repro.nn.serialization.save_state`` compatible)."""
        state = self.calibration.to_state()
        for name in _BLOCK_NAMES:
            state[f"w_scale:{name}"] = np.ascontiguousarray(
                self.specs[name].w_scale)
        return state

    def quant_digest(self) -> str:
        return state_digest(self.quant_state())

    # -- probes ----------------------------------------------------------
    def stats(self) -> dict:
        specs = [self.specs[name] for name in _BLOCK_NAMES]
        ranges = [spec.a_scale * INT8_QMAX for spec in specs]
        return {
            "plans": len(self._plans),
            "layers_int8": len(specs),
            "epilogue_runs": sum(spec.runs for spec in specs),
            "gemm_chunks": sum(spec.gemm_chunks for spec in specs),
            "act_range_min": float(min(ranges)),
            "act_range_max": float(max(ranges)),
            "act_range_mean": float(sum(ranges) / len(ranges)),
        }


def quantize_detector(model, calibration: CalibrationResult,
                      debug: bool = False) -> QuantizedDetector:
    """One-shot quantization pass (the function behind ``TinyYolo.quantize``
    when a :class:`CalibrationResult` is already in hand)."""
    return QuantizedDetector(model, calibration, debug=debug)


def resolve_inference_model(model, precision: str = "fp",
                            lowered: bool = False,
                            calibration: Optional[CalibrationResult] = None,
                            debug: bool = False):
    """Map the ``(precision, lowered)`` knobs onto an inference model.

    The single decision point shared by :class:`~repro.av.pipeline
    .AvPipeline`, the eval protocol and the serving backends:
    ``precision="int8"`` compiles a quantized plan (requires
    ``calibration``; ``lowered`` is implied), ``precision="fp"`` returns
    the lowered graph when ``lowered`` else the model itself.
    """
    if precision == "int8":
        if calibration is None:
            raise QuantizationError(
                "precision='int8' requires calibration: pass a "
                "CalibrationResult (from calibrate_detector(model, frames)) "
                "— quantizing without calibrated activation ranges would "
                "silently fabricate scales")
        return quantize_detector(model, calibration, debug=debug)
    if precision != "fp":
        raise ValueError(
            f"precision must be 'fp' or 'int8', got {precision!r}")
    return model.lower(debug=debug) if lowered else model


def quant_runtime_totals() -> dict:
    """Aggregate quantization stats over every live quantized detector.

    Live-telemetry probe target (``LiveTelemetry.add_probe("quant", ...)``)
    mirroring :func:`~repro.nn.functional.conv_workspace_totals`: flat
    scalars over all :class:`QuantizedDetector` instances in the process.
    Counter reads race benignly with the owning threads.
    """
    with _QUANT_LOCK:
        detectors = list(_QUANT_REGISTRY)
    totals = {"detectors": len(detectors), "plans": 0, "layers_int8": 0,
              "epilogue_runs": 0, "gemm_chunks": 0,
              "act_range_min": 0.0, "act_range_max": 0.0,
              "act_range_mean": 0.0}
    means = []
    for detector in detectors:
        try:
            stats = detector.stats()
        except (RuntimeError, ValueError):  # racing teardown
            continue
        for key in ("plans", "layers_int8", "epilogue_runs", "gemm_chunks"):
            totals[key] += stats[key]
        totals["act_range_min"] = (stats["act_range_min"] if not means else
                                   min(totals["act_range_min"],
                                       stats["act_range_min"]))
        totals["act_range_max"] = max(totals["act_range_max"],
                                      stats["act_range_max"])
        means.append(stats["act_range_mean"])
    if means:
        totals["act_range_mean"] = float(sum(means) / len(means))
    return totals


# ----------------------------------------------------------------------
# Accuracy reporting
# ----------------------------------------------------------------------

def activation_error_stats(reference, quantized, frames: np.ndarray,
                           batch_size: int = 8) -> Dict[str, Dict[str, float]]:
    """Per-layer activation error of the int8 path vs the fp reference.

    Runs both compiled detectors on the same frames with output capture
    and returns ``{layer: {max_abs, mean_abs, max_rel}}`` where ``max_rel``
    normalizes by the reference layer's absolute peak. This is the
    per-layer half of the accuracy budget the bench phase records (the
    other half is end-to-end PWC/CWC deltas).
    """
    data = np.ascontiguousarray(frames, dtype=np.float32)
    if data.ndim == 3:
        data = data[None]
    stats: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for start in range(0, len(data), batch_size):
        batch = data[start:start + batch_size]
        ref_capture: Dict[str, np.ndarray] = {}
        q_capture: Dict[str, np.ndarray] = {}
        reference.forward_arrays(batch, capture=ref_capture)
        quantized.forward_arrays(batch, capture=q_capture)
        for name, ref in ref_capture.items():
            delta = np.abs(q_capture[name] - ref)
            peak = float(np.max(np.abs(ref)))
            entry = stats.setdefault(name, {"max_abs": 0.0, "mean_abs": 0.0,
                                            "max_rel": 0.0})
            entry["max_abs"] = max(entry["max_abs"], float(np.max(delta)))
            entry["mean_abs"] += float(np.mean(delta))
            if peak > 0:
                entry["max_rel"] = max(entry["max_rel"],
                                       float(np.max(delta)) / peak)
            counts[name] = counts.get(name, 0) + 1
    for name, entry in stats.items():
        entry["mean_abs"] /= counts[name]
    return stats
