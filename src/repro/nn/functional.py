"""Differentiable neural-network operations used across the reproduction.

Everything here operates on :class:`repro.nn.tensor.Tensor` in NCHW layout
(batch, channels, height, width) and records backward closures so attack
gradients can flow from the YOLOv3-tiny loss through EOT warps back into the
GAN generator.

Convolutions use an im2col formulation: patches are unfolded into a matrix,
the convolution becomes a single GEMM, and the backward pass is the
corresponding col2im scatter. This keeps the whole stack pure numpy while
remaining fast enough for the reduced-scale profiles used by the tests and
benchmarks (see DESIGN.md §5).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from .tensor import (
    Tensor,
    _define_backward,
    _make,
    _route,
    clip,
    ensure_tensor,
    exp,
    log,
)

__all__ = [
    "stable_sigmoid",
    "ConvWorkspace",
    "conv_workspace",
    "clear_conv_workspace",
    "conv_workspace_totals",
    "unfold_windows",
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "upsample_nearest",
    "interpolate_bilinear",
    "grid_sample",
    "linear",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "bce_with_logits",
    "binary_cross_entropy",
    "mse_loss",
    "l1_loss",
    "batch_norm",
    "dropout",
]


# ----------------------------------------------------------------------
# Numerically stable sigmoid (plain numpy, no autograd)
# ----------------------------------------------------------------------

def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic on a raw numpy array.

    ``1/(1+exp(-x))`` overflows for large negative ``x`` (an untrained or
    freshly fine-tuned head emits logits well past float32's exp range).
    Clamping to ±60 is exact in float32: σ(60) already rounds to 1.0.
    Shared by :func:`sigmoid`, :func:`bce_with_logits` and the inference
    decode path so every sigmoid in the stack has the same numerics.
    """
    x = np.asarray(x)
    return (1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))).astype(
        np.float32, copy=False
    )


# ----------------------------------------------------------------------
# Conv workspace: reusable scratch buffers + cached einsum paths
# ----------------------------------------------------------------------

class ConvWorkspace:
    """Per-process scratch-buffer and einsum-path cache for the conv path.

    BENCH_hotpath.json attributes ~81% of wall time to conv forwards, and
    a meaningful slice of that is allocator traffic: every call re-pads
    the input and re-searches the einsum contraction path. This cache
    reuses both across calls, keyed by exact shape/dtype, with a bounded
    LRU so pathological shape churn cannot grow it without limit.

    Aliasing rule (load-bearing): only buffers that are **consumed
    synchronously** inside one forward/backward call may live here — the
    pad buffer (read by einsum through a strided view, never captured by
    a closure) and the ``grad_cols`` einsum output (read by
    :func:`col2im` before the closure returns). Anything routed into the
    autograd graph via ``_route`` is staged *by reference*
    (``tensor._route``), so graph-visible arrays must stay per-call
    allocations — which is why :func:`col2im` still allocates its output.

    A single instance is not safe for concurrent use (two threads padding
    into the same cached buffer corrupt each other's windows mid-forward),
    so :func:`conv_workspace` hands out one instance *per thread* via
    ``threading.local`` — each trainer process, ``repro.parallel`` worker,
    and server thread gets its own cache with zero locking on the hot
    path. Invalidate the calling thread's instance explicitly with
    :func:`clear_conv_workspace` (e.g. after a memory-pressure event or
    in tests that count allocations).

    Memory is bounded on two axes: ``max_buffers`` caps the *count* and
    ``max_bytes`` caps the *total size* — a handful of huge pads (one
    full-scale 416² batch pad is tens of MiB) would otherwise stay pinned
    behind the count cap forever. Eviction is LRU on both axes; a single
    buffer larger than the whole byte budget is handed out but never
    cached.

    ``debug=True`` arms the in-flight pad guard: :meth:`pad` marks its
    buffer checked out until :meth:`pad_release`, and a second pad that
    would alias a still-checked-out buffer raises instead of silently
    overwriting it (the documented consume-synchronously rule). The guard
    is for tests and the lowered-graph executor's validation mode; with
    ``debug=False`` both methods skip all tracking.
    """

    def __init__(self, max_buffers: int = 64,
                 max_bytes: int = 256 * 1024 * 1024,
                 debug: bool = False):
        self.max_buffers = max_buffers
        self.max_bytes = max_bytes
        self.debug = debug
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bytes = 0
        self._buffers: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._paths: dict = {}
        # Debug-mode in-flight pad tracking: key set + id(buffer) → key.
        self._in_flight_keys: set = set()
        self._in_flight_ids: dict = {}
        with _REGISTRY_LOCK:
            _WORKSPACE_REGISTRY.add(self)

    def buffer(self, key: tuple, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """A reusable zero-initialized-at-birth array for ``key``.

        Contents persist between calls — callers must overwrite every
        element they read (or rely on the documented pad-border
        invariant below).
        """
        buf = self._buffers.get(key)
        if buf is not None:
            self._buffers.move_to_end(key)
            self.hits += 1
            return buf
        self.misses += 1
        buf = np.zeros(shape, dtype=dtype)
        if buf.nbytes > self.max_bytes:
            # Oversized for the whole budget: hand it out, cache nothing.
            return buf
        self._buffers[key] = buf
        self._bytes += buf.nbytes
        while len(self._buffers) > 1 and (
                len(self._buffers) > self.max_buffers
                or self._bytes > self.max_bytes):
            _, evicted = self._buffers.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1
        return buf

    def pad(self, tag: str, x: np.ndarray, padding: int) -> np.ndarray:
        """Zero-padded copy of ``x`` through a reusable buffer.

        The borders are written exactly once (at allocation, by
        ``np.zeros``) and never touched again — only the interior is
        overwritten per call, which is what makes reuse cheaper than
        ``np.pad``'s full fresh allocation.
        """
        if padding == 0:
            return x
        n, c, h, w = x.shape
        shape = (n, c, h + 2 * padding, w + 2 * padding)
        if not self.enabled:
            out = np.zeros(shape, dtype=x.dtype)
            out[:, :, padding:-padding, padding:-padding] = x
            return out
        key = ("pad", tag, shape, np.dtype(x.dtype).str)
        buf = self.buffer(key, shape, x.dtype)
        if self.debug:
            if key in self._in_flight_keys:
                raise RuntimeError(
                    f"ConvWorkspace aliasing violation: pad {key!r} requested "
                    f"while a previous pad of the same tag/shape is still in "
                    f"flight — release it with pad_release() before padding "
                    f"again (consume-synchronously rule)")
            self._in_flight_keys.add(key)
            self._in_flight_ids[id(buf)] = key
        buf[:, :, padding:-padding, padding:-padding] = x
        return buf

    def pad_release(self, buf: np.ndarray) -> None:
        """Mark a :meth:`pad` buffer consumed (debug-mode guard only).

        A no-op unless ``debug`` is set; safe to call with arrays that
        never came from :meth:`pad` (e.g. the zero-padding passthrough).
        """
        if not self.debug:
            return
        key = self._in_flight_ids.pop(id(buf), None)
        if key is not None:
            self._in_flight_keys.discard(key)

    def einsum_path(self, subscripts: str, *ops: np.ndarray):
        key = (subscripts,) + tuple(op.shape for op in ops)
        path = self._paths.get(key)
        if path is None:
            # 'greedy' is what optimize=True resolves to, so cached and
            # uncached calls contract in the same order (bit-identical).
            path = np.einsum_path(subscripts, *ops, optimize="greedy")[0]
            self._paths[key] = path
        return path

    def einsum(self, subscripts: str, *ops: np.ndarray, out: Optional[np.ndarray] = None):
        if not self.enabled:
            return np.einsum(subscripts, *ops, optimize=True, out=out)
        return np.einsum(subscripts, *ops, out=out,
                         optimize=self.einsum_path(subscripts, *ops))

    def clear(self) -> None:
        """Drop every cached buffer and contraction path (explicit invalidation)."""
        self._buffers.clear()
        self._paths.clear()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._in_flight_keys.clear()
        self._in_flight_ids.clear()

    def stats(self) -> dict:
        return {
            "buffers": len(self._buffers),
            "buffer_bytes": int(self._bytes),
            "max_bytes": int(self.max_bytes),
            "evictions": self.evictions,
            "paths": len(self._paths),
            "hits": self.hits,
            "misses": self.misses,
        }


_WORKSPACE_TLS = threading.local()
#: Every live workspace across all threads (weakly held), so process-wide
#: memory probes can aggregate buffer bytes without owning the instances.
_REGISTRY_LOCK = threading.Lock()
_WORKSPACE_REGISTRY: "weakref.WeakSet[ConvWorkspace]" = weakref.WeakSet()


def conv_workspace() -> ConvWorkspace:
    """The calling thread's conv scratch workspace (see
    :class:`ConvWorkspace`). Lazily created per thread so concurrent
    forwards (e.g. a serving scheduler next to a trainer) never share
    scratch buffers."""
    workspace = getattr(_WORKSPACE_TLS, "workspace", None)
    if workspace is None:
        workspace = ConvWorkspace()
        _WORKSPACE_TLS.workspace = workspace
    return workspace


def clear_conv_workspace() -> None:
    """Explicitly invalidate the calling thread's conv workspace cache."""
    conv_workspace().clear()


def conv_workspace_totals() -> dict:
    """Aggregate stats over every live workspace in this process.

    Live-telemetry probe target (``LiveTelemetry.add_probe``): flat
    scalars summing buffer count/bytes, path count and hit/miss/eviction
    counters across all threads' workspaces (including any
    lowered-detector plan caches). Counter reads race benignly with the
    owning threads — probes want a cheap order-of-magnitude snapshot,
    not a barrier.
    """
    with _REGISTRY_LOCK:
        workspaces = list(_WORKSPACE_REGISTRY)
    totals = {"workspaces": len(workspaces), "buffers": 0, "buffer_bytes": 0,
              "paths": 0, "hits": 0, "misses": 0, "evictions": 0}
    for ws in workspaces:
        try:
            stats = ws.stats()
        except RuntimeError:  # dict mutated mid-iteration on another thread
            continue
        for key in ("buffers", "buffer_bytes", "paths", "hits", "misses",
                    "evictions"):
            totals[key] += stats[key]
    return totals


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------

def unfold_windows(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Strided *view* of all sliding ``kernel``×``kernel`` windows.

    Returns ``(windows, out_h, out_w)`` with ``windows`` shaped
    ``(N, C, out_h, out_w, kernel, kernel)``, read-only, and backed by the
    (padded) input — no data is materialized. einsum consumes this view
    directly, so the K²-times-larger column matrix never needs to exist
    as a concrete array on the forward path.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    return windows, out_h, out_w


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold sliding ``kernel``×``kernel`` windows of an NCHW array.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``. The reshape of the
    transposed window view already materializes a fresh C-contiguous
    array (except for the 1×1/stride-1 case, where it stays a view of
    the input, which every consumer here treats as read-only).
    """
    windows, out_h, out_w = unfold_windows(x, kernel, stride, padding)
    n, c = x.shape[:2]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kernel * kernel, out_h * out_w)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add column gradients back to the input layout (im2col adjoint)."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ----------------------------------------------------------------------
# Convolution / pooling / resampling
# ----------------------------------------------------------------------

def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) in NCHW layout.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``.
    """
    x, weight = ensure_tensor(x), ensure_tensor(weight)
    n, c, h, w = x.data.shape
    out_c, in_c, kernel, kernel2 = weight.data.shape
    if in_c != c or kernel != kernel2:
        raise ValueError(
            f"conv2d weight {weight.data.shape} incompatible with input {x.data.shape}"
        )
    ws = conv_workspace()
    # Pad through the reusable workspace buffer, then unfold padding-free:
    # numerically identical to unfold_windows(x, …, padding) but without a
    # fresh np.pad allocation per call.
    padded = ws.pad("conv", x.data, padding)
    windows, out_h, out_w = unfold_windows(padded, kernel, stride, 0)
    result = ws.einsum("ockl,nchwkl->nohw", weight.data, windows)
    ws.pad_release(padded)
    del padded
    if bias is not None:
        result += bias.data.reshape(1, -1, 1, 1)
    parents = (x, weight) + ((bias,) if bias is not None else ())
    out = _make(result, parents)
    # `windows` must not be captured by the closure below: it pins the padded
    # input (and historically the materialized im2col buffer, K²× the input)
    # in memory for every conv in the graph until backward runs — and it now
    # views a shared workspace buffer that later convs overwrite. The unfold
    # is a pure function of x.data, so backward recomputes the view instead.
    del windows

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        grad4 = grad.reshape(n, out_c, out_h, out_w)
        if weight.requires_grad:
            repadded = ws.pad("conv", x.data, padding)
            rewound = unfold_windows(repadded, kernel, stride, 0)[0]
            grad_w = ws.einsum("nohw,nchwkl->ockl", grad4, rewound)
            ws.pad_release(repadded)
            _route(weight, grad_w, staged)
        if x.requires_grad:
            cols_shape = (n, c, kernel, kernel, out_h, out_w)
            grad_cols = ws.einsum(
                "ockl,nohw->ncklhw", weight.data, grad4,
                out=(ws.buffer(("gradcols", cols_shape), cols_shape)
                     if ws.enabled else None))
            # col2im reads grad_cols synchronously and allocates its own
            # output — the array handed to _route must never be a cached
            # buffer (interior grads are staged by reference).
            _route(
                x,
                col2im(grad_cols.reshape(n, c * kernel * kernel, out_h * out_w),
                       x.data.shape, kernel, stride, padding, out_h, out_w),
                staged,
            )
        if bias is not None and bias.requires_grad:
            _route(bias, grad.sum(axis=(0, 2, 3)), staged)

    _define_backward(out, backward)
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None, padding: int = 0) -> Tensor:
    """Max pooling. YOLOv3-tiny uses both stride-2 pools and a final
    stride-1 kernel-2 pool (which needs asymmetric right/bottom padding)."""
    x = ensure_tensor(x)
    stride = stride or kernel
    data = x.data
    n, c, h, w = data.shape
    pad_spec = None
    if stride == 1 and kernel == 2 and padding == 0:
        # Darknet-style "same" pooling: pad one pixel on the bottom/right
        # with -inf so output size equals input size.
        pad_spec = ((0, 0), (0, 0), (0, 1), (0, 1))
    elif stride == 1 and 2 * padding < kernel - 1:
        # Every other under-padded stride-1 config would silently shrink
        # the feature map — the darknet "same" trick is implemented for
        # kernel 2 only, so reject instead of returning the wrong size.
        raise ValueError(
            f"max_pool2d: stride-1 pooling with kernel={kernel}, "
            f"padding={padding} shrinks the feature map; only the darknet "
            f"'same' special case (kernel=2, padding=0) or an explicit "
            f"padding >= (kernel-1)/2 keeps the spatial size")
    elif padding:
        pad_spec = ((0, 0), (0, 0), (padding, padding), (padding, padding))
    if pad_spec is not None:
        data = np.pad(data, pad_spec, constant_values=-np.inf)
    ph, pw = data.shape[2], data.shape[3]
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    strides = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    arg = flat.argmax(axis=-1)
    value = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out = _make(value, (x,))
    if out.data.dtype != value.dtype:
        # _make normalizes float arrays to float32; pooling is a pure
        # selection, so a float64 input must come back float64.
        out.data = value

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        grad_padded = np.zeros((n, c, ph, pw), dtype=np.float32)
        ky, kx = np.divmod(arg, kernel)
        oy = np.arange(out_h)[None, None, :, None] * stride
        ox = np.arange(out_w)[None, None, None, :] * stride
        ni = np.arange(n)[:, None, None, None]
        ci = np.arange(c)[None, :, None, None]
        np.add.at(grad_padded, (ni, ci, oy + ky, ox + kx), grad)
        if pad_spec is not None:
            top, bottom = pad_spec[2]
            left, right = pad_spec[3]
            grad_padded = grad_padded[
                :, :, top: ph - bottom or None, left: pw - right or None
            ]
        _route(x, grad_padded, staged)

    _define_backward(out, backward)
    return out


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling (used by the discriminator's downsampling path)."""
    x = ensure_tensor(x)
    stride = stride or kernel
    cols, out_h, out_w = im2col(x.data, kernel, stride, 0)
    n, c = x.data.shape[:2]
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    out = _make(cols.mean(axis=2).reshape(n, c, out_h, out_w), (x,))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32) / (kernel * kernel)
        grad_cols = np.repeat(
            grad.reshape(n, c, 1, out_h * out_w), kernel * kernel, axis=2
        ).reshape(n, c * kernel * kernel, out_h * out_w)
        _route(x, col2im(grad_cols, x.data.shape, kernel, stride, 0, out_h, out_w), staged)

    _define_backward(out, backward)
    return out


def upsample_nearest(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling (YOLO route path, GAN generator)."""
    x = ensure_tensor(x)
    out = _make(
        x.data.repeat(scale, axis=2).repeat(scale, axis=3), (x,)
    )
    n, c, h, w = x.data.shape

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        grad = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        _route(x, grad, staged)

    _define_backward(out, backward)
    return out


def interpolate_bilinear(x: Tensor, size: Tuple[int, int]) -> Tensor:
    """Differentiable bilinear resize of an NCHW tensor to ``size``.

    This is the EOT *resize* trick: patch gradients must survive the resize
    so the generator learns scale-robust patterns.
    """
    x = ensure_tensor(x)
    n, c, h, w = x.data.shape
    out_h, out_w = size
    if (out_h, out_w) == (h, w):
        return x
    # align_corners=False convention (matches torch default).
    ys = (np.arange(out_h, dtype=np.float32) + 0.5) * (h / out_h) - 0.5
    xs = (np.arange(out_w, dtype=np.float32) + 0.5) * (w / out_w) - 0.5
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).astype(np.float32)
    wx = (xs - x0).astype(np.float32)

    def gather(iy, ix):
        return x.data[:, :, iy[:, None], ix[None, :]]

    top = gather(y0, x0) * (1 - wx)[None, None, None, :] + gather(y0, x1) * wx[None, None, None, :]
    bottom = gather(y1, x0) * (1 - wx)[None, None, None, :] + gather(y1, x1) * wx[None, None, None, :]
    value = top * (1 - wy)[None, None, :, None] + bottom * wy[None, None, :, None]
    out = _make(value.astype(np.float32), (x,))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        grad_x = np.zeros_like(x.data)
        w00 = (1 - wy)[:, None] * (1 - wx)[None, :]
        w01 = (1 - wy)[:, None] * wx[None, :]
        w10 = wy[:, None] * (1 - wx)[None, :]
        w11 = wy[:, None] * wx[None, :]
        iy0 = y0[:, None].repeat(out_w, axis=1)
        iy1 = y1[:, None].repeat(out_w, axis=1)
        ix0 = x0[None, :].repeat(out_h, axis=0)
        ix1 = x1[None, :].repeat(out_h, axis=0)
        for weight_map, iy, ix in (
            (w00, iy0, ix0),
            (w01, iy0, ix1),
            (w10, iy1, ix0),
            (w11, iy1, ix1),
        ):
            np.add.at(
                grad_x,
                (slice(None), slice(None), iy, ix),
                grad * weight_map[None, None],
            )
        _route(x, grad_x, staged)

    _define_backward(out, backward)
    return out


def grid_sample(x: Tensor, grid: np.ndarray, padding_value: float = 0.0) -> Tensor:
    """Sample ``x`` at normalized grid locations with bilinear interpolation.

    ``grid`` has shape ``(N, out_h, out_w, 2)`` with coordinates in
    ``[-1, 1]`` (x then y, matching the torch convention). Out-of-range
    samples read ``padding_value``. Gradients flow to ``x`` only; the grids
    used by the EOT pipeline are sampled transformation parameters, never
    learned, so grid gradients are unnecessary (documented substitution).
    """
    x = ensure_tensor(x)
    n, c, h, w = x.data.shape
    grid = np.asarray(grid, dtype=np.float32)
    if grid.shape[0] != n or grid.shape[-1] != 2:
        raise ValueError(f"grid shape {grid.shape} incompatible with input {x.data.shape}")
    out_h, out_w = grid.shape[1], grid.shape[2]

    gx = (grid[..., 0] + 1) * 0.5 * (w - 1)
    gy = (grid[..., 1] + 1) * 0.5 * (h - 1)
    x0 = np.floor(gx).astype(np.int64)
    y0 = np.floor(gy).astype(np.int64)
    x1, y1 = x0 + 1, y0 + 1
    wx = (gx - x0).astype(np.float32)
    wy = (gy - y0).astype(np.float32)

    def corner(iy, ix):
        valid = ((iy >= 0) & (iy < h) & (ix >= 0) & (ix < w)).astype(np.float32)
        iy_c = np.clip(iy, 0, h - 1)
        ix_c = np.clip(ix, 0, w - 1)
        batch = np.arange(n)[:, None, None]
        values = x.data[batch, :, iy_c, ix_c]  # (n, out_h, out_w, c)
        values = values * valid[..., None] + padding_value * (1 - valid[..., None])
        return values, valid, iy_c, ix_c

    v00, m00, y00, x00 = corner(y0, x0)
    v01, m01, y01, x01 = corner(y0, x1)
    v10, m10, y10, x10 = corner(y1, x0)
    v11, m11, y11, x11 = corner(y1, x1)
    w00 = ((1 - wy) * (1 - wx))[..., None]
    w01 = ((1 - wy) * wx)[..., None]
    w10 = (wy * (1 - wx))[..., None]
    w11 = (wy * wx)[..., None]
    value = v00 * w00 + v01 * w01 + v10 * w10 + v11 * w11
    out = _make(value.transpose(0, 3, 1, 2).astype(np.float32), (x,))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32).transpose(0, 2, 3, 1)
        grad_x = np.zeros_like(x.data)
        batch = np.arange(n)[:, None, None]
        for weight_map, mask, iy, ix in (
            (w00, m00, y00, x00),
            (w01, m01, y01, x01),
            (w10, m10, y10, x10),
            (w11, m11, y11, x11),
        ):
            contrib = grad * weight_map * mask[..., None]
            np.add.at(grad_x, (batch, slice(None), iy, ix), contrib)
        _route(x, grad_x, staged)

    _define_backward(out, backward)
    return out


# ----------------------------------------------------------------------
# Dense / activations
# ----------------------------------------------------------------------

def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` shaped (out, in)."""
    x, weight = ensure_tensor(x), ensure_tensor(weight)
    result = x.data @ weight.data.T
    if bias is not None:
        result = result + bias.data
    parents = (x, weight) + ((bias,) if bias is not None else ())
    out = _make(result, parents)

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        _route(x, grad @ weight.data, staged)
        if weight.requires_grad:
            _route(weight, grad.reshape(-1, grad.shape[-1]).T @ x.data.reshape(-1, x.data.shape[-1]), staged)
        if bias is not None and bias.requires_grad:
            _route(bias, grad.reshape(-1, grad.shape[-1]).sum(axis=0), staged)

    _define_backward(out, backward)
    return out


def relu(x: Tensor) -> Tensor:
    x = ensure_tensor(x)
    mask = x.data > 0
    out = _make(x.data * mask, (x,))

    def backward(grad, staged):
        _route(x, np.asarray(grad) * mask, staged)

    _define_backward(out, backward)
    return out


def leaky_relu(x: Tensor, slope: float = 0.1) -> Tensor:
    """Leaky ReLU with darknet's default slope of 0.1."""
    x = ensure_tensor(x)
    mask = x.data > 0
    out = _make(np.where(mask, x.data, slope * x.data), (x,))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        _route(x, np.where(mask, grad, slope * grad), staged)

    _define_backward(out, backward)
    return out


def sigmoid(x: Tensor) -> Tensor:
    x = ensure_tensor(x)
    value = stable_sigmoid(x.data)
    out = _make(value, (x,))

    def backward(grad, staged):
        _route(x, np.asarray(grad) * value * (1 - value), staged)

    _define_backward(out, backward)
    return out


def tanh(x: Tensor) -> Tensor:
    x = ensure_tensor(x)
    value = np.tanh(x.data)
    out = _make(value, (x,))

    def backward(grad, staged):
        _route(x, np.asarray(grad) * (1 - value * value), staged)

    _define_backward(out, backward)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    value = e / e.sum(axis=axis, keepdims=True)
    out = _make(value.astype(np.float32), (x,))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        dot = (grad * value).sum(axis=axis, keepdims=True)
        _route(x, value * (grad - dot), staged)

    _define_backward(out, backward)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_z
    out = _make(value.astype(np.float32), (x,))
    soft = np.exp(value)

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        _route(x, grad - soft * grad.sum(axis=axis, keepdims=True), staged)

    _define_backward(out, backward)
    return out


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------

def cross_entropy(logits: Tensor, target: np.ndarray, axis: int = -1) -> Tensor:
    """Mean cross-entropy of integer class targets against logits.

    This is the :math:`\\ell` of the paper's Eq. 2 — the attack drives the
    detector's class logits toward the attacker's target class ``t``.
    """
    logits = ensure_tensor(logits)
    target = np.asarray(target)
    log_probs = log_softmax(logits, axis=axis)
    if axis != -1 and axis != logits.data.ndim - 1:
        raise ValueError("cross_entropy currently supports the last axis only")
    flat = log_probs.reshape((-1, logits.data.shape[-1]))
    index = (np.arange(flat.data.shape[0]), target.reshape(-1))
    picked = flat[index]
    return -picked.mean()


def bce_with_logits(logits: Tensor, target, weight=None) -> Tensor:
    """Numerically stable binary cross-entropy on logits (mean-reduced)."""
    logits = ensure_tensor(logits)
    target = np.asarray(target, dtype=np.float32)
    x = logits.data
    value = np.maximum(x, 0) - x * target + np.log1p(np.exp(-np.abs(x)))
    if weight is not None:
        weight = np.asarray(weight, dtype=np.float32)
        value = value * weight
    out = _make(np.asarray(value.mean(), dtype=np.float32), (logits,))
    count = value.size

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        sig = stable_sigmoid(x)
        local = (sig - target) / count
        if weight is not None:
            local = local * weight
        _route(logits, grad * local, staged)

    _define_backward(out, backward)
    return out


def binary_cross_entropy(probs: Tensor, target, eps: float = 1e-7) -> Tensor:
    """BCE on probabilities (used by the GAN loss in Eq. 1)."""
    probs = ensure_tensor(probs)
    target = np.asarray(target, dtype=np.float32)
    p = clip(probs, eps, 1.0 - eps)
    loss = -(target * log(p) + (1.0 - target) * log(1.0 - p))
    return loss.mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    prediction = ensure_tensor(prediction)
    target = np.asarray(target, dtype=np.float32) if not isinstance(target, Tensor) else target
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    prediction = ensure_tensor(prediction)
    target = np.asarray(target, dtype=np.float32) if not isinstance(target, Tensor) else target
    return (prediction - target).abs().mean()


# ----------------------------------------------------------------------
# Normalization / regularization
# ----------------------------------------------------------------------

def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over an NCHW tensor's (N, H, W) axes.

    When ``training`` is true, batch statistics are used and the running
    buffers are updated in place; at inference the running buffers are used,
    matching darknet/torch semantics.
    """
    x = ensure_tensor(x)
    axes = (0, 2, 3)
    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        n_elems = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
        unbiased = var * n_elems / max(n_elems - 1, 1)
        running_mean *= 1 - momentum
        running_mean += momentum * mean
        running_var *= 1 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
    value = gamma.data.reshape(1, -1, 1, 1) * x_hat + beta.data.reshape(1, -1, 1, 1)
    out = _make(value.astype(np.float32), (x, gamma, beta))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        if gamma.requires_grad:
            _route(gamma, (grad * x_hat).sum(axis=axes), staged)
        if beta.requires_grad:
            _route(beta, grad.sum(axis=axes), staged)
        if x.requires_grad:
            g = grad * gamma.data.reshape(1, -1, 1, 1)
            if training:
                m = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
                sum_g = g.sum(axis=axes, keepdims=True)
                sum_gx = (g * x_hat).sum(axis=axes, keepdims=True)
                grad_x = (
                    inv_std.reshape(1, -1, 1, 1)
                    * (g - sum_g / m - x_hat * sum_gx / m)
                )
            else:
                grad_x = g * inv_std.reshape(1, -1, 1, 1)
            _route(x, grad_x, staged)

    _define_backward(out, backward)
    return out


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity at inference."""
    if not training or rate <= 0.0:
        return ensure_tensor(x)
    x = ensure_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep).astype(np.float32) / keep
    out = _make(x.data * mask, (x,))

    def backward(grad, staged):
        _route(x, np.asarray(grad) * mask, staged)

    _define_backward(out, backward)
    return out
