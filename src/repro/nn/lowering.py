"""Eval-time graph lowering for the frozen YOLOv3-tiny detector.

The inference hot path spends ~81% of its wall time in ``forward``
(``BENCH_hotpath.json``). For a *frozen* detector — eval mode, running
batch-norm statistics, no gradients — most of the per-layer work the
training graph does is pure overhead: batch-norm is an affine map that
can be folded into the conv weights, the leaky-ReLU is a two-op epilogue
that never needs its own graph node, and every buffer/einsum path can be
resolved once instead of per call.

:func:`lower_detector` (exposed as ``TinyYolo.lower()``) runs a one-shot
compile pass over an eval-mode detector:

* **BN folding** — each ``ConvBlock``'s batch-norm is folded into the
  conv weights/bias (:func:`fold_conv_bn`): ``w' = w·γ/√(σ²+ε)``,
  ``b' = β − μ·γ/√(σ²+ε)``. One GEMM replaces GEMM + 4 normalization
  passes. Folding reassociates float32 products, so lowered activations
  match the reference within :data:`LOWERING_ATOL` per layer rather than
  bit-exactly (the parity oracle checks both this and end-to-end
  detection-trace identity).
* **Fused epilogue** — bias add and leaky-ReLU run in place on the conv
  output buffer (``max(y, slope·y)``), no intermediate tensors.
* **Plan cache** — the lowered graph owns a private
  :class:`~repro.nn.functional.ConvWorkspace` and compiles one
  :class:`_Plan` per input batch shape: per-layer pad/output/scratch
  buffers pre-sized once, einsum contraction paths pre-resolved, 1×1
  convs routed through a direct GEMM. Re-running the same shape does
  zero allocation. Pads go through ``ConvWorkspace.pad`` so the
  debug-mode in-flight guard can prove the executor never aliases a
  live pad buffer.

The result is a :class:`LoweredDetector` with the same ``forward``
contract as :class:`~repro.detection.model.TinyYolo` — ``(coarse, fine)``
head tensors — accepted everywhere a detector flows today
(``batched_detections``, ``AvPipeline``, the eval protocol, the serving
backends). It is strictly inference-only: it refuses gradient-tracked
inputs and cannot be put back into training mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .functional import ConvWorkspace
from .tensor import Tensor, is_grad_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .layers import BatchNorm2d, Conv2d, ConvBlock

__all__ = [
    "LOWERING_ATOL",
    "fold_conv_bn",
    "FusedConvSpec",
    "LoweredDetector",
    "lower_detector",
    "layer_parity",
]

#: Documented per-layer tolerance of the lowering parity oracle.
#:
#: BN folding computes ``(w·s)·x + b`` where eval-mode batch-norm computes
#: ``s·(w·x) + b`` — the same real-valued function, associated differently
#: in float32. With feature magnitudes O(1–10) and ≤ 9·C products per
#: output, the reassociation error stays well below 1e-4 absolute at every
#: layer (measured ~1e-6..1e-5 on the bench scenario); discrete outcomes
#: (detection counts, classes, NMS order, planner actions) are required to
#: match exactly on top of this.
LOWERING_ATOL = 1e-4


# ----------------------------------------------------------------------
# Folding
# ----------------------------------------------------------------------

def fold_conv_bn(conv: "Conv2d", bn: "BatchNorm2d") -> Tuple[np.ndarray, np.ndarray]:
    """Fold eval-mode batch-norm into conv weights and bias.

    Eval-mode BN is the per-channel affine ``y = γ·(x−μ)/√(σ²+ε) + β``
    over the conv output ``x = w∗input (+ b)``. Returns ``(weight, bias)``
    with ``weight' = w·scale`` and ``bias' = (b−μ)·scale + β`` where
    ``scale = γ/√(σ²+ε)`` — so ``weight'∗input + bias'`` equals the
    original conv→BN composition on the running statistics.
    """
    scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
    weight = (conv.weight.data * scale[:, None, None, None]).astype(np.float32)
    bias = conv.bias.data if conv.bias is not None else 0.0
    bias = ((bias - bn.running_mean) * scale + bn.beta.data).astype(np.float32)
    return weight, bias


class FusedConvSpec:
    """One lowered conv layer: folded weights + fused epilogue.

    ``slope`` is the leaky-ReLU slope of the fused activation, or ``None``
    for a linear head conv. Shape-independent — per-shape buffers live in
    the :class:`_Plan` entries built from this spec.
    """

    __slots__ = ("name", "weight", "weight_2d", "bias_col", "kernel",
                 "stride", "padding", "out_channels", "slope")

    def __init__(self, name: str, weight: np.ndarray, bias: np.ndarray,
                 stride: int, padding: int, slope: Optional[float]):
        self.name = name
        self.weight = np.ascontiguousarray(weight, dtype=np.float32)
        self.out_channels, _, self.kernel, _ = weight.shape
        #: (O, C) matrix for the 1×1 direct-GEMM fast path.
        self.weight_2d = self.weight.reshape(self.out_channels, -1)
        #: Bias pre-shaped for in-place broadcast onto an (N, O, H, W) buffer.
        self.bias_col = np.ascontiguousarray(
            bias, dtype=np.float32).reshape(1, -1, 1, 1)
        self.stride = stride
        self.padding = padding
        self.slope = slope

    @classmethod
    def from_block(cls, name: str, block: "ConvBlock") -> "FusedConvSpec":
        weight, bias = fold_conv_bn(block.conv, block.bn)
        return cls(name, weight, bias, block.conv.stride,
                   block.conv.padding, block.act.slope)

    @classmethod
    def from_conv(cls, name: str, conv: "Conv2d") -> "FusedConvSpec":
        bias = (conv.bias.data if conv.bias is not None
                else np.zeros(conv.weight.data.shape[0], dtype=np.float32))
        return cls(name, conv.weight.data, bias, conv.stride,
                   conv.padding, slope=None)


# ----------------------------------------------------------------------
# Per-shape executors (plan entries)
# ----------------------------------------------------------------------

def _pool_windows(data: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Read-only strided view of pooling windows (no materialization)."""
    n, c, h, w = data.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s = data.strides
    return np.lib.stride_tricks.as_strided(
        data, shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False)


class _ConvExec:
    """One fused conv at one input shape: pad → GEMM/einsum → epilogue.

    All output/scratch buffers are pre-sized through the plan's workspace
    at build time; ``run`` allocates nothing. The pad goes through
    ``ConvWorkspace.pad`` per call (interior rewrite of the cached
    buffer) so the debug in-flight guard covers the executor.
    """

    __slots__ = ("spec", "ws", "out", "tmp", "path", "in_shape", "one_by_one")

    def __init__(self, spec: FusedConvSpec, in_shape: Tuple[int, ...],
                 ws: ConvWorkspace):
        self.spec = spec
        self.ws = ws
        n, c, h, w = in_shape
        self.in_shape = in_shape
        k, p, s = spec.kernel, spec.padding, spec.stride
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        out_shape = (n, spec.out_channels, out_h, out_w)
        self.out = ws.buffer(("lowered.out", spec.name, out_shape), out_shape)
        self.tmp = (ws.buffer(("lowered.tmp", spec.name, out_shape), out_shape)
                    if spec.slope is not None else None)
        self.one_by_one = (k == 1 and s == 1 and p == 0)
        if self.one_by_one:
            self.path = None
        else:
            # Resolve the contraction order once against a representative
            # windows view (same shapes/strides the hot loop will use).
            padded = ws.pad(spec.name, np.zeros(in_shape, np.float32), p)
            windows = _pool_windows(padded, k, s)
            self.path = ws.einsum_path("ockl,nchwkl->nohw",
                                       spec.weight, windows)
            ws.pad_release(padded)

    def run(self, x: np.ndarray) -> np.ndarray:
        spec = self.spec
        out = self.out
        if self.one_by_one:
            n, c, h, w = x.shape
            # (O, C) @ (N, C, H·W) → (N, O, H·W): both sides are views of
            # contiguous plan buffers, so this is one allocation-free GEMM.
            np.matmul(spec.weight_2d, x.reshape(n, c, h * w),
                      out=out.reshape(n, spec.out_channels, h * w))
        else:
            padded = self.ws.pad(spec.name, x, spec.padding)
            windows = _pool_windows(padded, spec.kernel, spec.stride)
            np.einsum("ockl,nchwkl->nohw", spec.weight, windows,
                      out=out, optimize=self.path)
            self.ws.pad_release(padded)
        out += spec.bias_col
        if spec.slope is not None:
            # leaky(x) = max(x, slope·x) for slope < 1, fused in place.
            np.multiply(out, spec.slope, out=self.tmp)
            np.maximum(out, self.tmp, out=out)
        return out


class _PoolExec:
    """Stride-2 (or darknet stride-1 'same') max pool, reduction-only.

    Inference needs no argmax bookkeeping — k² shifted-slice ``maximum``
    passes into a pre-sized buffer replace the windowed argmax +
    take_along_axis pair of the differentiable path (a tuple-axis ``max``
    over the strided 6-D window view is ~10× slower than slice maxima:
    it loses the contiguous inner loop).
    """

    __slots__ = ("kernel", "stride", "out", "padbuf")

    def __init__(self, name: str, in_shape: Tuple[int, ...], kernel: int,
                 stride: int, ws: ConvWorkspace):
        self.kernel = kernel
        self.stride = stride
        n, c, h, w = in_shape
        self.padbuf = None
        if stride == 1:
            if kernel != 2:
                raise ValueError("lowered same-pool supports kernel=2 only")
            # Darknet 'same' pool: one -inf pixel on the bottom/right.
            # Borders are written once here and never touched again.
            self.padbuf = ws.buffer(("lowered.pool_pad", name,
                                     (n, c, h + 1, w + 1)), (n, c, h + 1, w + 1))
            self.padbuf[:, :, h, :] = -np.inf
            self.padbuf[:, :, :, w] = -np.inf
            out_shape = (n, c, h, w)
        else:
            out_shape = (n, c, (h - kernel) // stride + 1,
                         (w - kernel) // stride + 1)
        self.out = ws.buffer(("lowered.pool_out", name, out_shape), out_shape)

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.padbuf is not None:
            self.padbuf[:, :, :x.shape[2], :x.shape[3]] = x
            x = self.padbuf
        k, s, out = self.kernel, self.stride, self.out
        oh, ow = out.shape[2], out.shape[3]
        np.copyto(out, x[:, :, :s * oh:s, :s * ow:s])
        for i in range(k):
            for j in range(k):
                if i or j:
                    np.maximum(out, x[:, :, i:i + s * oh:s, j:j + s * ow:s],
                               out=out)
        return out


class _UpsampleExec:
    """2× nearest-neighbour upsample via broadcast assignment."""

    __slots__ = ("out", "scale")

    def __init__(self, name: str, in_shape: Tuple[int, ...], scale: int,
                 ws: ConvWorkspace):
        n, c, h, w = in_shape
        self.scale = scale
        self.out = ws.buffer(("lowered.up", name,
                              (n, c, h * scale, w * scale)),
                             (n, c, h * scale, w * scale))

    def run(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.scale
        self.out.reshape(n, c, h, s, w, s)[...] = x[:, :, :, None, :, None]
        return self.out


class _ConcatExec:
    """Channel concatenation into a pre-sized buffer."""

    __slots__ = ("out", "split")

    def __init__(self, name: str, shape_a: Tuple[int, ...],
                 shape_b: Tuple[int, ...], ws: ConvWorkspace):
        n, c1, h, w = shape_a
        c2 = shape_b[1]
        self.split = c1
        self.out = ws.buffer(("lowered.cat", name, (n, c1 + c2, h, w)),
                             (n, c1 + c2, h, w))

    def run(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.out[:, :self.split] = a
        self.out[:, self.split:] = b
        return self.out


class _Plan:
    """Compiled execution plan of the TinyYolo graph for one input shape.

    Mirrors :meth:`repro.detection.model.TinyYolo.forward` exactly —
    backbone with five stride-2 pools and the stride-1 'same' pool, the
    layer-13 route, the coarse head, and the upsample/concat fine head.

    ``conv_exec`` is the per-layer executor family: the lowered fp plans
    use :class:`_ConvExec`; the int8 plans of :mod:`repro.nn.quant` pass
    their own executor class built from quantized specs. Everything else
    — pools, upsample, concat, the graph topology itself — is shared
    between the two plan families.
    """

    def __init__(self, specs: Dict[str, FusedConvSpec],
                 in_shape: Tuple[int, ...], ws: ConvWorkspace,
                 conv_exec=None):
        if conv_exec is None:
            conv_exec = _ConvExec

        def conv(name, shape):
            exec_ = conv_exec(specs[name], shape, ws)
            return exec_, exec_.out.shape

        shape = in_shape
        self.convs: Dict[str, _ConvExec] = {}
        self.pools: List[_PoolExec] = []
        for index, name in enumerate(
                ("conv1", "conv2", "conv3", "conv4", "conv5")):
            self.convs[name], shape = conv(name, shape)
            if name != "conv5":
                pool = _PoolExec(f"pool{index + 1}", shape, 2, 2, ws)
                self.pools.append(pool)
                shape = pool.out.shape
        route_fine_shape = shape
        pool5 = _PoolExec("pool5", shape, 2, 2, ws)
        self.pools.append(pool5)
        self.convs["conv6"], shape = conv("conv6", pool5.out.shape)
        self.same_pool = _PoolExec("pool6", shape, 2, 1, ws)
        self.convs["conv7"], shape = conv("conv7", self.same_pool.out.shape)
        self.convs["conv8"], route_13_shape = conv("conv8", shape)
        self.convs["conv9"], shape = conv("conv9", route_13_shape)
        self.convs["head_coarse"], _ = conv("head_coarse", shape)
        self.convs["conv10"], shape = conv("conv10", route_13_shape)
        self.upsample = _UpsampleExec("up", shape, 2, ws)
        self.concat = _ConcatExec("route", self.upsample.out.shape,
                                  route_fine_shape, ws)
        self.convs["conv11"], shape = conv("conv11", self.concat.out.shape)
        self.convs["head_fine"], _ = conv("head_fine", shape)

    def run(self, x: np.ndarray,
            capture: Optional[Dict[str, np.ndarray]] = None,
            tap=None) -> Tuple[np.ndarray, np.ndarray]:
        """Execute the plan. ``capture`` records each conv's *output*
        (parity oracle); ``tap(name, array)`` observes each conv's *input*
        just before it runs (the quantization calibration pass records
        activation ranges through it). Both default to ``None`` and cost
        nothing on the hot path."""
        convs, pools = self.convs, self.pools

        def emit(name, value):
            if capture is not None:
                capture[name] = value.copy()
            return value

        def conv(name, value):
            if tap is not None:
                tap(name, value)
            return convs[name].run(value)

        x = emit("conv1", conv("conv1", x))
        x = pools[0].run(x)
        x = emit("conv2", conv("conv2", x))
        x = pools[1].run(x)
        x = emit("conv3", conv("conv3", x))
        x = pools[2].run(x)
        x = emit("conv4", conv("conv4", x))
        x = pools[3].run(x)
        route_fine = emit("conv5", conv("conv5", x))
        x = pools[4].run(route_fine)
        x = emit("conv6", conv("conv6", x))
        x = self.same_pool.run(x)
        x = emit("conv7", conv("conv7", x))
        route_13 = emit("conv8", conv("conv8", x))
        coarse = emit("head_coarse",
                      conv("head_coarse", conv("conv9", route_13)))
        if capture is not None:
            capture["conv9"] = convs["conv9"].out.copy()
        up = self.upsample.run(emit("conv10", conv("conv10", route_13)))
        merged = self.concat.run(up, route_fine)
        fine = emit("head_fine", conv("head_fine", conv("conv11", merged)))
        if capture is not None:
            capture["conv11"] = convs["conv11"].out.copy()
        return coarse, fine


# ----------------------------------------------------------------------
# Public surface
# ----------------------------------------------------------------------

#: ConvBlock attribute names on TinyYolo, in forward order.
_BLOCK_NAMES = ("conv1", "conv2", "conv3", "conv4", "conv5", "conv6",
                "conv7", "conv8", "conv9", "conv10", "conv11")
_HEAD_NAMES = ("head_coarse", "head_fine")


class CompiledDetector:
    """Shared machinery of the compiled (inference-only) detector views.

    Both plan families — the lowered fp executor (:class:`LoweredDetector`)
    and the int8 executor (:class:`repro.nn.quant.QuantizedDetector`) —
    are a spec dict plus a per-shape :class:`_Plan` cache over a private
    :class:`~repro.nn.functional.ConvWorkspace`. Subclasses set
    ``kind`` (error messages), ``conv_exec`` (the per-layer executor
    class) and fill ``self.specs`` before first use.

    Same ``forward`` contract as the source model — call with an NCHW
    tensor (or array), get ``(coarse, fine)`` raw head tensors — plus the
    same ``config`` attribute, so it drops into ``batched_detections``,
    :class:`~repro.av.pipeline.AvPipeline`, the eval protocol and the
    serving backends unchanged. Weights are folded copies: later mutation
    of the source model does **not** propagate (re-compile after loading
    a new checkpoint).
    """

    kind = "compiled"
    #: Per-layer executor class handed to :class:`_Plan`.
    conv_exec = None  # subclasses set

    def __init__(self, model, debug: bool = False):
        if model.training:
            raise RuntimeError(
                f"{self.kind} compilation requires an eval-mode detector: "
                "BN folding bakes in the running statistics, which training "
                "mode would neither use nor keep fixed — call model.eval() "
                "first")
        self.config = model.config
        self.training = False
        # Private plan cache: count-unbounded within byte budget (one plan
        # per distinct batch shape; a detector sees few), sized so the
        # full-profile plan fits.
        self.workspace = ConvWorkspace(max_buffers=512, debug=debug)
        self.specs: Dict[str, FusedConvSpec] = {}
        self._plans: Dict[Tuple[int, ...], _Plan] = {}

    # -- Module-surface compatibility ----------------------------------
    def eval(self) -> "CompiledDetector":
        return self

    def train(self, mode: bool = True) -> "CompiledDetector":
        if mode:
            raise RuntimeError(f"a {type(self).__name__} is inference-only; "
                               "train the source TinyYolo instead")
        return self

    def checkpoint_metadata(self) -> dict:
        return {
            "input_size": self.config.input_size,
            "num_classes": self.config.num_classes,
            "width_multiplier": self.config.width_multiplier,
        }

    # -- execution ------------------------------------------------------
    def _plan_for(self, shape: Tuple[int, ...]) -> _Plan:
        plan = self._plans.get(shape)
        if plan is None:
            plan = self._plans[shape] = _Plan(
                self.specs, shape, self.workspace, conv_exec=self.conv_exec)
        return plan

    def forward_arrays(self, data: np.ndarray,
                       capture: Optional[Dict[str, np.ndarray]] = None,
                       tap=None) -> Tuple[np.ndarray, np.ndarray]:
        """Raw-array forward: ``(coarse, fine)`` numpy head outputs.

        The returned arrays are *copies* of the plan buffers, safe to hold
        across subsequent forwards. ``tap(name, array)`` observes each
        conv input (calibration); ``capture`` records conv outputs.
        """
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 4 or data.shape[1] != 3:
            raise ValueError(f"expected NCHW 3-channel input, got {data.shape}")
        if (data.shape[-1] != self.config.input_size
                or data.shape[-2] != self.config.input_size):
            raise ValueError(
                f"input spatial size {data.shape[-2:]} != configured "
                f"{self.config.input_size}")
        coarse, fine = self._plan_for(data.shape).run(data, capture=capture,
                                                      tap=tap)
        return coarse.copy(), fine.copy()

    def forward(self, x) -> Tuple[Tensor, Tensor]:
        """Run the compiled detector; same contract as ``TinyYolo.forward``.

        Raises if asked to participate in a gradient graph — the compiled
        executor records no backward closures, so silently returning
        detached tensors would break an attack loop that expects
        gradients to flow.
        """
        if isinstance(x, Tensor):
            if x.requires_grad and is_grad_enabled():
                raise RuntimeError(
                    f"{type(self).__name__} is inference-only: input "
                    "requires grad — use the unlowered TinyYolo for "
                    "attack/training forwards (or wrap in no_grad())")
            data = x.data
        else:
            data = np.asarray(x)
        coarse, fine = self.forward_arrays(data)
        return Tensor(coarse), Tensor(fine)

    __call__ = forward


class LoweredDetector(CompiledDetector):
    """Inference-lowered view of a frozen :class:`TinyYolo`.

    BN folded into the conv weights, fused bias/leaky-ReLU epilogues,
    per-shape fp32 plans. ``debug=True`` arms the plan workspace's
    in-flight pad guard (the aliasing oracle); leave it off on hot paths.
    """

    kind = "lowered"
    conv_exec = _ConvExec

    def __init__(self, model, debug: bool = False):
        super().__init__(model, debug=debug)
        for name in _BLOCK_NAMES:
            self.specs[name] = FusedConvSpec.from_block(name, getattr(model, name))
        for name in _HEAD_NAMES:
            self.specs[name] = FusedConvSpec.from_conv(name, getattr(model, name))


def lower_detector(model, debug: bool = False) -> LoweredDetector:
    """One-shot lowering pass (the function behind ``TinyYolo.lower()``)."""
    return LoweredDetector(model, debug=debug)


def layer_parity(model, lowered: LoweredDetector,
                 x: np.ndarray) -> Dict[str, float]:
    """Per-layer max |Δ| between the lowered executor and the reference.

    Runs the eval-mode reference blocks and the lowered plan on the same
    input and returns ``{layer_name: max_abs_delta}`` for every fused
    conv (ConvBlocks and head convs). The parity oracle asserts every
    value ≤ :data:`LOWERING_ATOL`.
    """
    from . import functional as F
    from .tensor import concatenate, no_grad

    if model.training:
        raise RuntimeError("layer_parity needs the reference in eval mode")
    x = np.ascontiguousarray(x, dtype=np.float32)
    captured: Dict[str, np.ndarray] = {}
    lowered.forward_arrays(x, capture=captured)

    reference: Dict[str, np.ndarray] = {}
    with no_grad():
        t = Tensor(x)
        # Mirror of TinyYolo.forward, recording each fused layer's output.
        t = model.conv1(t); reference["conv1"] = t.data
        t = F.max_pool2d(t, 2, 2)
        t = model.conv2(t); reference["conv2"] = t.data
        t = F.max_pool2d(t, 2, 2)
        t = model.conv3(t); reference["conv3"] = t.data
        t = F.max_pool2d(t, 2, 2)
        t = model.conv4(t); reference["conv4"] = t.data
        t = F.max_pool2d(t, 2, 2)
        route_fine = model.conv5(t); reference["conv5"] = route_fine.data
        t = F.max_pool2d(route_fine, 2, 2)
        t = model.conv6(t); reference["conv6"] = t.data
        t = F.max_pool2d(t, 2, 1)
        t = model.conv7(t); reference["conv7"] = t.data
        route_13 = model.conv8(t); reference["conv8"] = route_13.data
        t = model.conv9(route_13); reference["conv9"] = t.data
        reference["head_coarse"] = model.head_coarse(t).data
        t = model.conv10(route_13); reference["conv10"] = t.data
        up = F.upsample_nearest(t, 2)
        merged = concatenate([up, route_fine], axis=1)
        t = model.conv11(merged); reference["conv11"] = t.data
        reference["head_fine"] = model.head_fine(t).data

    return {name: float(np.max(np.abs(captured[name] - reference[name])))
            for name in reference}
