"""Reverse-mode automatic differentiation on top of numpy arrays.

This module provides the :class:`Tensor` class, the foundation of the whole
reproduction: the YOLOv3-tiny detector, the GAN and the differentiable EOT
pipeline are all built from these tensors so that attack gradients can flow
from the detector's loss back into the patch generator, exactly as the paper
requires.

The design is deliberately small and explicit:

* a ``Tensor`` wraps a ``float32`` (or integer) numpy array;
* every differentiable operation records a backward closure and its parent
  tensors;
* :meth:`Tensor.backward` runs a topological sweep over the recorded graph.

Gradient accumulation matches the usual deep-learning convention: gradients
add across multiple uses of the same tensor, and ``zero_grad`` (on modules or
optimizers) resets them between steps.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


class no_grad:
    """Context manager that disables graph recording.

    Used by inference paths (e.g. running the detector on evaluation videos)
    where building the autograd graph would only waste memory.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_enabled


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting replicates values along new or size-1 axes during the
    forward pass; the corresponding backward pass must therefore *sum* the
    incoming gradient over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting added.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless an integer dtype
        is passed explicitly via a pre-built numpy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_staged")

    # Make numpy defer to our reflected operators (ndarray * Tensor must
    # call Tensor.__rmul__, not broadcast over the Tensor object).
    __array_ufunc__ = None

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, np.ndarray) and data.dtype.kind in "iub":
            self.data = data
        else:
            self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a differentiable copy of this tensor."""
        out = _make(self.data.copy(), (self,))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=np.float32), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        order = self._topological_order()
        grads = {id(self): grad}
        self._accumulate(grad)
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            node._backward_into(node_grad, grads)

    def _backward_into(self, grad: np.ndarray, grads: dict) -> None:
        # The backward closure accumulates directly into parent .grad for
        # leaves and stages gradients for interior nodes via the shared dict.
        self._staged = grads  # type: ignore[attr-defined]
        try:
            self._backward(grad)  # type: ignore[misc]
        finally:
            del self._staged  # type: ignore[attr-defined]

    def _topological_order(self) -> List["Tensor"]:
        order: List[Tensor] = []
        seen = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Operator overloads (implementations live in this module to avoid a
    # circular import with functional.py; functional re-exports them).
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        return add(self, other)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return sub(ensure_tensor(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return div(ensure_tensor(other), self)

    def __neg__(self) -> "Tensor":
        return mul(self, -1.0)

    def __pow__(self, exponent: float) -> "Tensor":
        return power(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        return getitem(self, index)

    # Convenience methods mirroring the functional API -------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return transpose(self, axes or None)

    def exp(self) -> "Tensor":
        return exp(self)

    def log(self) -> "Tensor":
        return log(self)

    def clip(self, low: float, high: float) -> "Tensor":
        return clip(self, low, high)

    def abs(self) -> "Tensor":
        return absolute(self)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_max(self, axis=axis, keepdims=keepdims)


def ensure_tensor(value: ArrayLike) -> Tensor:
    """Coerce arrays and scalars to (non-differentiable) tensors."""
    return value if isinstance(value, Tensor) else Tensor(value)


def _make(data: np.ndarray, parents: Iterable[Tensor]) -> Tensor:
    """Create an interior graph node whose grad requirement is inherited."""
    parents = tuple(parents)
    out = Tensor(data)
    if _grad_enabled and any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = tuple(p for p in parents if p.requires_grad)
    return out


def _route(parent: Tensor, grad: np.ndarray, grads: dict) -> None:
    """Send ``grad`` to ``parent`` — stage it if the parent is interior."""
    if not parent.requires_grad:
        return
    grad = unbroadcast(np.asarray(grad, dtype=np.float32), parent.data.shape)
    if parent._backward is not None:
        key = id(parent)
        if key in grads:
            grads[key] = grads[key] + grad
        else:
            grads[key] = grad
    parent._accumulate(grad)


def _define_backward(out: Tensor, fn: Callable[[np.ndarray, dict], None]) -> None:
    if not out.requires_grad:
        return

    def backward(grad: np.ndarray) -> None:
        fn(grad, out._staged)  # type: ignore[attr-defined]

    out._backward = backward


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = _make(a.data + b.data, (a, b))

    def backward(grad, staged):
        _route(a, grad, staged)
        _route(b, grad, staged)

    _define_backward(out, backward)
    return out


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = _make(a.data - b.data, (a, b))

    def backward(grad, staged):
        _route(a, grad, staged)
        _route(b, -grad, staged)

    _define_backward(out, backward)
    return out


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = _make(a.data * b.data, (a, b))

    def backward(grad, staged):
        _route(a, grad * b.data, staged)
        _route(b, grad * a.data, staged)

    _define_backward(out, backward)
    return out


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = _make(a.data / b.data, (a, b))

    def backward(grad, staged):
        _route(a, grad / b.data, staged)
        _route(b, -grad * a.data / (b.data * b.data), staged)

    _define_backward(out, backward)
    return out


def power(a: ArrayLike, exponent: float) -> Tensor:
    a = ensure_tensor(a)
    out = _make(a.data ** exponent, (a,))

    def backward(grad, staged):
        _route(a, grad * exponent * a.data ** (exponent - 1), staged)

    _define_backward(out, backward)
    return out


def exp(a: ArrayLike) -> Tensor:
    a = ensure_tensor(a)
    value = np.exp(a.data)
    out = _make(value, (a,))

    def backward(grad, staged):
        _route(a, grad * value, staged)

    _define_backward(out, backward)
    return out


def log(a: ArrayLike, eps: float = 1e-12) -> Tensor:
    a = ensure_tensor(a)
    out = _make(np.log(a.data + eps), (a,))

    def backward(grad, staged):
        _route(a, grad / (a.data + eps), staged)

    _define_backward(out, backward)
    return out


def sqrt(a: ArrayLike) -> Tensor:
    a = ensure_tensor(a)
    value = np.sqrt(a.data)
    out = _make(value, (a,))

    def backward(grad, staged):
        _route(a, grad * 0.5 / np.maximum(value, 1e-12), staged)

    _define_backward(out, backward)
    return out


def absolute(a: ArrayLike) -> Tensor:
    a = ensure_tensor(a)
    out = _make(np.abs(a.data), (a,))

    def backward(grad, staged):
        _route(a, grad * np.sign(a.data), staged)

    _define_backward(out, backward)
    return out


def clip(a: ArrayLike, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through inside the active range."""
    a = ensure_tensor(a)
    out = _make(np.clip(a.data, low, high), (a,))
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad, staged):
        _route(a, grad * mask, staged)

    _define_backward(out, backward)
    return out


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = _make(np.maximum(a.data, b.data), (a, b))
    a_wins = a.data >= b.data

    def backward(grad, staged):
        _route(a, grad * a_wins, staged)
        _route(b, grad * (~a_wins), staged)

    _define_backward(out, backward)
    return out


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = _make(np.minimum(a.data, b.data), (a, b))
    a_wins = a.data <= b.data

    def backward(grad, staged):
        _route(a, grad * a_wins, staged)
        _route(b, grad * (~a_wins), staged)

    _define_backward(out, backward)
    return out


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def tensor_sum(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out = _make(a.data.sum(axis=axis, keepdims=keepdims), (a,))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                grad = np.expand_dims(grad, ax)
        _route(a, np.broadcast_to(grad, a.data.shape), staged)

    _define_backward(out, backward)
    return out


def tensor_mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )
    return mul(tensor_sum(a, axis=axis, keepdims=keepdims), 1.0 / float(count))


def tensor_max(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    value = a.data.max(axis=axis, keepdims=True)
    out_value = value if keepdims or axis is None and keepdims else a.data.max(
        axis=axis, keepdims=keepdims
    )
    out = _make(out_value, (a,))
    # Ties split gradient equally, matching numpy-style subgradient choices.
    mask = (a.data == value).astype(np.float32)
    mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                grad = np.expand_dims(grad, ax)
        _route(a, mask * grad, staged)

    _define_backward(out, backward)
    return out


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    a = ensure_tensor(a)
    out = _make(a.data.reshape(shape), (a,))

    def backward(grad, staged):
        _route(a, np.asarray(grad).reshape(a.data.shape), staged)

    _define_backward(out, backward)
    return out


def transpose(a: ArrayLike, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    a = ensure_tensor(a)
    out = _make(a.data.transpose(axes), (a,))
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(grad, staged):
        _route(a, np.asarray(grad).transpose(inverse), staged)

    _define_backward(out, backward)
    return out


def getitem(a: Tensor, index) -> Tensor:
    a = ensure_tensor(a)
    out = _make(a.data[index], (a,))

    def backward(grad, staged):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        _route(a, full, staged)

    _define_backward(out, backward)
    return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out = _make(np.concatenate([t.data for t in tensors], axis=axis), tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, staged):
        grad = np.asarray(grad)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            _route(tensor, grad[tuple(slicer)], staged)

    _define_backward(out, backward)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out = _make(np.stack([t.data for t in tensors], axis=axis), tensors)

    def backward(grad, staged):
        grad = np.asarray(grad)
        for i, tensor in enumerate(tensors):
            _route(tensor, np.take(grad, i, axis=axis), staged)

    _define_backward(out, backward)
    return out


def pad2d(a: Tensor, padding: Tuple[int, int, int, int], value: float = 0.0) -> Tensor:
    """Pad the last two axes of an NCHW tensor by (top, bottom, left, right)."""
    a = ensure_tensor(a)
    top, bottom, left, right = padding
    pad_width = [(0, 0)] * (a.data.ndim - 2) + [(top, bottom), (left, right)]
    out = _make(np.pad(a.data, pad_width, constant_values=value), (a,))

    def backward(grad, staged):
        grad = np.asarray(grad)
        slicer = [slice(None)] * (a.data.ndim - 2)
        slicer += [
            slice(top, grad.shape[-2] - bottom or None),
            slice(left, grad.shape[-1] - right or None),
        ]
        _route(a, grad[tuple(slicer)], staged)

    _define_backward(out, backward)
    return out


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a: Tensor, b: Tensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = _make(a.data @ b.data, (a, b))

    def backward(grad, staged):
        grad = np.asarray(grad, dtype=np.float32)
        if a.requires_grad:
            if b.data.ndim == 1:
                _route(a, np.outer(grad, b.data) if a.data.ndim == 2 else grad * b.data, staged)
            else:
                _route(a, grad @ np.swapaxes(b.data, -1, -2), staged)
        if b.requires_grad:
            if a.data.ndim == 1:
                _route(b, np.outer(a.data, grad), staged)
            else:
                _route(b, np.swapaxes(a.data, -1, -2) @ grad, staged)

    _define_backward(out, backward)
    return out


__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ensure_tensor",
    "unbroadcast",
    "add",
    "sub",
    "mul",
    "div",
    "power",
    "exp",
    "log",
    "sqrt",
    "absolute",
    "clip",
    "maximum",
    "minimum",
    "tensor_sum",
    "tensor_mean",
    "tensor_max",
    "reshape",
    "transpose",
    "getitem",
    "concatenate",
    "stack",
    "pad2d",
    "matmul",
]
