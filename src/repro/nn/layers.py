"""Layer/module abstractions over the functional ops.

Mirrors the torch ``nn.Module`` ergonomics at a much smaller scale: modules
own named parameters and buffers, compose hierarchically, and expose
``parameters()`` / ``state_dict()`` for optimization and checkpointing.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .init import he_normal, normal_, uniform_
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "ConvBlock",
    "Linear",
    "BatchNorm2d",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "Upsample",
    "Flatten",
    "Dropout",
]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, buffers (via :meth:`register_buffer`)
    and child modules as attributes; this class discovers them automatically.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute plumbing ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        seen = set()
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                params.append(p)
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # -- train / eval ------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data for name, p in self.named_parameters()}
        state.update({"buffer:" + name: b for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        for key, value in state.items():
            if key.startswith("buffer:"):
                name = key[len("buffer:"):]
                if name not in own_buffers:
                    raise KeyError(f"unexpected buffer {name!r} in state dict")
                target = own_buffers[name]
                if target.shape != value.shape:
                    raise ValueError(f"buffer {name!r}: shape {value.shape} != {target.shape}")
                target[...] = value
            else:
                if key not in own_params:
                    raise KeyError(f"unexpected parameter {key!r} in state dict")
                param = own_params[key]
                if param.data.shape != value.shape:
                    raise ValueError(f"param {key!r}: shape {value.shape} != {param.data.shape}")
                param.data = value.astype(param.data.dtype).copy()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    # -- call --------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def append(self, layer: Module) -> None:
        self._modules[str(len(self.layers))] = layer
        self.layers.append(layer)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Conv2d(Module):
    """2-D convolution layer (NCHW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class Linear(Module):
    """Fully connected layer."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = 1.0 / math.sqrt(in_features)
        self.weight = Parameter(uniform_(rng, (out_features, in_features), -bound, bound))
        self.bias = Parameter(uniform_(rng, (out_features,), -bound, bound)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class BatchNorm2d(Module):
    """Batch normalization over channels of an NCHW tensor."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.1):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.slope)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class Upsample(Module):
    def __init__(self, scale: int = 2):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest(x, self.scale)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape((x.shape[0], -1))


class Dropout(Module):
    def __init__(self, rate: float = 0.5, seed: int = 0):
        super().__init__()
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self._rng)


class ConvBlock(Module):
    """darknet-style conv + batch-norm + leaky-ReLU block."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        padding = kernel_size // 2
        self.conv = Conv2d(
            in_channels, out_channels, kernel_size, stride=stride,
            padding=padding, bias=False, rng=rng,
        )
        self.bn = BatchNorm2d(out_channels)
        self.act = LeakyReLU(0.1)

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))
