"""`repro.nn` — a from-scratch numpy deep-learning stack.

This package substitutes for PyTorch in the paper's pipeline (see DESIGN.md
§2): reverse-mode autodiff tensors, convolutional layers, optimizers and the
differentiable image-warping ops needed by EOT.
"""

from . import functional
from .init import dcgan_normal, he_normal, normal_, uniform_, xavier_uniform
from .layers import (
    BatchNorm2d,
    Conv2d,
    ConvBlock,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Upsample,
)
from .lowering import (
    LOWERING_ATOL,
    LoweredDetector,
    fold_conv_bn,
    layer_parity,
    lower_detector,
)
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .quant import (
    CalibrationResult,
    QuantizationError,
    QuantizedDetector,
    activation_error_stats,
    calibrate_detector,
    quant_runtime_totals,
    quantize_detector,
    resolve_inference_model,
)
from .serialization import load_module, save_module
from .tensor import Tensor, concatenate, ensure_tensor, no_grad, stack

__all__ = [
    "functional",
    "Tensor",
    "no_grad",
    "ensure_tensor",
    "concatenate",
    "stack",
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "ConvBlock",
    "Linear",
    "BatchNorm2d",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "Upsample",
    "Flatten",
    "Dropout",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_module",
    "load_module",
    "LOWERING_ATOL",
    "LoweredDetector",
    "fold_conv_bn",
    "layer_parity",
    "lower_detector",
    "CalibrationResult",
    "QuantizationError",
    "QuantizedDetector",
    "activation_error_stats",
    "calibrate_detector",
    "quant_runtime_totals",
    "quantize_detector",
    "resolve_inference_model",
    "he_normal",
    "xavier_uniform",
    "normal_",
    "uniform_",
    "dcgan_normal",
]
