"""Weight initialization helpers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the reproduction is reproducible from a single seed
(see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "normal_", "uniform_", "dcgan_normal"]


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int) -> np.ndarray:
    """He/Kaiming-normal init, appropriate for (leaky-)ReLU networks."""
    std = math.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot-uniform init, appropriate for tanh/sigmoid networks."""
    bound = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal_(rng: np.random.Generator, shape: Tuple[int, ...], mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    return rng.normal(mean, std, size=shape).astype(np.float32)


def uniform_(rng: np.random.Generator, shape: Tuple[int, ...], low: float, high: float) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(np.float32)


def dcgan_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """N(0, 0.02) init from the DCGAN paper, used for generator/discriminator."""
    return rng.normal(0.0, 0.02, size=shape).astype(np.float32)
