"""Checkpoint save/load for modules (npz-based).

The paper fine-tunes from ``darknet53.conv.74``; that binary format is not
available offline, so checkpoints here use a plain ``.npz`` with one entry
per parameter/buffer name (our substitution, see DESIGN.md §2).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .layers import Module

__all__ = ["save_module", "load_module"]


def save_module(module: "Module", path: str) -> None:
    """Serialize a module's parameters and buffers to ``path`` (npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    state = module.state_dict()
    # npz keys cannot contain '/' reliably across loaders; ':' and '.' are fine.
    np.savez(path, **state)


def load_module(module: "Module", path: str) -> "Module":
    """Load a checkpoint produced by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
