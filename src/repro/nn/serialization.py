"""Checkpoint save/load for modules and raw state dicts (npz-based).

The paper fine-tunes from ``darknet53.conv.74``; that binary format is not
available offline, so checkpoints here use a plain ``.npz`` with one entry
per parameter/buffer name (our substitution, see DESIGN.md §2).

Robustness contract (DESIGN.md §7): every write is **atomic** — the archive
is serialized to a temporary file in the destination directory and moved
into place with :func:`os.replace`, so a crash mid-write can never leave a
half-written checkpoint at the published path. Every archive embeds a
SHA-256 digest over its arrays; :func:`load_state` recomputes and compares
it, turning truncated or bit-rotted files into a :class:`CheckpointError`
instead of silently-poisoned weights.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from typing import TYPE_CHECKING, Dict, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .layers import Module

__all__ = [
    "CheckpointError",
    "state_digest",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
]

#: Reserved npz entry holding the integrity digest.
DIGEST_KEY = "__digest__"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, or fails integrity checks."""


def state_digest(state: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over a state dict's keys, dtypes, shapes and raw bytes.

    Computed canonically (keys sorted, arrays contiguous) so the digest of
    a loaded checkpoint matches the digest of the state that was saved.
    """
    digest = hashlib.sha256()
    for key in sorted(state):
        if key == DIGEST_KEY:
            continue
        array = np.ascontiguousarray(np.asarray(state[key]))
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_state(path: str, state: Mapping[str, np.ndarray]) -> str:
    """Atomically serialize a state dict to ``path`` (npz). Returns digest.

    The digest is embedded as the :data:`DIGEST_KEY` entry and verified by
    :func:`load_state`.
    """
    if DIGEST_KEY in state:
        raise ValueError(f"state may not contain the reserved key {DIGEST_KEY!r}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    digest = state_digest(state)
    payload = {key: np.asarray(value) for key, value in state.items()}
    payload[DIGEST_KEY] = np.str_(digest)
    fd, tmp_path = tempfile.mkstemp(prefix=".ckpt-", suffix=".npz", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        raise
    return digest


def load_state(path: str, verify: bool = True) -> Dict[str, np.ndarray]:
    """Load and integrity-check a state dict written by :func:`save_state`.

    Raises :class:`CheckpointError` when the file is missing, unreadable
    (truncated zip, bad pickle, short read) or its embedded digest does not
    match the recomputed one. Archives written before digests existed (no
    :data:`DIGEST_KEY` entry) load without verification for compatibility.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint {path!r} does not exist")
    try:
        with np.load(path, allow_pickle=False) as archive:
            state = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as err:
        raise CheckpointError(f"checkpoint {path!r} is unreadable: {err}") from err
    recorded = state.pop(DIGEST_KEY, None)
    if verify and recorded is not None:
        actual = state_digest(state)
        if str(recorded) != actual:
            raise CheckpointError(
                f"checkpoint {path!r} failed integrity check: "
                f"digest {actual[:12]}… != recorded {str(recorded)[:12]}…"
            )
    return state


def save_module(module: "Module", path: str) -> None:
    """Serialize a module's parameters and buffers to ``path`` (npz).

    Atomic and digest-stamped; see module docstring.
    """
    # npz keys cannot contain '/' reliably across loaders; ':' and '.' are fine.
    save_state(path, module.state_dict())


def load_module(module: "Module", path: str) -> "Module":
    """Load a checkpoint produced by :func:`save_module` into ``module``.

    Raises :class:`CheckpointError` on corrupt or truncated files.
    """
    module.load_state_dict(load_state(path))
    return module
