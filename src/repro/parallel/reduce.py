"""Deterministic gradient reduction.

Data-parallel training is only bit-reproducible if the *reduction order*
of the per-sample gradients is pinned. Floating-point addition is not
associative, so ``sum(g_i)`` computed left-to-right by whichever worker
finishes first would make the final parameters depend on scheduling.

:func:`tree_reduce` therefore sums in a **fixed pairwise binary tree**
whose shape depends only on the number of operands — never on which
process produced them or in which order they arrived::

    8 operands:  ((g0+g1)+(g2+g3)) + ((g4+g5)+(g6+g7))
    5 operands:  ((g0+g1)+(g2+g3)) + g4

The serial ``workers=0`` oracle and every ``workers=N`` schedule reduce
through this same tree, which is what makes the parameter updates
byte-equal across worker counts (DESIGN.md §10).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = ["tree_reduce", "tree_reduce_named"]


def tree_reduce(values: Sequence[np.ndarray]) -> np.ndarray:
    """Sum arrays in a fixed pairwise tree order.

    The pairing is positional: level 0 pairs (0,1), (2,3), …; an odd
    trailing operand is carried up unchanged. The result is a fresh array
    (operands are never mutated), except for the single-operand case,
    which returns a copy so callers can always mutate the result safely.
    """
    items: List[np.ndarray] = [np.asarray(v) for v in values]
    if not items:
        raise ValueError("tree_reduce needs at least one operand")
    if len(items) == 1:
        return items[0].copy()
    while len(items) > 1:
        paired = [items[i] + items[i + 1] for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


def tree_reduce_named(
    per_sample: Sequence[Dict[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Apply :func:`tree_reduce` key-wise over per-sample gradient dicts.

    Every dict must carry the same key set (the keys of the first one are
    authoritative; a missing key in a later dict is an error, because a
    silently dropped slab would corrupt the reduction).
    """
    if not per_sample:
        raise ValueError("tree_reduce_named needs at least one sample")
    keys = list(per_sample[0].keys())
    out: Dict[str, np.ndarray] = {}
    for key in keys:
        out[key] = tree_reduce([sample[key] for sample in per_sample])
    return out
