"""Shared-memory slabs for zero-pickle parameter broadcast and gradient return.

A :class:`SharedSlab` packs a fixed set of named float arrays into one
``multiprocessing.shared_memory`` segment, optionally tiled over ``slots``
(one slot per EOT sample for gradient return). The parent writes the
step's parameters once; every worker attaches once at spawn and reads a
view — no per-task pickling of weights crosses the task queue, which only
ever carries small ``(step, sample_index)``-style descriptors.

Layout is computed from the spec list alone, so a parent-created slab and
a worker-attached slab agree on offsets by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArraySpec", "SlabHandle", "SharedSlab"]

_ALIGN = 64  # cache-line align each block; cheap and keeps views tidy


@dataclass(frozen=True)
class ArraySpec:
    """Shape/dtype declaration of one named array in a slab."""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "float32"

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class SlabHandle:
    """Picklable description a worker needs to attach to a slab."""

    shm_name: str
    specs: Tuple[ArraySpec, ...]
    slots: int


def _layout(specs: Sequence[ArraySpec], slots: int) -> Tuple[Dict[str, int], int]:
    offsets: Dict[str, int] = {}
    cursor = 0
    for spec in specs:
        offsets[spec.name] = cursor
        block = spec.nbytes * slots
        cursor += (block + _ALIGN - 1) // _ALIGN * _ALIGN
    return offsets, max(cursor, 1)


class SharedSlab:
    """One shared-memory segment holding named arrays × ``slots``.

    Create in the parent with :meth:`create`, ship :meth:`handle` to the
    workers, attach there with :meth:`attach`. Only the creating side may
    :meth:`unlink`.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 specs: Tuple[ArraySpec, ...], slots: int, owner: bool):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._specs = specs
        self._slots = slots
        self._owner = owner
        offsets, _ = _layout(specs, slots)
        self._views: Optional[Dict[str, np.ndarray]] = {
            spec.name: np.ndarray(
                (slots,) + tuple(spec.shape), dtype=spec.dtype,
                buffer=shm.buf, offset=offsets[spec.name],
            )
            for spec in specs
        }

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, specs: Iterable[ArraySpec], slots: int = 1) -> "SharedSlab":
        specs = tuple(specs)
        if slots < 1:
            raise ValueError("slots must be >= 1")
        _, total = _layout(specs, slots)
        shm = shared_memory.SharedMemory(create=True, size=total)
        return cls(shm, specs, slots, owner=True)

    @classmethod
    def attach(cls, handle: SlabHandle) -> "SharedSlab":
        # Attaching re-registers the segment with the resource tracker
        # (bpo-39959; ``track=False`` needs Python 3.13). That is safe
        # here *because* workers are spawned children: they inherit the
        # parent's tracker process, so the duplicate register is a set
        # no-op and the owner's unlink clears the single shared entry.
        # Do NOT "fix" this with resource_tracker.unregister — that
        # removes the parent's entry too and unbalances the tracker.
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        return cls(shm, handle.specs, handle.slots, owner=False)

    def handle(self) -> SlabHandle:
        assert self._shm is not None
        return SlabHandle(self._shm.name, self._specs, self._slots)

    # -- access --------------------------------------------------------
    def _view(self, name: str) -> np.ndarray:
        if self._views is None:
            raise RuntimeError("slab is closed")
        return self._views[name]

    def write(self, arrays: Mapping[str, np.ndarray], slot: int = 0) -> None:
        """Copy ``arrays`` into ``slot`` (subset of the declared names is fine)."""
        for name, value in arrays.items():
            self._view(name)[slot][...] = value

    def read_copy(self, slot: int = 0) -> Dict[str, np.ndarray]:
        """Fresh copies of every declared array at ``slot``."""
        return {spec.name: np.array(self._view(spec.name)[slot], copy=True)
                for spec in self._specs}

    def slot_copy(self, name: str, slot: int) -> np.ndarray:
        return np.array(self._view(name)[slot], copy=True)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Drop views and detach. Owner side also unlinks the segment."""
        self._views = None
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            # An escaped view still pins the buffer; leak the mapping
            # rather than crash shutdown — unlink below still reclaims
            # the segment once every process exits.
            pass
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.close()
        except Exception:
            pass
