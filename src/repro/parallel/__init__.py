"""`repro.parallel` — deterministic data-parallel EOT training engine.

The EOT sample loop in the attack and GAN trainers evaluates independent
(transform → composite → forward → loss → grad) chains; this package
fans them out over a persistent pool of spawned worker processes while
keeping every result **byte-equal to the serial schedule** (DESIGN.md §10):

* :mod:`.shm` — parameters broadcast once per step through one
  ``multiprocessing.shared_memory`` slab; gradients return through
  per-sample slots of another (no per-task pickling of weights);
* :mod:`.pool` — the hardened worker fleet: death detection, respawn,
  bounded task requeue, per-task timeouts, clean shutdown;
* :mod:`.reduce` — fixed pairwise-tree gradient summation, so the update
  is independent of worker count and completion order;
* :mod:`.engine` — the trainer-facing broadcast/dispatch/collect/reduce
  driver, whose ``workers=0`` mode is the in-process serial oracle the
  parallel schedules are tested against.
"""

from .engine import ParallelEvaluator, StepOutput, shard_indices
from .pool import (
    PoolCounters,
    TaskError,
    TaskOutcome,
    WorkerPool,
    WorkerPoolError,
    WorkSpec,
)
from .reduce import tree_reduce, tree_reduce_named
from .shm import ArraySpec, SharedSlab, SlabHandle

__all__ = [
    "ParallelEvaluator",
    "StepOutput",
    "shard_indices",
    "WorkSpec",
    "WorkerPool",
    "WorkerPoolError",
    "TaskError",
    "TaskOutcome",
    "PoolCounters",
    "tree_reduce",
    "tree_reduce_named",
    "ArraySpec",
    "SharedSlab",
    "SlabHandle",
]
