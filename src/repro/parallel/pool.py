"""Persistent multiprocessing worker pool for the EOT training fan-out.

One pool = N spawned worker processes, each of which

* attaches the parameter and gradient :class:`~repro.parallel.shm.SharedSlab`
  segments once at startup (parameters are broadcast through shared memory,
  never pickled per task),
* builds its compute context once via the spec's ``init_fn`` (e.g. the
  frozen detector + EOT pipeline),
* then loops: receive a small task descriptor, run ``work_fn``, write the
  per-sample gradients into the gradient slab at their sample slots, and
  report the per-sample scalars through the result queue.

The parent hardens the loop with the PR 1 robustness idioms (DESIGN.md §7
and §10): a dead worker (e.g. SIGKILL, OOM) is detected by liveness
polling, its in-flight task is requeued (bounded retries) and a fresh
worker is respawned into the same slot; a task that exceeds
``task_timeout`` gets its worker killed and requeued the same way; and
``close()`` tears everything down deterministically — also on the
divergence-rollback error path, where the trainer's ``finally`` block
guarantees no orphan workers or leaked ``/dev/shm`` segments survive.

Determinism is *not* the pool's job: tasks complete in any order, and the
caller (:class:`repro.parallel.engine.ParallelEvaluator`) restores order
positionally by sample index before the fixed-tree reduction.

The pool exposes two faces over one scheduler:

* :meth:`WorkerPool.run_tasks` — the synchronous training face: run a
  task list to completion, raising on any worker exception or exhausted
  retry budget (and closing the pool on the latter), exactly as the
  trainers expect.
* :meth:`WorkerPool.submit` + :meth:`WorkerPool.pump` — the incremental
  serving face (``repro.serve``): enqueue tasks as they arrive and drain
  :class:`TaskOutcome` records as they complete. Failures come back as
  outcomes (``status`` ``"error"``/``"failed"``) instead of exceptions,
  so one bad request cannot take down a multi-tenant server; the pool
  stays open and its respawn/requeue recovery keeps running.

Exactly-once delivery: a task is only ever *redelivered* after its worker
died or timed out (it is then requeued), and a late result from the first
attempt is dropped against the requeue bookkeeping — so every task yields
exactly one terminal outcome, never zero, never two.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .shm import ArraySpec, SharedSlab, SlabHandle

__all__ = ["WorkSpec", "WorkerPool", "WorkerPoolError", "TaskError",
           "TaskOutcome", "PoolCounters"]

_STOP = "stop"


class WorkerPoolError(RuntimeError):
    """Unrecoverable pool failure (task retries exhausted, spawn failure)."""


class TaskError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""


@dataclass(frozen=True)
class WorkSpec:
    """What the workers compute.

    ``init_fn(payload) -> ctx`` runs once per worker process (and again on
    respawn); ``work_fn(ctx, params, task) -> [(sample_index, grads,
    scalars), ...]`` runs per task. Both must be importable module-level
    callables (the spawn start method pickles them by reference). ``task``
    is a small dict naming sample indices and seeds — weights travel only
    through the parameter slab.
    """

    init_fn: Callable[[Any], Any]
    work_fn: Callable[[Any, Dict[str, np.ndarray], dict], Sequence[tuple]]
    init_payload: Any
    param_specs: Tuple[ArraySpec, ...]
    grad_specs: Tuple[ArraySpec, ...]
    max_samples: int


@dataclass
class PoolCounters:
    """Robustness-event counters, mirrored into obs metrics by the engine."""

    tasks: int = 0
    respawns: int = 0
    requeues: int = 0
    timeouts: int = 0
    worker_deaths: int = 0


@dataclass(frozen=True)
class TaskOutcome:
    """Terminal fate of one submitted task (the incremental face).

    ``status`` is ``"done"`` (``rows`` holds the per-sample scalar rows),
    ``"error"`` (the task raised inside a worker; ``error`` carries the
    remote traceback) or ``"failed"`` (the task exhausted its retry
    budget through worker deaths/timeouts). ``task_id`` ``-1`` marks a
    worker that failed in ``init_fn`` before taking any task.
    """

    task_id: int
    status: str
    rows: Optional[List[tuple]] = None
    error: Optional[str] = None


#: Requeued-task ids whose terminal outcome is remembered for duplicate
#: suppression. Only tasks that were ever redelivered (or failed) can race
#: a late first-attempt result, so this stays tiny; the cap only bounds a
#: pathological server lifetime.
_DEDUPE_LIMIT = 4096


@dataclass
class _Handle:
    wid: int
    slot: int
    process: mp.process.BaseProcess
    task_queue: Any
    task: Optional[Tuple[int, dict]] = None
    deadline: float = 0.0


def _worker_main(wid: int, spec: WorkSpec, param_handle: SlabHandle,
                 grad_handle: SlabHandle, task_queue, result_queue) -> None:
    """Worker process entry point (spawned; top-level for picklability)."""
    param_slab = SharedSlab.attach(param_handle)
    grad_slab = SharedSlab.attach(grad_handle)
    try:
        ctx = spec.init_fn(spec.init_payload)
    except BaseException:
        result_queue.put(("error", wid, -1, traceback.format_exc()))
        return
    params: Optional[Dict[str, np.ndarray]] = None
    version = -1
    while True:
        message = task_queue.get()
        if message == _STOP:
            break
        _, task_version, task_id, task = message
        try:
            if task_version != version:
                params = param_slab.read_copy()
                version = task_version
            results = spec.work_fn(ctx, params, task)
            scalar_rows = []
            for sample_index, grads, scalars in results:
                grad_slab.write(grads, slot=sample_index)
                scalar_rows.append((sample_index, scalars))
            result_queue.put(("done", wid, task_id, scalar_rows))
        except BaseException:
            result_queue.put(("error", wid, task_id, traceback.format_exc()))
    param_slab.close()
    grad_slab.close()


class WorkerPool:
    """Parent-side controller of the persistent worker fleet."""

    def __init__(self, spec: WorkSpec, workers: int, task_timeout: float = 120.0,
                 max_task_retries: int = 2, poll_interval: float = 0.05):
        if workers < 1:
            raise ValueError("WorkerPool needs workers >= 1 (0 is the serial oracle)")
        self.spec = spec
        self.workers = workers
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self.poll_interval = poll_interval
        self.counters = PoolCounters()

        self._ctx = mp.get_context("spawn")
        self._param_slab = SharedSlab.create(spec.param_specs, slots=1)
        self._grad_slab = SharedSlab.create(spec.grad_specs, slots=spec.max_samples)
        self._result_queue = self._ctx.Queue()
        self._wid_counter = itertools.count()
        self._handles: Dict[int, _Handle] = {}
        self._version = 0
        self._closed = False
        # Incremental-scheduler state (shared by run_tasks and submit/pump).
        self._task_ids = itertools.count()
        self._pending: deque = deque()
        self._attempts: Dict[int, int] = {}
        self._ready: List[TaskOutcome] = []
        self._requeued: set = set()
        self._dedupe: set = set()
        self._dedupe_order: deque = deque()
        for slot in range(workers):
            self._spawn(slot)

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, slot: int) -> _Handle:
        wid = next(self._wid_counter)
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(wid, self.spec, self._param_slab.handle(),
                  self._grad_slab.handle(), task_queue, self._result_queue),
            daemon=True,
            name=f"repro-parallel-{slot}",
        )
        process.start()
        handle = _Handle(wid=wid, slot=slot, process=process, task_queue=task_queue)
        self._handles[wid] = handle
        return handle

    def _retire(self, handle: _Handle, kill: bool) -> None:
        self._handles.pop(handle.wid, None)
        if kill and handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
        handle.task_queue.close()

    def close(self) -> None:
        """Stop workers, join them, and release the shared-memory slabs."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._handles.values()):
            try:
                handle.task_queue.put_nowait(_STOP)
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for handle in list(self._handles.values()):
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.task_queue.close()
        self._handles.clear()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        self._param_slab.close()
        self._grad_slab.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- stepping ------------------------------------------------------
    def broadcast(self, params: Dict[str, np.ndarray]) -> None:
        """Publish this step's parameters once, via shared memory."""
        self._param_slab.write(params)
        self._version += 1

    def run_tasks(self, tasks: Sequence[dict]) -> List[List[tuple]]:
        """Run every task to completion; returns per-task scalar rows.

        Survives worker death and task timeouts by respawn + requeue.
        Raises :class:`TaskError` on an in-worker exception and
        :class:`WorkerPoolError` when a task exhausts its retries (the
        pool is closed first — the training loop cannot continue from a
        lost gradient sample).
        """
        if self._closed:
            raise WorkerPoolError("pool is closed")
        ids = [self.submit(task) for task in tasks]
        position = {task_id: index for index, task_id in enumerate(ids)}
        results: Dict[int, List[tuple]] = {}
        while len(results) < len(ids):
            for outcome in self.pump(self.poll_interval):
                if outcome.status == "error":
                    raise TaskError(
                        f"worker task {position.get(outcome.task_id, outcome.task_id)} "
                        f"failed:\n{outcome.error}")
                if outcome.task_id not in position:
                    continue
                if outcome.status == "failed":
                    self.close()
                    raise WorkerPoolError(outcome.error)
                results[outcome.task_id] = outcome.rows
        self.counters.tasks += len(tasks)
        return [results[task_id] for task_id in ids]

    # -- incremental face ---------------------------------------------
    def submit(self, task: dict) -> int:
        """Enqueue one task; returns its pool-global id (see :meth:`pump`)."""
        if self._closed:
            raise WorkerPoolError("pool is closed")
        task_id = next(self._task_ids)
        self._pending.append((task_id, task))
        self._dispatch()
        return task_id

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet terminal (queued + in flight)."""
        in_flight = sum(1 for h in self._handles.values() if h.task is not None)
        return len(self._pending) + in_flight

    def worker_pids(self) -> List[int]:
        """Live worker process ids (chaos testing: pick one and SIGKILL it)."""
        return [h.process.pid for h in self._handles.values()
                if h.process.pid is not None]

    def probe(self) -> Dict[str, float]:
        """Live-telemetry probe: robustness counters plus current load
        (``repro.obs.live.LiveTelemetry.add_probe`` target). Reads are
        GIL-atomic snapshots of counters the scheduler owns — callers on
        other threads get a consistent-enough view for sampling, never
        exact synchronization."""
        in_flight = sum(1 for h in self._handles.values()
                        if h.task is not None)
        workers = len(self._handles)
        return {
            "tasks": self.counters.tasks,
            "respawns": self.counters.respawns,
            "requeues": self.counters.requeues,
            "timeouts": self.counters.timeouts,
            "worker_deaths": self.counters.worker_deaths,
            "workers_alive": sum(
                1 for h in self._handles.values() if h.process.is_alive()),
            "pending": len(self._pending),
            "in_flight": in_flight,
            # Busy fraction of the pool; 0.0 for a closed/empty pool.
            "utilization": (in_flight / workers) if workers else 0.0,
        }

    def pump(self, timeout: float = 0.0) -> List[TaskOutcome]:
        """One scheduling round; returns tasks that became terminal.

        Dispatches queued work to idle workers, waits up to ``timeout``
        for a result (0 = poll), and — when nothing arrived — runs the
        liveness/deadline scan that requeues or fails tasks whose worker
        died or hung. Unlike :meth:`run_tasks`, failures are *returned*
        (as ``"error"``/``"failed"`` outcomes), never raised: the serving
        layer maps them to per-request responses while the pool keeps
        recovering workers underneath.
        """
        if self._closed:
            raise WorkerPoolError("pool is closed")
        self._dispatch()
        message = None
        try:
            if timeout > 0:
                message = self._result_queue.get(timeout=timeout)
            else:
                message = self._result_queue.get_nowait()
        except queue_mod.Empty:
            pass
        if message is not None:
            self._absorb(message)
            while True:  # drain whatever else is already queued
                try:
                    self._absorb(self._result_queue.get_nowait())
                except queue_mod.Empty:
                    break
        else:
            self._scan_workers()
        self._dispatch()
        ready, self._ready = self._ready, []
        return ready

    # -- scheduler internals -------------------------------------------
    def _dispatch(self) -> None:
        idle = [h for h in self._handles.values() if h.task is None]
        for handle in idle:
            task_entry = None
            while self._pending:
                candidate = self._pending.popleft()
                if candidate[0] not in self._dedupe:  # skip stale requeues
                    task_entry = candidate
                    break
            if task_entry is None:
                return
            task_id, task = task_entry
            handle.task_queue.put(("task", self._version, task_id, task))
            handle.task = (task_id, task)
            handle.deadline = time.monotonic() + self.task_timeout

    def _finish(self, task_id: int, outcome: TaskOutcome) -> None:
        self._ready.append(outcome)
        self._attempts.pop(task_id, None)
        # Only a task that was redelivered (or failed with an attempt
        # possibly still running) can ever produce a second result; its id
        # goes into the dedupe set so the late duplicate is dropped.
        if task_id in self._requeued or outcome.status == "failed":
            self._requeued.discard(task_id)
            self._dedupe.add(task_id)
            self._dedupe_order.append(task_id)
            while len(self._dedupe_order) > _DEDUPE_LIMIT:
                self._dedupe.discard(self._dedupe_order.popleft())

    def _absorb(self, message) -> None:
        kind, wid, task_id, payload = message
        handle = self._handles.get(wid)
        if handle is not None and handle.task is not None and handle.task[0] == task_id:
            handle.task = None
        if task_id in self._dedupe:
            # A late result from a worker we already killed/requeued: the
            # recomputed bytes are identical, so dropping it is lossless.
            return
        if kind == "error":
            self._finish(task_id, TaskOutcome(task_id, "error", error=payload))
        else:
            self._finish(task_id, TaskOutcome(task_id, "done", rows=payload))

    def _scan_workers(self) -> None:
        now = time.monotonic()
        for handle in list(self._handles.values()):
            dead = not handle.process.is_alive()
            expired = handle.task is not None and now > handle.deadline
            if not dead and not expired:
                continue
            if dead:
                self.counters.worker_deaths += 1
            else:
                self.counters.timeouts += 1
            if handle.task is not None:
                task_id, task = handle.task
                if task_id not in self._dedupe:
                    attempts = self._attempts[task_id] = self._attempts.get(task_id, 0) + 1
                    if attempts > self.max_task_retries:
                        self._finish(task_id, TaskOutcome(
                            task_id, "failed",
                            error=f"task {task_id} failed {attempts} times "
                                  f"(worker {'died' if dead else 'timed out'})"))
                    else:
                        self._pending.appendleft((task_id, task))
                        self._requeued.add(task_id)
                        self.counters.requeues += 1
            self._retire(handle, kill=not dead)
            self._spawn(handle.slot)
            self.counters.respawns += 1

    # -- gradient access ----------------------------------------------
    def grad_copy(self, name: str, sample_index: int) -> np.ndarray:
        """Copy one sample's gradient out of the shared slab."""
        return self._grad_slab.slot_copy(name, sample_index)
