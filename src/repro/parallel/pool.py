"""Persistent multiprocessing worker pool for the EOT training fan-out.

One pool = N spawned worker processes, each of which

* attaches the parameter and gradient :class:`~repro.parallel.shm.SharedSlab`
  segments once at startup (parameters are broadcast through shared memory,
  never pickled per task),
* builds its compute context once via the spec's ``init_fn`` (e.g. the
  frozen detector + EOT pipeline),
* then loops: receive a small task descriptor, run ``work_fn``, write the
  per-sample gradients into the gradient slab at their sample slots, and
  report the per-sample scalars through the result queue.

The parent hardens the loop with the PR 1 robustness idioms (DESIGN.md §7
and §10): a dead worker (e.g. SIGKILL, OOM) is detected by liveness
polling, its in-flight task is requeued (bounded retries) and a fresh
worker is respawned into the same slot; a task that exceeds
``task_timeout`` gets its worker killed and requeued the same way; and
``close()`` tears everything down deterministically — also on the
divergence-rollback error path, where the trainer's ``finally`` block
guarantees no orphan workers or leaked ``/dev/shm`` segments survive.

Determinism is *not* the pool's job: tasks complete in any order, and the
caller (:class:`repro.parallel.engine.ParallelEvaluator`) restores order
positionally by sample index before the fixed-tree reduction.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .shm import ArraySpec, SharedSlab, SlabHandle

__all__ = ["WorkSpec", "WorkerPool", "WorkerPoolError", "TaskError", "PoolCounters"]

_STOP = "stop"


class WorkerPoolError(RuntimeError):
    """Unrecoverable pool failure (task retries exhausted, spawn failure)."""


class TaskError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""


@dataclass(frozen=True)
class WorkSpec:
    """What the workers compute.

    ``init_fn(payload) -> ctx`` runs once per worker process (and again on
    respawn); ``work_fn(ctx, params, task) -> [(sample_index, grads,
    scalars), ...]`` runs per task. Both must be importable module-level
    callables (the spawn start method pickles them by reference). ``task``
    is a small dict naming sample indices and seeds — weights travel only
    through the parameter slab.
    """

    init_fn: Callable[[Any], Any]
    work_fn: Callable[[Any, Dict[str, np.ndarray], dict], Sequence[tuple]]
    init_payload: Any
    param_specs: Tuple[ArraySpec, ...]
    grad_specs: Tuple[ArraySpec, ...]
    max_samples: int


@dataclass
class PoolCounters:
    """Robustness-event counters, mirrored into obs metrics by the engine."""

    tasks: int = 0
    respawns: int = 0
    requeues: int = 0
    timeouts: int = 0
    worker_deaths: int = 0


@dataclass
class _Handle:
    wid: int
    slot: int
    process: mp.process.BaseProcess
    task_queue: Any
    task: Optional[Tuple[int, dict]] = None
    deadline: float = 0.0


def _worker_main(wid: int, spec: WorkSpec, param_handle: SlabHandle,
                 grad_handle: SlabHandle, task_queue, result_queue) -> None:
    """Worker process entry point (spawned; top-level for picklability)."""
    param_slab = SharedSlab.attach(param_handle)
    grad_slab = SharedSlab.attach(grad_handle)
    try:
        ctx = spec.init_fn(spec.init_payload)
    except BaseException:
        result_queue.put(("error", wid, -1, traceback.format_exc()))
        return
    params: Optional[Dict[str, np.ndarray]] = None
    version = -1
    while True:
        message = task_queue.get()
        if message == _STOP:
            break
        _, task_version, task_id, task = message
        try:
            if task_version != version:
                params = param_slab.read_copy()
                version = task_version
            results = spec.work_fn(ctx, params, task)
            scalar_rows = []
            for sample_index, grads, scalars in results:
                grad_slab.write(grads, slot=sample_index)
                scalar_rows.append((sample_index, scalars))
            result_queue.put(("done", wid, task_id, scalar_rows))
        except BaseException:
            result_queue.put(("error", wid, task_id, traceback.format_exc()))
    param_slab.close()
    grad_slab.close()


class WorkerPool:
    """Parent-side controller of the persistent worker fleet."""

    def __init__(self, spec: WorkSpec, workers: int, task_timeout: float = 120.0,
                 max_task_retries: int = 2, poll_interval: float = 0.05):
        if workers < 1:
            raise ValueError("WorkerPool needs workers >= 1 (0 is the serial oracle)")
        self.spec = spec
        self.workers = workers
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self.poll_interval = poll_interval
        self.counters = PoolCounters()

        self._ctx = mp.get_context("spawn")
        self._param_slab = SharedSlab.create(spec.param_specs, slots=1)
        self._grad_slab = SharedSlab.create(spec.grad_specs, slots=spec.max_samples)
        self._result_queue = self._ctx.Queue()
        self._wid_counter = itertools.count()
        self._handles: Dict[int, _Handle] = {}
        self._version = 0
        self._closed = False
        for slot in range(workers):
            self._spawn(slot)

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, slot: int) -> _Handle:
        wid = next(self._wid_counter)
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(wid, self.spec, self._param_slab.handle(),
                  self._grad_slab.handle(), task_queue, self._result_queue),
            daemon=True,
            name=f"repro-parallel-{slot}",
        )
        process.start()
        handle = _Handle(wid=wid, slot=slot, process=process, task_queue=task_queue)
        self._handles[wid] = handle
        return handle

    def _retire(self, handle: _Handle, kill: bool) -> None:
        self._handles.pop(handle.wid, None)
        if kill and handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
        handle.task_queue.close()

    def close(self) -> None:
        """Stop workers, join them, and release the shared-memory slabs."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._handles.values()):
            try:
                handle.task_queue.put_nowait(_STOP)
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for handle in list(self._handles.values()):
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.task_queue.close()
        self._handles.clear()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        self._param_slab.close()
        self._grad_slab.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- stepping ------------------------------------------------------
    def broadcast(self, params: Dict[str, np.ndarray]) -> None:
        """Publish this step's parameters once, via shared memory."""
        self._param_slab.write(params)
        self._version += 1

    def run_tasks(self, tasks: Sequence[dict]) -> List[List[tuple]]:
        """Run every task to completion; returns per-task scalar rows.

        Survives worker death and task timeouts by respawn + requeue.
        Raises :class:`TaskError` on an in-worker exception and
        :class:`WorkerPoolError` when a task exhausts its retries.
        """
        if self._closed:
            raise WorkerPoolError("pool is closed")
        pending = deque(enumerate(tasks))
        done: Dict[int, List[tuple]] = {}
        attempts: Dict[int, int] = {}
        while len(done) < len(tasks):
            self._dispatch(pending, done)
            message = None
            try:
                message = self._result_queue.get(timeout=self.poll_interval)
            except queue_mod.Empty:
                pass
            if message is not None:
                self._absorb(message, done)
                continue  # drain results before paying for a liveness scan
            self._scan_workers(pending, done, attempts)
        self.counters.tasks += len(tasks)
        return [done[task_id] for task_id in range(len(tasks))]

    def _dispatch(self, pending: deque, done: Dict[int, list]) -> None:
        idle = [h for h in self._handles.values() if h.task is None]
        for handle in idle:
            task_entry = None
            while pending:
                candidate = pending.popleft()
                if candidate[0] not in done:  # skip stale requeues
                    task_entry = candidate
                    break
            if task_entry is None:
                return
            task_id, task = task_entry
            handle.task_queue.put(("task", self._version, task_id, task))
            handle.task = (task_id, task)
            handle.deadline = time.monotonic() + self.task_timeout

    def _absorb(self, message, done: Dict[int, list]) -> None:
        kind, wid, task_id, payload = message
        if kind == "error":
            raise TaskError(
                f"worker task {task_id} failed:\n{payload}")
        handle = self._handles.get(wid)
        if handle is not None and handle.task is not None and handle.task[0] == task_id:
            handle.task = None
        # A late result from a worker we already killed/requeued is
        # accepted idempotently: the recomputed bytes are identical.
        if task_id not in done:
            done[task_id] = payload

    def _scan_workers(self, pending: deque, done: Dict[int, list],
                      attempts: Dict[int, int]) -> None:
        now = time.monotonic()
        for handle in list(self._handles.values()):
            dead = not handle.process.is_alive()
            expired = handle.task is not None and now > handle.deadline
            if not dead and not expired:
                continue
            if dead:
                self.counters.worker_deaths += 1
            else:
                self.counters.timeouts += 1
            if handle.task is not None:
                task_id, task = handle.task
                if task_id not in done:
                    attempts[task_id] = attempts.get(task_id, 0) + 1
                    if attempts[task_id] > self.max_task_retries:
                        self.close()
                        raise WorkerPoolError(
                            f"task {task_id} failed {attempts[task_id]} times "
                            f"(worker {'died' if dead else 'timed out'})")
                    pending.appendleft((task_id, task))
                    self.counters.requeues += 1
            self._retire(handle, kill=not dead)
            self._spawn(handle.slot)
            self.counters.respawns += 1

    # -- gradient access ----------------------------------------------
    def grad_copy(self, name: str, sample_index: int) -> np.ndarray:
        """Copy one sample's gradient out of the shared slab."""
        return self._grad_slab.slot_copy(name, sample_index)
