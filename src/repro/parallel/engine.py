"""Deterministic data-parallel evaluator over a :class:`WorkerPool`.

:class:`ParallelEvaluator` is the trainer-facing face of ``repro.parallel``:
it owns a pool (or, for ``workers=0``, an in-process context), turns one
training step into *broadcast → dispatch → collect → reduce*, and pins the
schedule so the result is byte-equal for every worker count:

* each task carries explicit ``sample_indices`` and derives its RNG from
  ``(seed, step, sample_index)`` inside ``work_fn`` — never from worker
  identity or arrival order;
* gradients land in disjoint per-sample slots of the shared gradient slab
  and are copied out positionally (index order, not completion order);
* :meth:`reduce` sums them through the fixed pairwise tree of
  :func:`repro.parallel.reduce.tree_reduce`.

``workers=0`` runs the exact same ``work_fn`` serially in the parent and
reduces through the same tree — the oracle the parallel schedules are
tested bit-identical against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..obs import span_scope
from ..perf import stage_scope
from .pool import PoolCounters, WorkerPool, WorkSpec
from .reduce import tree_reduce

__all__ = ["ParallelEvaluator", "StepOutput", "shard_indices"]


def shard_indices(n: int, n_shards: int) -> List[List[int]]:
    """Split ``range(n)`` into up to ``n_shards`` contiguous chunks.

    Sharding is pure scheduling: per-sample RNG streams and the fixed-tree
    reduction make the numbers identical however the indices are grouped.
    """
    n_shards = max(1, min(n_shards, n))
    base, extra = divmod(n, n_shards)
    shards: List[List[int]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


@dataclass
class StepOutput:
    """Per-sample results of one evaluate round, ordered by sample index."""

    grads: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    scalars: List[dict] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return len(self.scalars)


class ParallelEvaluator:
    """Broadcast/dispatch/collect/reduce driver shared by both trainers."""

    def __init__(self, spec: WorkSpec, workers: int, *,
                 task_timeout: float = 120.0, max_task_retries: int = 2,
                 obs=None, perf=None, name: str = "parallel"):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.spec = spec
        self.workers = workers
        self.obs = obs
        self.perf = perf
        self.name = name
        self._local_ctx: Any = None
        self._pool: Optional[WorkerPool] = None
        if workers >= 1:
            self._pool = WorkerPool(spec, workers, task_timeout=task_timeout,
                                    max_task_retries=max_task_retries)
        self._reported = PoolCounters()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._local_ctx = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def counters(self) -> PoolCounters:
        return self._pool.counters if self._pool is not None else PoolCounters()

    def probe(self) -> dict:
        """Live-telemetry probe (``LiveTelemetry.add_probe`` target).

        Delegates to the worker pool's health counters; the serial
        (``workers=0``) engine reports a minimal constant shape so SLO
        rules over ``pool.workers_alive`` don't false-fire on serial runs.
        """
        if self._pool is not None:
            return self._pool.probe()
        return {"tasks": 0, "workers_alive": 0, "pending": 0,
                "in_flight": 0, "utilization": 0.0, "serial": 1.0}

    # -- stepping ------------------------------------------------------
    def evaluate(self, params: Dict[str, np.ndarray], tasks: Sequence[dict],
                 n_samples: int, grad_keys: Sequence[str]) -> StepOutput:
        """Run ``tasks`` against ``params``; return per-sample grads/scalars.

        ``tasks`` must jointly cover sample indices ``0..n_samples-1``
        exactly once. ``grad_keys`` names which declared gradient arrays
        this round actually uses (e.g. only the discriminator's during a
        D-phase), so unrelated slab slots are never copied.
        """
        if self._pool is None:
            rows = self._evaluate_serial(params, tasks)
        else:
            rows = self._evaluate_pool(params, tasks)

        out = StepOutput(grads={key: [None] * n_samples for key in grad_keys},
                         scalars=[None] * n_samples)
        with stage_scope(self.perf, f"{self.name}.collect", items=n_samples):
            for sample_index, grads, scalars in rows:
                if out.scalars[sample_index] is not None:
                    raise RuntimeError(
                        f"sample {sample_index} produced twice in one round")
                out.scalars[sample_index] = scalars
                for key in grad_keys:
                    out.grads[key][sample_index] = grads[key]
        missing = [i for i, s in enumerate(out.scalars) if s is None]
        if missing:
            raise RuntimeError(f"samples never produced: {missing}")
        self._mirror_counters()
        return out

    def _evaluate_serial(self, params, tasks) -> List[tuple]:
        if self._local_ctx is None:
            self._local_ctx = self.spec.init_fn(self.spec.init_payload)
        rows: List[tuple] = []
        with span_scope(self.obs, f"{self.name}.dispatch", tasks=len(tasks),
                        workers=0):
            with stage_scope(self.perf, f"{self.name}.dispatch",
                             items=len(tasks)):
                for task in tasks:
                    rows.extend(self.spec.work_fn(self._local_ctx, params, task))
        return rows

    def _evaluate_pool(self, params, tasks) -> List[tuple]:
        assert self._pool is not None
        with stage_scope(self.perf, f"{self.name}.broadcast"):
            self._pool.broadcast(params)
        with span_scope(self.obs, f"{self.name}.dispatch", tasks=len(tasks),
                        workers=self.workers):
            with stage_scope(self.perf, f"{self.name}.dispatch",
                             items=len(tasks)):
                scalar_rows = self._pool.run_tasks(tasks)
        # Copy each sample's gradients out of the slab *before* the next
        # broadcast can touch it; scalar rows tell us which slots are live.
        rows: List[tuple] = []
        for task_rows in scalar_rows:
            for sample_index, scalars in task_rows:
                grads = {spec.name: self._pool.grad_copy(spec.name, sample_index)
                         for spec in self.spec.grad_specs}
                rows.append((sample_index, grads, scalars))
        return rows

    def reduce(self, per_sample: Sequence[np.ndarray]) -> np.ndarray:
        """Fixed-tree sum of per-sample arrays (see module docstring)."""
        with span_scope(self.obs, f"{self.name}.reduce",
                        operands=len(per_sample)):
            with stage_scope(self.perf, f"{self.name}.reduce",
                             items=len(per_sample)):
                return tree_reduce(per_sample)

    def reduce_grads(self, out: StepOutput) -> Dict[str, np.ndarray]:
        """Key-wise fixed-tree reduction of an evaluate round's gradients."""
        with span_scope(self.obs, f"{self.name}.reduce",
                        keys=len(out.grads), operands=out.n_samples):
            with stage_scope(self.perf, f"{self.name}.reduce",
                             items=out.n_samples):
                return {key: tree_reduce(values)
                        for key, values in out.grads.items()}

    def _mirror_counters(self) -> None:
        if self.obs is None or self._pool is None:
            return
        current = self._pool.counters
        for attr in ("respawns", "requeues", "timeouts", "worker_deaths"):
            delta = getattr(current, attr) - getattr(self._reported, attr)
            if delta:
                self.obs.metrics.counter(f"{self.name}.{attr}").inc(delta)
                setattr(self._reported, attr, getattr(current, attr))
