"""Versioned JSON perf reports (the ``BENCH_*.json`` trajectory files)."""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

__all__ = ["REPORT_SCHEMA_VERSION", "write_report", "load_report"]

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1


def write_report(path: str, payload: dict) -> dict:
    """Atomically write ``payload`` (plus schema metadata) as JSON.

    Returns the full document written. Atomic rename matches the
    checkpointing discipline in :mod:`repro.nn.serialization`: a crashed
    writer never leaves a half-written trajectory file behind.
    """
    document = {"schema_version": REPORT_SCHEMA_VERSION}
    document.update(payload)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return document


def load_report(path: str, expected_version: Optional[int] = REPORT_SCHEMA_VERSION) -> dict:
    """Load a perf report, validating the schema version when given."""
    with open(path) as handle:
        document = json.load(handle)
    version = document.get("schema_version")
    if expected_version is not None and version != expected_version:
        raise ValueError(
            f"perf report {path!r} has schema_version={version!r}, "
            f"expected {expected_version}"
        )
    return document
