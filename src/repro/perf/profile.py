"""Optional per-layer timing hooks for ``repro.nn`` module trees.

Wraps each named submodule's ``forward`` with a timing shim, accumulating
wall-clock per layer path (``conv1``, ``conv8.bn``, …). Attach/detach is
instance-local monkeypatching — model code is untouched, and a detached
model is bit-identical to an unprofiled one. Used by
``scripts/bench_hotpath.py --layers`` to break TinyYolo's forward pass
down layer by layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from .timers import PerfRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nn.layers import Module

__all__ = ["LayerProfiler"]


class LayerProfiler:
    """Times every submodule forward of a :class:`~repro.nn.layers.Module`.

    Usage::

        profiler = LayerProfiler(model).attach()
        model(x)
        profiler.detach()
        profiler.table()   # [(layer_path, seconds, calls), ...] slowest first

    Nested modules are each timed; because a parent's forward calls its
    children, parent times *include* child times (the table reports the
    tree as measured, not exclusive self-time).
    """

    def __init__(self, model: "Module") -> None:
        self.model = model
        self.recorder = PerfRecorder()
        self._wrapped: List["Module"] = []
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> "LayerProfiler":
        if self._attached:
            return self
        for path, module in self._named_modules(self.model):
            if not path:  # skip the root; callers time the full forward
                continue
            self._wrap(path, module)
        self._attached = True
        return self

    def detach(self) -> "LayerProfiler":
        for module in self._wrapped:
            module.__dict__.pop("forward", None)
        self._wrapped.clear()
        self._attached = False
        return self

    def __enter__(self) -> "LayerProfiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _wrap(self, path: str, module: "Module") -> None:
        original = module.forward
        recorder = self.recorder

        def timed_forward(*args, **kwargs):
            with recorder.stage(path):
                return original(*args, **kwargs)

        module.__dict__["forward"] = timed_forward
        self._wrapped.append(module)

    @staticmethod
    def _named_modules(root: "Module") -> List[Tuple[str, "Module"]]:
        found: List[Tuple[str, "Module"]] = []

        def walk(prefix: str, module: "Module") -> None:
            found.append((prefix, module))
            for name, child in module._modules.items():
                walk(prefix + "." + name if prefix else name, child)

        walk("", root)
        return found

    # ------------------------------------------------------------------
    def seconds(self) -> Dict[str, float]:
        return {name: stats.seconds for name, stats in self.recorder.stages.items()}

    def table(self) -> List[Tuple[str, float, int]]:
        """(layer_path, seconds, calls) sorted slowest-first."""
        rows = [
            (name, stats.seconds, stats.calls)
            for name, stats in self.recorder.stages.items()
        ]
        rows.sort(key=lambda row: -row[1])
        return rows
