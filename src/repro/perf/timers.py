"""Scoped stage timers and throughput counters for the inference hot path."""

from __future__ import annotations

import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import ContextManager, Dict, Iterator, Optional

__all__ = ["StageStats", "PerfRecorder", "stage_scope", "process_stats"]

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, OSError, ValueError):
    _PAGE_SIZE = 4096

#: Module-level so tests (and exotic hosts) can point it elsewhere.
_STATM_PATH = "/proc/self/statm"


def process_stats() -> Dict[str, Optional[float]]:
    """Cheap self-observation: resident set size and cumulative CPU time.

    Reads ``/proc/self/statm`` where available (Linux) and falls back to
    ``os.times()`` everywhere, so the live sampler can poll it at high
    frequency on any platform without psutil. Keys: ``rss_mb`` (``None``
    when unknowable — non-Linux hosts have no statm; the live sampler
    skips non-float values, so the series is simply absent there) and
    ``cpu_seconds`` (user + system of this process).
    """
    rss_mb: Optional[float] = None
    try:
        with open(_STATM_PATH) as handle:
            rss_pages = int(handle.read().split()[1])
        rss_mb = rss_pages * _PAGE_SIZE / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        pass
    times = os.times()
    return {"rss_mb": rss_mb, "cpu_seconds": times.user + times.system}


@dataclass
class StageStats:
    """Accumulated wall-clock for one named stage."""

    seconds: float = 0.0
    calls: int = 0
    items: int = 0

    def add(self, seconds: float, items: int = 0) -> None:
        self.seconds += seconds
        self.calls += 1
        self.items += items

    def items_per_second(self) -> float:
        """Throughput over accumulated time (0 when nothing was timed)."""
        if self.seconds <= 0.0 or self.items == 0:
            return 0.0
        return self.items / self.seconds


class PerfRecorder:
    """Collects per-stage timings and free-form counters for one workload.

    Usage::

        perf = PerfRecorder()
        with perf.stage("forward", items=len(batch)):
            outputs = model(batch)
        perf.count("frames", len(batch))
        perf.report()   # → plain dict, JSON-ready

    A recorder is cheap but not free; hot paths accept ``perf=None`` and
    skip instrumentation entirely (see :func:`stage_scope`).
    """

    def __init__(self) -> None:
        self.stages: Dict[str, StageStats] = {}
        self.counters: Dict[str, float] = {}
        self._wall_start = time.perf_counter()

    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str, items: int = 0) -> Iterator[None]:
        """Time one scoped section, attributing ``items`` units of work."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages.setdefault(name, StageStats()).add(elapsed, items)

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    # ------------------------------------------------------------------
    def stage_seconds(self, name: str) -> float:
        stats = self.stages.get(name)
        return stats.seconds if stats is not None else 0.0

    def fps(self, stage: str = "forward") -> float:
        """Frames (items) per second of one stage."""
        stats = self.stages.get(stage)
        return stats.items_per_second() if stats is not None else 0.0

    def wall_seconds(self) -> float:
        return time.perf_counter() - self._wall_start

    def merge(self, other: "PerfRecorder") -> "PerfRecorder":
        """Fold another recorder's stages/counters into this one."""
        for name, stats in other.stages.items():
            mine = self.stages.setdefault(name, StageStats())
            mine.seconds += stats.seconds
            mine.calls += stats.calls
            mine.items += stats.items
        for name, value in other.counters.items():
            self.count(name, value)
        return self

    def publish(self, metrics, prefix: str = "perf") -> None:
        """Fold this recorder into a :class:`repro.obs.Metrics` registry.

        Per stage: ``{prefix}.{stage}.calls`` / ``.items`` counters (the
        deterministic surface — identical for a same-seed re-run) and one
        ``.seconds`` histogram observation (wall-clock, legitimately
        nondeterministic). Free-form counters land under ``{prefix}.``.
        Publish once per recorder lifetime: values are cumulative, so a
        second publish of the same recorder would double-count.
        """
        for name, stats in sorted(self.stages.items()):
            metrics.counter(f"{prefix}.{name}.calls").inc(stats.calls)
            metrics.counter(f"{prefix}.{name}.items").inc(stats.items)
            metrics.histogram(f"{prefix}.{name}.seconds").observe(stats.seconds)
        for name, value in sorted(self.counters.items()):
            metrics.counter(f"{prefix}.{name}").inc(value)

    def report(self) -> dict:
        """JSON-ready summary: stages, shares, counters, wall clock."""
        timed = sum(s.seconds for s in self.stages.values())
        stages = {}
        for name, stats in sorted(self.stages.items()):
            stages[name] = {
                "seconds": stats.seconds,
                "calls": stats.calls,
                "items": stats.items,
                "items_per_second": stats.items_per_second(),
                "share": stats.seconds / timed if timed > 0 else 0.0,
            }
        return {
            "stages": stages,
            "counters": dict(self.counters),
            "timed_seconds": timed,
            "wall_seconds": self.wall_seconds(),
        }


def stage_scope(perf: Optional[PerfRecorder], name: str,
                items: int = 0) -> ContextManager[None]:
    """``perf.stage(...)`` when a recorder is attached, else a no-op scope.

    Lets instrumented hot paths stay branch-free::

        with stage_scope(perf, "forward", items=batch):
            ...
    """
    if perf is None:
        return nullcontext()
    return perf.stage(name, items=items)
