"""Hot-path observability: stage timers, throughput counters, profiling.

The ROADMAP's north star — "as fast as the hardware allows" — is only
meaningful if the inference path is measured. This package provides the
instrumentation the batched detection hot path reports through:

* :class:`StageStats` / :class:`PerfRecorder` — scoped per-stage wall-clock
  timers (forward / decode / nms / confirm / …) with item counts, so
  frames-per-second and per-stage shares fall out of one recorder;
* :class:`LayerProfiler` — optional per-layer timing hooks for any
  :class:`~repro.nn.layers.Module` tree (e.g. TinyYolo), attached and
  detached without touching model code;
* :func:`write_report` / :func:`load_report` — versioned JSON perf reports
  (``scripts/bench_hotpath.py`` emits ``BENCH_hotpath.json`` through this,
  seeding the repo's performance trajectory).

Everything is dependency-free (stdlib + numpy) and cheap enough to leave
attached in tests; passing ``perf=None`` everywhere keeps the hot path
zero-overhead.
"""

from .profile import LayerProfiler
from .report import REPORT_SCHEMA_VERSION, load_report, write_report
from .timers import PerfRecorder, StageStats, process_stats, stage_scope

__all__ = [
    "PerfRecorder",
    "StageStats",
    "stage_scope",
    "process_stats",
    "LayerProfiler",
    "write_report",
    "load_report",
    "REPORT_SCHEMA_VERSION",
]
