"""Procedural Four Shapes dataset.

The paper draws its patch shape prior from the public *Four Shapes* dataset
(star, circle, square, triangle — black shape on white background). Offline
we synthesize the same distribution procedurally (DESIGN.md §2): each sample
is a black shape with jittered size, rotation and center on a white canvas.
These images train the GAN discriminator, which is how the generator's
output is constrained to look like a plausible monochrome road decal.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..utils.drawing import (
    circle_mask,
    polygon_mask,
    regular_polygon_points,
    star_points,
)

__all__ = ["SHAPE_NAMES", "shape_image", "sample_batch", "shape_mask"]

SHAPE_NAMES: Tuple[str, ...] = ("star", "circle", "square", "triangle")


def shape_mask(shape: str, size: int, rng: np.random.Generator = None,
               jitter: bool = True) -> np.ndarray:
    """Boolean mask (HW) of one shape instance on a ``size``×``size`` canvas."""
    if shape not in SHAPE_NAMES:
        raise KeyError(f"unknown shape {shape!r}; choices: {SHAPE_NAMES}")
    rng = rng or np.random.default_rng(0)
    if jitter:
        cy = size / 2 + rng.uniform(-0.05, 0.05) * size
        cx = size / 2 + rng.uniform(-0.05, 0.05) * size
        radius = size * rng.uniform(0.32, 0.42)
        rotation = rng.uniform(0, 2 * math.pi)
    else:
        cy = cx = size / 2
        radius = size * 0.4
        rotation = 0.0

    if shape == "circle":
        return circle_mask((size, size), cy, cx, radius)
    if shape == "square":
        points = regular_polygon_points(cy, cx, radius, 4, rotation)
    elif shape == "triangle":
        points = regular_polygon_points(cy, cx, radius, 3, rotation)
    else:  # star
        inner = radius * (rng.uniform(0.38, 0.5) if jitter else 0.45)
        points = star_points(cy, cx, radius, inner, spikes=5, rotation=rotation)
    return polygon_mask((size, size), points)


def shape_image(shape: str, size: int, rng: np.random.Generator = None,
                jitter: bool = True) -> np.ndarray:
    """One Four-Shapes sample: 1×size×size float, black shape on white."""
    mask = shape_mask(shape, size, rng, jitter)
    image = np.ones((1, size, size), dtype=np.float32)
    image[0, mask] = 0.0
    return image


def sample_batch(shape: str, size: int, count: int,
                 rng: np.random.Generator) -> np.ndarray:
    """A batch (N, 1, size, size) of jittered instances of one shape class."""
    return np.stack([shape_image(shape, size, rng) for _ in range(count)])
