"""Background removal for generated patches.

The paper's pipeline "removes the backgrounds from the APs" before pasting:
the generator emits a black shape on a white background, and only the shape
pixels become the physical decal. During attack training this must stay
differentiable, so the hard threshold is replaced by a steep sigmoid
("soft mask"); evaluation and physical deployment use the hard version.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = ["soft_background_mask", "hard_background_mask"]

#: Pixels darker than this are considered part of the shape (the decal ink).
INK_THRESHOLD = 0.5


def soft_background_mask(patch: Tensor, sharpness: float = 20.0) -> Tensor:
    """Differentiable alpha: ≈1 where the patch is dark (ink), ≈0 on background.

    ``alpha = σ(sharpness · (threshold − patch))`` — steep enough to act as
    a cut-out yet smooth enough for gradients to shape the decal boundary.
    """
    return F.sigmoid((INK_THRESHOLD - patch) * sharpness)


def hard_background_mask(patch: np.ndarray, threshold: float = INK_THRESHOLD) -> np.ndarray:
    """Binary alpha used when deploying/evaluating the physical decal."""
    patch = np.asarray(patch)
    if patch.ndim == 3:
        luminance = patch.mean(axis=0)
    else:
        luminance = patch
    return (luminance < threshold).astype(np.float32)
