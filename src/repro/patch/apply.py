"""Compositing decals into frames.

Two paths, mirroring the paper's workflow:

* **Training (differentiable)** — :func:`apply_patches`: the generator's
  patch tensor is EOT-transformed upstream, resized to its apparent size in
  the frame, background-removed with a soft mask, and alpha-composited.
  Gradients flow from the detector loss back to the generator.
* **Evaluation / physical (numpy)** — :func:`paste_patch_perspective`: the
  deployed decal lies flat on the road, so it is warped by the true
  camera homography of its ground quad before compositing. This is the
  geometry the EOT 'perspective' trick must anticipate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Tensor, concatenate
from ..nn import functional as F
from ..nn.tensor import pad2d

__all__ = ["PixelPlacement", "apply_patches", "solve_homography", "paste_patch_perspective"]


@dataclass
class PixelPlacement:
    """Axis-aligned paste location in frame pixels (training path).

    ``size_px`` is the decal's apparent width; ``height_px`` its apparent
    vertical extent. For a decal lying on the road the height is strongly
    foreshortened (a 1.5 m decal at 7 m spans ~5× more pixels horizontally
    than vertically), so training composites must use the same anisotropic
    scaling the evaluation-time perspective paste produces — otherwise the
    patch is optimized for a shape it never has on the road.
    """

    center_y: float
    center_x: float
    size_px: float
    height_px: Optional[float] = None

    @property
    def paste_height(self) -> float:
        return self.height_px if self.height_px is not None else self.size_px


def _to_rgb(patch: Tensor) -> Tensor:
    """Broadcast a 1-channel patch batch to 3 channels."""
    if patch.shape[1] == 3:
        return patch
    if patch.shape[1] != 1:
        raise ValueError(f"patch must have 1 or 3 channels, got {patch.shape[1]}")
    return concatenate([patch, patch, patch], axis=1)


def apply_patches(
    frame: np.ndarray,
    patches: Sequence[Tensor],
    alphas: Sequence[Tensor],
    placements: Sequence[PixelPlacement],
) -> Tensor:
    """Differentiably composite N patch tensors into one frame.

    Parameters
    ----------
    frame:
        CHW float numpy background (no gradient — the paper's training
        images are fixed photographs).
    patches / alphas:
        Per-placement patch tensors shaped (1, 1|3, k, k) and alpha tensors
        shaped (1, 1, k, k); they may differ per placement because each has
        its own EOT sample (the paper rotates each of the N decals
        independently, Fig. 2).
    placements:
        Pixel-space paste locations; patches falling entirely outside the
        frame are skipped.
    """
    if not (len(patches) == len(alphas) == len(placements)):
        raise ValueError("patches, alphas and placements must align")
    _, height, width = frame.shape
    out = Tensor(frame[None].astype(np.float32))
    for patch, alpha, placement in zip(patches, alphas, placements):
        size_w = int(round(placement.size_px))
        size_h = int(round(placement.paste_height))
        if size_w < 2 or size_h < 1:
            continue
        top = int(round(placement.center_y - size_h / 2.0))
        left = int(round(placement.center_x - size_w / 2.0))
        if top + size_h <= 0 or left + size_w <= 0 or top >= height or left >= width:
            continue
        rgb = _to_rgb(F.interpolate_bilinear(patch, (size_h, size_w)))
        a = F.interpolate_bilinear(alpha, (size_h, size_w))
        # Crop the parts that stick out of the frame.
        crop_top = max(0, -top)
        crop_left = max(0, -left)
        crop_bottom = max(0, top + size_h - height)
        crop_right = max(0, left + size_w - width)
        if crop_top or crop_left or crop_bottom or crop_right:
            rgb = rgb[:, :, crop_top:size_h - crop_bottom, crop_left:size_w - crop_right]
            a = a[:, :, crop_top:size_h - crop_bottom, crop_left:size_w - crop_right]
        paste_top = top + crop_top
        paste_left = left + crop_left
        h_in = rgb.shape[2]
        w_in = rgb.shape[3]
        if h_in < 1 or w_in < 1:
            continue
        pad_spec = (paste_top, height - paste_top - h_in,
                    paste_left, width - paste_left - w_in)
        rgb_full = pad2d(rgb, pad_spec)
        alpha_full = pad2d(a, pad_spec)
        out = out * (1.0 - alpha_full) + rgb_full * alpha_full
    return out


# ----------------------------------------------------------------------
# Perspective paste (evaluation / physical deployment path)
# ----------------------------------------------------------------------

def solve_homography(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Homography H (3×3) with ``dst ~ H @ src`` from 4 point pairs (x, y)."""
    src = np.asarray(src, dtype=np.float64).reshape(4, 2)
    dst = np.asarray(dst, dtype=np.float64).reshape(4, 2)
    rows = []
    for (sx, sy), (dx, dy) in zip(src, dst):
        rows.append([sx, sy, 1, 0, 0, 0, -dx * sx, -dx * sy, -dx])
        rows.append([0, 0, 0, sx, sy, 1, -dy * sx, -dy * sy, -dy])
    matrix = np.asarray(rows)
    _, _, vt = np.linalg.svd(matrix)
    h = vt[-1].reshape(3, 3)
    if abs(h[2, 2]) < 1e-12:
        raise ValueError("degenerate homography")
    return h / h[2, 2]


def paste_patch_perspective(
    frame: np.ndarray,
    patch_rgb: np.ndarray,
    alpha: np.ndarray,
    quad_vu: np.ndarray,
) -> np.ndarray:
    """Composite a flat road decal into a frame through its ground quad.

    Parameters
    ----------
    frame:
        CHW float image (modified copy is returned).
    patch_rgb:
        CHW decal appearance (k×k).
    alpha:
        HW decal alpha in [0, 1].
    quad_vu:
        4×2 array of (v, u) frame coordinates ordered
        near-left, near-right, far-right, far-left (see
        :meth:`repro.scene.camera.Camera.ground_patch_quad`).
    """
    frame = frame.copy()
    _, height, width = frame.shape
    k = patch_rgb.shape[1]
    quad = np.asarray(quad_vu, dtype=np.float64)
    # Patch corners in (x, y): bottom edge = near edge of the quad.
    src = np.asarray(
        [[0, k - 1], [k - 1, k - 1], [k - 1, 0], [0, 0]], dtype=np.float64
    )
    dst = quad[:, ::-1]  # (v, u) -> (u=x, v=y)
    h_matrix = solve_homography(src, dst)
    h_inverse = np.linalg.inv(h_matrix)

    v0 = int(np.floor(quad[:, 0].min()))
    v1 = int(np.ceil(quad[:, 0].max())) + 1
    u0 = int(np.floor(quad[:, 1].min()))
    u1 = int(np.ceil(quad[:, 1].max())) + 1
    v0, v1 = max(v0, 0), min(v1, height)
    u0, u1 = max(u0, 0), min(u1, width)
    if v0 >= v1 or u0 >= u1:
        return frame

    vs, us = np.mgrid[v0:v1, u0:u1].astype(np.float64)
    ones = np.ones_like(us)
    coords = np.stack([us.ravel(), vs.ravel(), ones.ravel()])
    mapped = h_inverse @ coords
    px = mapped[0] / mapped[2]
    py = mapped[1] / mapped[2]
    inside = (px >= 0) & (px <= k - 1) & (py >= 0) & (py <= k - 1)
    if not inside.any():
        return frame
    px_c = np.clip(px, 0, k - 1)
    py_c = np.clip(py, 0, k - 1)
    x_floor = np.floor(px_c).astype(int)
    y_floor = np.floor(py_c).astype(int)
    x_ceil = np.minimum(x_floor + 1, k - 1)
    y_ceil = np.minimum(y_floor + 1, k - 1)
    wx = (px_c - x_floor).astype(np.float32)
    wy = (py_c - y_floor).astype(np.float32)

    def sample(array: np.ndarray) -> np.ndarray:
        if array.ndim == 2:
            array = array[None]
        return (
            array[:, y_floor, x_floor] * (1 - wy) * (1 - wx)
            + array[:, y_floor, x_ceil] * (1 - wy) * wx
            + array[:, y_ceil, x_floor] * wy * (1 - wx)
            + array[:, y_ceil, x_ceil] * wy * wx
        )

    patch_values = sample(patch_rgb.astype(np.float32))
    alpha_values = sample(alpha.astype(np.float32))[0] * inside
    region_shape = (v1 - v0, u1 - u0)
    alpha_map = alpha_values.reshape(region_shape)
    patch_map = patch_values.reshape(3, *region_shape)
    region = frame[:, v0:v1, u0:u1]
    frame[:, v0:v1, u0:u1] = region * (1 - alpha_map) + patch_map * alpha_map
    return frame
