"""`repro.patch` — decal shapes, masking, placement and compositing."""

from .apply import PixelPlacement, apply_patches, paste_patch_perspective, solve_homography
from .mask import hard_background_mask, soft_background_mask
from .placement import (
    DECAL_ELONGATION,
    PATCH_METERS_PER_K,
    REFERENCE_K,
    Placement,
    patch_world_length,
    patch_world_size,
    placement_offsets,
)
from .shapes import SHAPE_NAMES, sample_batch, shape_image, shape_mask

__all__ = [
    "SHAPE_NAMES",
    "shape_image",
    "shape_mask",
    "sample_batch",
    "soft_background_mask",
    "hard_background_mask",
    "PixelPlacement",
    "apply_patches",
    "paste_patch_perspective",
    "solve_homography",
    "Placement",
    "placement_offsets",
    "patch_world_size",
    "patch_world_length",
    "PATCH_METERS_PER_K",
    "REFERENCE_K",
    "DECAL_ELONGATION",
]
