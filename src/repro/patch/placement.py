"""Patch placement around the target object.

The paper uses several small decals "close to target objects" (§III-A),
keeping the *total* decal area constant across different patch counts N in
the Table III ablation. This module computes:

* world-space placements — (dz, dx) offsets in metres from the target
  object, used by the evaluation videos where decals lie on the road and
  project with true perspective; and
* the pixel-size mapping from the paper's patch parameter ``k`` to a decal
  side length in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "PATCH_METERS_PER_K",
    "REFERENCE_K",
    "DECAL_ELONGATION",
    "patch_world_size",
    "patch_world_length",
    "placement_offsets",
]

#: Physical decals are stretched 3× along the driving direction, as real
#: road markings are, so their camera-apparent shape stays near-square
#: despite ground-plane foreshortening (documented substitution — the
#: paper's square decals at 416² have enough pixels without this).
DECAL_ELONGATION = 3.0

#: The paper's best patch is k=60 pixels; we map that to a 1.5 m road decal
#: (the scale at which decals meaningfully enter the detector's receptive
#: field at our reduced frame resolution — calibrated empirically).
REFERENCE_K = 60
PATCH_METERS_PER_K = 1.5 / REFERENCE_K


def patch_world_size(k: int, n_patches: int = 4, reference_n: int = 4,
                     constant_total_area: bool = False) -> float:
    """Side length (metres) of one square decal for patch parameter ``k``.

    With ``constant_total_area`` (the Table III protocol), the per-decal
    size shrinks as N grows so that N × side² stays equal to the reference
    configuration's total area.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    side = k * PATCH_METERS_PER_K
    if constant_total_area and n_patches != reference_n:
        side *= math.sqrt(reference_n / n_patches)
    return side


def patch_world_length(k: int, n_patches: int = 4, reference_n: int = 4,
                       constant_total_area: bool = False) -> float:
    """Along-road extent of one decal (elongated, see DECAL_ELONGATION)."""
    return DECAL_ELONGATION * patch_world_size(
        k, n_patches=n_patches, reference_n=reference_n,
        constant_total_area=constant_total_area,
    )


@dataclass(frozen=True)
class Placement:
    """One decal placement: world offset from the target object center."""

    dz: float  # metres along the road (positive = farther from camera)
    dx: float  # metres lateral (positive = right)


def placement_offsets(n_patches: int, spread: float = 0.75,
                      row_step: float = 2.6) -> List[Placement]:
    """Deterministic decal layout flanking the target object.

    Decals alternate left/right of the object and advance along the road,
    mirroring the photographs in the paper's Fig. 6: 2 decals sit beside
    the object, 4 form a flanking square, 6/8 extend the columns.
    ``spread`` is the lateral offset in metres; ``row_step`` the along-road
    spacing between decal rows (large enough that elongated decals do not
    overlap each other).
    """
    if n_patches < 1:
        raise ValueError("need at least one patch")
    offsets: List[Placement] = []
    rows = (n_patches + 1) // 2
    for i in range(n_patches):
        row = i // 2
        side = -1.0 if i % 2 == 0 else 1.0
        # Center the rows on the object along the road.
        dz = (row - (rows - 1) / 2.0) * row_step
        offsets.append(Placement(dz=dz, dx=side * spread))
    return offsets
