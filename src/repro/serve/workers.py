"""Spawn-side inference workers for the serving pool.

Module-level (picklable-by-reference) ``init_fn``/``work_fn`` pair for
:class:`repro.parallel.WorkerPool`, plus the slab-spec and wire-format
helpers shared between the parent and the workers.

Transport layout (all ``repro.parallel.shm`` machinery):

* detector weights+buffers travel **once**, through the pool's parameter
  slab (broadcast at server start — the detector is frozen, so there is
  never a re-broadcast);
* frames travel through a dedicated :class:`~repro.parallel.shm.SharedSlab`
  with one slot per admitted request — the task queue only ever carries
  ``{"slots": [...]}`` descriptors, never pixels;
* detections return through the result queue as plain tuples (they are a
  few dozen floats — the one payload small enough to pickle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..detection.config import TinyYoloConfig
from ..detection.decode import Detection, batched_detections
from ..detection.model import TinyYolo
from ..nn.quant import resolve_inference_model
from ..parallel import ArraySpec, SharedSlab, SlabHandle

__all__ = [
    "ServeWorkerPayload",
    "serve_worker_init",
    "serve_worker_infer",
    "detector_param_specs",
    "frame_spec",
    "encode_detections",
    "decode_detections",
]

#: Name of the single frame array in the request slab.
FRAME_ARRAY = "frame"


def detector_param_specs(detector: TinyYolo) -> Tuple[ArraySpec, ...]:
    """Parameter-slab specs covering the full state dict (weights *and*
    batch-norm buffers, so a worker reload is total)."""
    return tuple(
        ArraySpec(key, tuple(np.shape(value)), str(np.asarray(value).dtype))
        for key, value in detector.state_dict().items()
    )


def frame_spec(input_size: int) -> ArraySpec:
    """Spec of one CHW frame slot in the request slab."""
    return ArraySpec(FRAME_ARRAY, (3, input_size, input_size), "float32")


def encode_detections(detections: List[Detection]) -> list:
    """Wire format: one small tuple per detection (queue-picklable)."""
    return [
        (
            [float(v) for v in det.box_xyxy],
            float(det.score),
            int(det.class_id),
            [float(v) for v in det.class_probs],
        )
        for det in detections
    ]


def decode_detections(encoded: Sequence[tuple]) -> List[Detection]:
    """Inverse of :func:`encode_detections`."""
    return [
        Detection(
            box_xyxy=np.asarray(box, dtype=np.float32),
            score=float(score),
            class_id=int(class_id),
            class_probs=np.asarray(probs, dtype=np.float32),
        )
        for box, score, class_id, probs in encoded
    ]


@dataclass(frozen=True)
class ServeWorkerPayload:
    """Everything a worker needs besides the broadcast weights."""

    detector_config: TinyYoloConfig
    frame_handle: SlabHandle
    conf_threshold: float
    iou_threshold: float
    max_detections: int
    fail_init: bool = False
    #: Compile the worker's detector through the eval-time lowering pass
    #: after each weight load (DESIGN.md §13).
    lowered: bool = False
    #: ``"fp"`` or ``"int8"`` — int8 re-quantizes after each weight load
    #: (DESIGN.md §15) and requires ``calibration``.
    precision: str = "fp"
    #: Calibration ranges for the int8 path. A
    #: :class:`~repro.nn.quant.CalibrationResult` is a small plain-field
    #: object, so it pickles through the spawn boundary by value — the
    #: ranges are data, not weights, and need no slab transport.
    calibration: Optional[object] = None


@dataclass
class _ServeContext:
    model: TinyYolo
    frames: SharedSlab
    payload: ServeWorkerPayload
    loaded_params: Optional[Dict[str, np.ndarray]] = None
    #: Compiled executor (lowered or quantized) built from the
    #: currently-loaded params; kept in lockstep with ``loaded_params``
    #: (folded weights/scales are copies, so any reload must re-compile).
    infer_model: Optional[object] = None


def serve_worker_init(payload: ServeWorkerPayload) -> _ServeContext:
    """Build the detector skeleton and attach the frame slab, once."""
    if payload.fail_init:
        raise RuntimeError("injected worker init failure (chaos hook)")
    model = TinyYolo(payload.detector_config)
    model.eval()
    for param in model.parameters():
        param.requires_grad = False
    frames = SharedSlab.attach(payload.frame_handle)
    return _ServeContext(model=model, frames=frames, payload=payload)


def serve_worker_infer(ctx: _ServeContext, params: Dict[str, np.ndarray],
                       task: dict) -> List[tuple]:
    """One batch forward: read the task's slots, detect, return rows.

    ``params`` is the slab read of the (frozen) detector state; the pool
    hands back the same object until a re-broadcast, so loading it into
    the model is an identity-guarded one-time cost per worker.

    Row shape follows the pool contract: ``(slot, grads, scalars)`` with
    an empty grads dict (the serve pool declares no gradient arrays) and
    the encoded detections as the scalar payload.
    """
    if ctx.loaded_params is not params:
        ctx.model.load_state_dict(params)
        ctx.loaded_params = params
        # Compile *after* the load: folding/quantization copies the
        # weights, so an executor built from stale params would serve
        # stale detections.
        payload = ctx.payload
        if payload.lowered or payload.precision == "int8":
            ctx.infer_model = resolve_inference_model(
                ctx.model, precision=payload.precision,
                lowered=payload.lowered, calibration=payload.calibration)
        else:
            ctx.infer_model = None
    sleep_s = float(task.get("sleep_s", 0.0))
    if sleep_s > 0.0:  # chaos hook: simulate a hung forward
        import time
        time.sleep(sleep_s)
    slots = list(task["slots"])
    frames = [ctx.frames.slot_copy(FRAME_ARRAY, slot) for slot in slots]
    per_frame = batched_detections(
        ctx.infer_model if ctx.infer_model is not None else ctx.model,
        frames,
        conf_threshold=ctx.payload.conf_threshold,
        iou_threshold=ctx.payload.iou_threshold,
        max_detections=ctx.payload.max_detections,
        batch_size=max(1, len(frames)),
    )
    return [(slot, {}, encode_detections(dets))
            for slot, dets in zip(slots, per_frame)]
