"""Configuration and error vocabulary for the detection serving layer.

One :class:`ServeConfig` captures every robustness knob of the server —
how much concurrency it admits (sessions), how much work it will hold
(the bounded slot queue), how long it will trade latency for batch
occupancy (the batch window), and when it gives up on a request (the
deadline). Everything is explicit and bounded: overload policy is
*reject at admission*, never silent unbounded queueing (DESIGN.md §11).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig", "AdmissionError", "ServerClosed"]


class AdmissionError(RuntimeError):
    """The server refused a new session (tenant limit reached)."""


class ServerClosed(RuntimeError):
    """The server is shut down (or draining) and accepts no new work."""


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.DetectionServer`.

    Attributes
    ----------
    workers:
        Inference worker processes. ``0`` serves in-process (the degraded
        mode, chosen up front) — still batched and still asynchronous
        with respect to clients, just without process-level parallelism
        or crash isolation.
    max_batch:
        Upper bound on frames coalesced into one detector forward.
    batch_window_s:
        Longest a queued request may wait for co-batchers before a
        partial batch is dispatched anyway — the latency half of the
        latency-vs-throughput deadline policy. ``0`` dispatches eagerly.
    queue_capacity:
        The bounded request pool: queued **plus** in-flight frames. A
        submit that finds no free slot is shed immediately with status
        ``"shed"`` — queue depth can never exceed this number.
    max_sessions:
        Concurrent stream sessions admitted (multi-tenant cap); the
        ``max_sessions + 1``-th :meth:`open_session` raises
        :class:`AdmissionError`.
    deadline_s:
        Default per-request deadline, measured from admission. A request
        still queued past it is answered ``"timeout"`` without touching
        the detector; one completed past it is answered ``"timeout"``
        with its detections discarded (the client has moved on).
    task_timeout_s:
        Pool-level bound on one batch forward; a worker exceeding it is
        killed and the batch redispatched (then failed — retry-once).
    retry_once:
        Redispatch a batch exactly once after its worker died or hung
        (``max_task_retries=1``); ``False`` fails it on first loss.
    poll_interval_s:
        Scheduler-loop result-poll granularity while batches are in
        flight.
    stats_interval_s:
        How often (scheduler-loop time) the server mirrors its ledger
        into the obs metrics registry and refreshes the atomic
        ``serve_stats.json`` snapshot — so a crashed or SIGKILLed server
        still leaves a recent, loadable stats file behind. Mirroring is
        delta-based, so periodic mirrors and the final one at
        :meth:`~repro.serve.server.DetectionServer.close` never
        double-count. Only active when an obs run is attached.
    degraded_ok:
        Permit the serial in-process fallback when the worker pool
        cannot be built or becomes unusable. ``False`` turns those
        events into ``"failed"`` responses instead.
    lowered:
        Run inference through the eval-time lowered detector
        (``TinyYolo.lower()``, DESIGN.md §13): BN folded into the conv
        weights, fused epilogues, pre-planned buffers. Same detections
        within the lowering parity tolerance, measurably faster. Applies
        to both the worker pool (each worker lowers after loading the
        broadcast weights) and the in-process fallback. Default off.
    precision:
        ``"fp"`` (default) or ``"int8"``. Int8 runs inference through the
        post-training-quantized plan (DESIGN.md §15): each pool worker
        re-quantizes after loading the broadcast weights, exactly as it
        re-lowers today, and the in-process fallback quantizes locally.
        Requires a calibration result passed to the server
        (``DetectionServer(calibration=...)``) — detections then match
        the fp oracle within the bench accuracy budget, not bit-exactly.
        All delivery guarantees (admission, deadlines, exactly-once,
        chaos recovery) are precision-independent.
    debug_fail_worker_init:
        Test/chaos hook: makes every pool worker raise in its init
        function, simulating a pool that cannot be (re)built.
    """

    workers: int = 2
    max_batch: int = 8
    batch_window_s: float = 0.004
    queue_capacity: int = 64
    max_sessions: int = 16
    deadline_s: float = 5.0
    task_timeout_s: float = 30.0
    retry_once: bool = True
    poll_interval_s: float = 0.002
    stats_interval_s: float = 1.0
    degraded_ok: bool = True
    lowered: bool = False
    precision: str = "fp"
    debug_fail_worker_init: bool = False

    def __post_init__(self) -> None:
        if self.precision not in ("fp", "int8"):
            raise ValueError(
                f"precision must be 'fp' or 'int8', got {self.precision!r}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.batch_window_s < 0 or self.deadline_s <= 0:
            raise ValueError("batch_window_s must be >= 0 and deadline_s > 0")
        if self.task_timeout_s <= 0 or self.poll_interval_s <= 0:
            raise ValueError("task_timeout_s and poll_interval_s must be > 0")
        if self.stats_interval_s <= 0:
            raise ValueError("stats_interval_s must be > 0")

    @property
    def max_task_retries(self) -> int:
        return 1 if self.retry_once else 0
