"""`repro.serve` — robust detection-as-a-service (DESIGN.md §11).

The serving layer turns the batched inference hot path (DESIGN.md §8) and
the hardened worker pool (DESIGN.md §10) into an async multi-tenant
server:

* :mod:`.config` — the bounded-everything knob set (admission, queue,
  batch window, deadlines, retry-once, degraded fallback);
* :mod:`.scheduler` — process-free scheduling primitives: the bounded
  shared-memory frame store, the batch-cut deadline policy, the
  request/response vocabulary, and the thread-safe stats ledger;
* :mod:`.backends` — where batches run: the ``repro.parallel`` worker
  pool (scale path) or serial in-process inference (degraded mode);
* :mod:`.workers` — spawn-side detector workers and the slab/wire
  formats they share with the parent;
* :mod:`.server` — :class:`DetectionServer`, the client-facing object:
  sessions, futures, the scheduler thread, chaos-tested recovery.

Benchmarked by ``scripts/bench_serve.py`` (``BENCH_serve.json``): p50/p99
latency and sustained frames/sec at N simulated clients, plus overload
(bounded shed) and chaos (worker SIGKILL) phases.
"""

from .backends import InprocBackend, PoolBackend
from .config import AdmissionError, ServeConfig, ServerClosed
from .scheduler import (
    DetectionResponse,
    FrameStore,
    PendingRequest,
    RequestStatus,
    ServeStats,
    batch_cut,
    next_wake,
)
from .server import SERVE_STATS_NAME, DetectionServer, StreamSession

__all__ = [
    "AdmissionError",
    "ServeConfig",
    "ServerClosed",
    "DetectionResponse",
    "FrameStore",
    "PendingRequest",
    "RequestStatus",
    "ServeStats",
    "batch_cut",
    "next_wake",
    "InprocBackend",
    "PoolBackend",
    "DetectionServer",
    "StreamSession",
    "SERVE_STATS_NAME",
]
