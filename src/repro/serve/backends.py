"""Inference backends: where a dispatched batch actually runs.

The scheduler speaks one tiny interface — ``submit(task) -> task_id`` /
``poll(timeout) -> [TaskOutcome]`` — with two implementations:

* :class:`PoolBackend` — the scale path: a hardened
  :class:`repro.parallel.WorkerPool` of spawned inference processes,
  weights broadcast once through shared memory, frames read from the
  request slab. Worker death/hang recovery (respawn, redispatch-once,
  exactly-once outcomes) comes from the pool itself.
* :class:`InprocBackend` — the degraded mode: serial in-process
  inference on the parent's own detector. No crash isolation, no
  parallelism — but no way to fail to start, which is exactly what the
  fallback path needs.

Both return rows in the pool's post-strip wire format (``(slot,
encoded)`` — the pool drops each row's grads dict before queueing it),
so the server decodes responses identically either way.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..detection.decode import batched_detections
from ..detection.model import TinyYolo
from ..nn.quant import resolve_inference_model
from ..parallel import PoolCounters, TaskOutcome, WorkerPool, WorkSpec
from .config import ServeConfig
from .scheduler import FrameStore
from .workers import (
    ServeWorkerPayload,
    detector_param_specs,
    encode_detections,
    serve_worker_infer,
    serve_worker_init,
)

__all__ = ["PoolBackend", "InprocBackend"]


class InprocBackend:
    """Serial in-process inference (degraded mode / ``workers=0``)."""

    name = "inproc"

    def __init__(self, detector: TinyYolo, store: FrameStore,
                 conf_threshold: float, iou_threshold: float,
                 max_detections: int, lowered: bool = False,
                 precision: str = "fp", calibration=None):
        self._detector = detector.eval()
        self._infer_model = resolve_inference_model(
            detector, precision=precision, lowered=lowered,
            calibration=calibration)
        self._store = store
        self._conf = conf_threshold
        self._iou = iou_threshold
        self._max_detections = max_detections
        self._task_ids = itertools.count()
        self._pending: List[tuple] = []
        self.counters = PoolCounters()

    def submit(self, task: dict) -> int:
        task_id = next(self._task_ids)
        self._pending.append((task_id, task))
        return task_id

    def poll(self, timeout: float = 0.0) -> List[TaskOutcome]:
        """Run every queued batch synchronously (timeout is irrelevant —
        the work happens on the calling thread)."""
        outcomes: List[TaskOutcome] = []
        pending, self._pending = self._pending, []
        for task_id, task in pending:
            try:
                slots = list(task["slots"])
                frames = [self._store.read(slot) for slot in slots]
                per_frame = batched_detections(
                    self._infer_model, frames, conf_threshold=self._conf,
                    iou_threshold=self._iou,
                    max_detections=self._max_detections,
                    batch_size=max(1, len(frames)),
                )
                rows = [(slot, encode_detections(dets))
                        for slot, dets in zip(slots, per_frame)]
                outcomes.append(TaskOutcome(task_id, "done", rows=rows))
            except Exception as exc:  # complete, don't crash the scheduler
                outcomes.append(TaskOutcome(task_id, "error", error=repr(exc)))
        return outcomes

    def worker_pids(self) -> List[int]:
        return []

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        self._pending.clear()


class PoolBackend:
    """Worker-pool inference over ``repro.parallel`` (the scale path)."""

    name = "pool"

    def __init__(self, detector: TinyYolo, store: FrameStore,
                 config: ServeConfig, conf_threshold: float,
                 iou_threshold: float, max_detections: int,
                 calibration=None):
        payload = ServeWorkerPayload(
            detector_config=detector.config,
            frame_handle=store.handle(),
            conf_threshold=conf_threshold,
            iou_threshold=iou_threshold,
            max_detections=max_detections,
            fail_init=config.debug_fail_worker_init,
            lowered=config.lowered,
            precision=config.precision,
            calibration=calibration,
        )
        spec = WorkSpec(
            init_fn=serve_worker_init,
            work_fn=serve_worker_infer,
            init_payload=payload,
            param_specs=detector_param_specs(detector),
            grad_specs=(),  # inference returns detections, not gradients
            max_samples=config.queue_capacity,
        )
        self._pool = WorkerPool(
            spec, config.workers,
            task_timeout=config.task_timeout_s,
            max_task_retries=config.max_task_retries,
            poll_interval=config.poll_interval_s,
        )
        # The detector is frozen: one broadcast for the pool's lifetime.
        self._pool.broadcast(detector.state_dict())
        #: Workers that died in ``init_fn`` before serving anything; the
        #: server reads this to decide the pool "cannot be (re)built".
        self.init_failures = 0

    def submit(self, task: dict) -> int:
        return self._pool.submit(task)

    def poll(self, timeout: float = 0.0) -> List[TaskOutcome]:
        outcomes = []
        for outcome in self._pool.pump(timeout):
            if outcome.task_id == -1:
                self.init_failures += 1
                continue
            outcomes.append(outcome)
        return outcomes

    def worker_pids(self) -> List[int]:
        return self._pool.worker_pids()

    @property
    def outstanding(self) -> int:
        return self._pool.outstanding

    @property
    def counters(self) -> PoolCounters:
        return self._pool.counters

    def close(self) -> None:
        self._pool.close()
