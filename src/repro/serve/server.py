"""`DetectionServer` — async multi-tenant detection-as-a-service.

Many concurrent clients open stream sessions and submit frames; a single
scheduler thread coalesces admitted requests into dynamic batches under
the latency-vs-throughput window policy and runs them on an inference
backend (worker pool, or serial in-process in degraded mode). Every
submission resolves a :class:`concurrent.futures.Future` with exactly one
terminal :class:`~repro.serve.scheduler.DetectionResponse` — accepted work
is never dropped and never answered twice, whatever happens to the
workers underneath (DESIGN.md §11).

Robustness contract:

* **admission control** — sessions beyond ``max_sessions`` are refused;
  frames beyond the bounded slot pool are shed *immediately* with status
  ``"shed"`` (queue depth is capped by construction, overload can never
  express itself as unbounded latency);
* **deadlines** — a request still queued past its deadline is answered
  ``"timeout"`` without costing a forward pass; one whose batch returns
  late is answered ``"timeout"`` too;
* **worker failure** — a SIGKILL'd or hung worker is detected by the
  pool, respawned, and its in-flight batch redispatched exactly once;
  if the batch is lost anyway, the server reruns it serially in-process
  (``degraded_ok``) so its requests still complete;
* **degraded mode** — if the pool cannot be built (or all workers fail
  init), the server falls back to serial in-process inference and keeps
  serving.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from ..detection.model import TinyYolo
from ..nn.functional import conv_workspace_totals
from ..nn.quant import QuantizationError, quant_runtime_totals
from ..obs import Run
from ..obs.live import LiveConfig, LiveTelemetry
from ..obs.run import write_json_atomic
from ..obs.trace import Tracer
from ..perf import process_stats
from .backends import InprocBackend, PoolBackend
from .config import AdmissionError, ServeConfig, ServerClosed
from .scheduler import (
    DetectionResponse,
    FrameStore,
    PendingRequest,
    RequestStatus,
    ServeStats,
    batch_cut,
    next_wake,
)
from .workers import decode_detections

__all__ = ["DetectionServer", "StreamSession", "SERVE_STATS_NAME"]

#: Atomic per-interval stats snapshot (``{obs.directory}/serve_stats.json``).
SERVE_STATS_NAME = "serve_stats.json"
SERVE_STATS_SCHEMA_VERSION = 1

#: Init failures (relative to the worker count) after which the pool is
#: declared unbuildable and the server drops to degraded mode.
_INIT_FAILURE_FACTOR = 2


def _shed_rate(live: LiveTelemetry, now: float) -> Optional[float]:
    """Derived SLO input: fraction of submits shed over the live window."""
    shed = live.rate("serve.shed", now)
    accepted = live.rate("serve.accepted", now)
    if shed is None or accepted is None:
        return None
    attempted = shed + accepted
    return shed / attempted if attempted > 0 else 0.0


def _respawns_per_min(live: LiveTelemetry, now: float) -> Optional[float]:
    """Derived SLO input: worker respawns per minute over the window."""
    rate = live.rate("serve.pool.respawns", now)
    return None if rate is None else 60.0 * rate


@dataclass
class StreamSession:
    """One tenant's admitted frame stream."""

    session_id: int
    name: str = ""

    def __post_init__(self) -> None:
        self._seq = itertools.count()
        self.open = True

    def next_seq(self) -> int:
        return next(self._seq)


class DetectionServer:
    """Async multi-tenant inference over a frozen detector.

    Parameters
    ----------
    detector:
        The frozen perception model; its weights are broadcast to the
        worker pool once and reused for serial fallback inference.
    config:
        Robustness/batching knobs (:class:`~repro.serve.config.ServeConfig`).
    obs:
        Optional :class:`repro.obs.Run`. The scheduler thread gets its
        *own* span tracer (``serve_trace.jsonl`` in the run directory —
        the run's main tracer is single-threaded by design), mirrors its
        stats into the run's metrics registry every
        ``config.stats_interval_s`` (delta-based, so the final mirror at
        :meth:`close` never double-counts), and refreshes an atomic
        ``serve_stats.json`` alongside — a SIGKILLed server still leaves
        a loadable last state.
    live:
        Optional :class:`repro.obs.LiveConfig` (or ``True`` for the
        defaults). Attaches a :class:`repro.obs.LiveTelemetry` sampler
        polling the server ledger, pool health, and process RSS/CPU,
        evaluating the configured SLO rules, and writing ``live.json`` /
        ``alerts.jsonl`` into the obs directory. ``None`` — the default —
        costs nothing: no thread, no probes, no files.
    calibration:
        :class:`~repro.nn.quant.CalibrationResult` backing
        ``ServeConfig(precision="int8")`` (DESIGN.md §15). Required when
        the config asks for int8 — validated here at construction, so a
        mis-configured server fails fast instead of on the first batch —
        and forwarded to pool workers (who re-quantize after the weight
        broadcast) and the in-process fallback alike.
    """

    def __init__(self, detector: TinyYolo, config: Optional[ServeConfig] = None,
                 obs: Optional[Run] = None, conf_threshold: float = 0.3,
                 iou_threshold: float = 0.45, max_detections: int = 50,
                 live=None, calibration=None):
        self.config = config or ServeConfig()
        if self.config.precision == "int8" and calibration is None:
            raise QuantizationError(
                "ServeConfig(precision='int8') requires calibration: pass "
                "DetectionServer(calibration=CalibrationResult) — run "
                "calibrate_detector(detector, frames) first")
        self.calibration = calibration
        self.detector = detector.eval()
        self.obs = obs
        self._conf = conf_threshold
        self._iou = iou_threshold
        self._max_detections = max_detections
        self.stats = ServeStats()

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: Deque[PendingRequest] = deque()
        self._inflight: Dict[int, List[PendingRequest]] = {}
        self._sessions: Dict[int, StreamSession] = {}
        self._session_ids = itertools.count()
        self._draining = False
        self._abort = False
        self._closed = False
        self.degraded = False
        self._backend_broken = False
        # Pool-health bookkeeping: batches the pool actually completed,
        # and the current run of consecutive pool-lost batches.
        self._pool_ok_batches = 0
        self._pool_failure_streak = 0

        # Delta-based mirror state: what has already been folded into the
        # obs metrics registry, so periodic mirrors + the final one at
        # close() sum to exactly the ledger totals (no double-counting).
        self._mirror_lock = threading.Lock()
        self._mirrored: Dict[str, float] = {}
        self._mirrored_latencies = 0
        self._mirrored_occupancy = 0
        self._last_mirror_t = time.monotonic()

        self._store = FrameStore(detector.config.input_size,
                                 self.config.queue_capacity)
        self._backend = self._build_backend()
        self._tracer: Optional[Tracer] = None
        if obs is not None:
            self._tracer = Tracer(
                sink_path=os.path.join(obs.directory, "serve_trace.jsonl"))

        self.live: Optional[LiveTelemetry] = None
        if live is not None and live is not False:
            live_config = live if isinstance(live, LiveConfig) else LiveConfig()
            self.live = LiveTelemetry(
                directory=obs.directory if obs is not None else None,
                config=live_config,
                metrics=obs.metrics if obs is not None else None)
            self.live.add_probe("serve", self.probe)
            self.live.add_probe("proc", process_stats)
            # Conv workspace occupancy (buffer_bytes, hits/misses,
            # evictions) aggregated across every thread's workspace plus
            # any lowered-plan caches — the memory side of the hot path.
            self.live.add_probe("workspace", conv_workspace_totals)
            # Quantization runtime: calibration range summary, plan-cache
            # sizes and dequant-epilogue counts over every quantized
            # detector in-process — shows which precision is serving.
            # All zeros on an fp server (the probe is precision-agnostic;
            # pool workers' quantized detectors live in *their* processes
            # and surface through their own telemetry, not this probe).
            self.live.add_probe("quant", quant_runtime_totals)
            self.live.add_derived("serve.shed_rate", _shed_rate)
            self.live.add_derived("serve.respawns_per_min", _respawns_per_min)
            if obs is not None:
                # Satellite of the durability contract: refresh the stats
                # mirror + atomic serve_stats.json on *every* sampler tick,
                # not just at close.
                self.live.add_snapshot_writer(self.mirror_stats)

        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-scheduler")
        self._thread.start()
        if self.live is not None:
            self.live.start()

    # -- construction ---------------------------------------------------
    def _inproc_backend(self) -> InprocBackend:
        return InprocBackend(self.detector, self._store, self._conf,
                             self._iou, self._max_detections,
                             lowered=self.config.lowered,
                             precision=self.config.precision,
                             calibration=self.calibration)

    def _build_backend(self):
        if self.config.workers == 0:
            self.degraded = True  # chosen up front, not a failure
            return self._inproc_backend()
        try:
            return PoolBackend(self.detector, self._store, self.config,
                               self._conf, self._iou, self._max_detections,
                               calibration=self.calibration)
        except Exception:
            if not self.config.degraded_ok:
                raise
            self.degraded = True
            return self._inproc_backend()

    # -- client surface -------------------------------------------------
    def open_session(self, name: str = "") -> StreamSession:
        """Admit one tenant stream; raises :class:`AdmissionError` when
        the multi-tenant cap is reached."""
        with self._lock:
            if self._closed or self._draining:
                raise ServerClosed("server is shutting down")
            if len(self._sessions) >= self.config.max_sessions:
                self.stats.count("admission_rejected")
                raise AdmissionError(
                    f"session limit {self.config.max_sessions} reached")
            session = StreamSession(next(self._session_ids), name=name)
            self._sessions[session.session_id] = session
            return session

    def close_session(self, session: StreamSession) -> None:
        with self._lock:
            session.open = False
            self._sessions.pop(session.session_id, None)

    def submit(self, session: StreamSession, frame: np.ndarray,
               deadline_s: Optional[float] = None) -> "Future[DetectionResponse]":
        """Submit one CHW frame; resolves to exactly one terminal response.

        Never blocks on a full server: with no free queue slot the
        request is *shed* — the future resolves immediately with status
        ``"shed"`` and an incremented shed counter, instead of joining an
        unbounded queue.
        """
        if not session.open:
            raise ValueError(f"session {session.session_id} is closed")
        with self._lock:
            if self._closed or self._draining:
                raise ServerClosed("server is shutting down")
        frame = np.asarray(frame, dtype=np.float32)
        seq = session.next_seq()
        future: "Future[DetectionResponse]" = Future()
        slot = self._store.acquire(frame)  # raises ValueError on bad shape
        if slot is None:
            self.stats.count("shed")
            future.set_result(DetectionResponse(
                session.session_id, seq, RequestStatus.SHED))
            return future
        now = time.monotonic()
        pending = PendingRequest(
            session_id=session.session_id, seq=seq, slot=slot,
            enqueue_t=now,
            deadline_t=now + (deadline_s if deadline_s is not None
                              else self.config.deadline_s),
            future=future,
        )
        with self._cond:
            if self._closed or self._draining:
                self._store.release(slot)
                future.set_result(DetectionResponse(
                    session.session_id, seq, RequestStatus.CANCELLED))
                return future
            self._queue.append(pending)
            self.stats.count("accepted")
            self.stats.observe_depth(self._store.in_use)
            self._cond.notify()
        return future

    def submit_async(self, session: StreamSession, frame: np.ndarray,
                     deadline_s: Optional[float] = None):
        """Awaitable facade over :meth:`submit` (asyncio clients)."""
        import asyncio
        return asyncio.wrap_future(self.submit(session, frame, deadline_s))

    def worker_pids(self) -> List[int]:
        """Live inference-worker pids (chaos testing: SIGKILL one)."""
        return self._backend.worker_pids()

    def snapshot(self) -> dict:
        """JSON-ready stats: ledger + pool counters + mode."""
        out = self.stats.snapshot()
        counters = self._backend.counters
        out.update({
            "mode": self._backend.name,
            "degraded": self.degraded,
            "precision": self.config.precision,
            "queue_capacity": self.config.queue_capacity,
            "pool": {
                "respawns": counters.respawns,
                "requeues": counters.requeues,
                "timeouts": counters.timeouts,
                "worker_deaths": counters.worker_deaths,
            },
        })
        return out

    def probe(self) -> dict:
        """Live-telemetry probe (``LiveTelemetry.add_probe`` target):
        flat scalars — ledger counters, rolling latency percentiles,
        current queue depth, batch fill, and pool health."""
        out = self.stats.probe()
        out["queue_depth"] = self._store.in_use
        out["degraded"] = 1.0 if self.degraded else 0.0
        out["int8"] = 1.0 if self.config.precision == "int8" else 0.0
        occupancy = out.get("recent_batch_occupancy")
        if occupancy is not None:
            out["batch_fill"] = occupancy / self.config.max_batch
        counters = self._backend.counters
        for attr in ("respawns", "requeues", "timeouts", "worker_deaths"):
            out[f"pool.{attr}"] = getattr(counters, attr)
        return out

    # -- shutdown -------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the server. ``drain=True`` completes all admitted work
        first; ``drain=False`` cancels queued and in-flight requests."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            self._abort = not drain
            self._cond.notify_all()
        self._thread.join(timeout=max(60.0, 4 * self.config.task_timeout_s))
        if self.live is not None:
            # Final sampler tick runs the serve_stats mirror one last time.
            self.live.stop()
        self._backend.close()
        self._store.close()
        if self.obs is not None:
            self.mirror_stats()  # mop up deltas since the last tick
        if self._tracer is not None:
            self._tracer.flush()

    def __enter__(self) -> "DetectionServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def publish(self, obs: Run) -> None:
        """Mirror the server ledger into an obs metrics registry.

        Delta-based: only counts not yet mirrored by a previous
        :meth:`mirror_stats` tick are added, so calling this at close
        after a lifetime of periodic mirrors reaches exactly the ledger
        totals."""
        self._mirror_into(obs.metrics, self.snapshot())

    def mirror_stats(self) -> dict:
        """One periodic stats mirror: fold ledger deltas into the obs
        metrics registry and atomically refresh ``serve_stats.json``.

        Called from the scheduler loop every ``stats_interval_s`` and
        from every live-sampler tick; safe from either thread (one
        internal lock serializes mirror state). Returns the snapshot it
        published."""
        snap = self.snapshot()
        if self.obs is not None:
            self._mirror_into(self.obs.metrics, snap)
            write_json_atomic(
                os.path.join(self.obs.directory, SERVE_STATS_NAME),
                {"schema_version": SERVE_STATS_SCHEMA_VERSION,
                 "updated_unix": time.time(), "stats": snap})
        return snap

    def _mirror_into(self, metrics, snap: dict) -> None:
        with self._mirror_lock:
            for key in ("accepted", "shed", "ok", "timeouts", "failed",
                        "cancelled", "batches", "degraded_batches",
                        "admission_rejected"):
                value = snap.get(key, 0)
                delta = value - self._mirrored.get(key, 0)
                if delta > 0:
                    metrics.counter(f"serve.{key}").inc(delta)
                    self._mirrored[key] = value
            metrics.gauge("serve.max_queue_depth").set(snap["max_queue_depth"])
            metrics.gauge("serve.mean_batch_occupancy").set(
                snap["mean_batch_occupancy"])
            for attr, value in snap["pool"].items():
                delta = value - self._mirrored.get(f"pool.{attr}", 0)
                if delta > 0:
                    metrics.counter(f"serve.pool.{attr}").inc(delta)
                    self._mirrored[f"pool.{attr}"] = value
            with self.stats._lock:
                latencies = self.stats.latencies_s[self._mirrored_latencies:]
                occupancy = self.stats.batch_occupancy[
                    self._mirrored_occupancy:]
                self._mirrored_latencies += len(latencies)
                self._mirrored_occupancy += len(occupancy)
            latency_hist = metrics.histogram("serve.latency_s")
            for value in latencies:
                latency_hist.observe(value)
            occupancy_hist = metrics.histogram(
                "serve.batch_occupancy",
                buckets=(1, 2, 4, 8, 16, 32, float("inf")))
            for value in occupancy:
                occupancy_hist.observe(value)

    # -- scheduler thread ----------------------------------------------
    def _run(self) -> None:
        try:
            if self._tracer is not None:
                with self._tracer.span("serve.loop",
                                       workers=self.config.workers,
                                       capacity=self.config.queue_capacity):
                    self._loop()
            else:
                self._loop()
        finally:
            # Whatever happens, no admitted future is left unresolved.
            self._cancel_everything()
            if self._tracer is not None:
                self._tracer.flush()

    def _loop(self) -> None:
        while True:
            if (self.obs is not None
                    and time.monotonic() - self._last_mirror_t
                    >= self.config.stats_interval_s):
                self._last_mirror_t = time.monotonic()
                self.mirror_stats()
            batch: Optional[List[PendingRequest]] = None
            expired: List[PendingRequest] = []
            with self._cond:
                if self._abort:
                    return
                now = time.monotonic()
                expired = self._pop_expired_locked(now)
                cut = batch_cut(self._queue, now, self.config.max_batch,
                                self.config.batch_window_s,
                                draining=self._draining)
                if cut:
                    batch = [self._queue.popleft() for _ in range(cut)]
                elif not self._inflight and not self._backend.outstanding:
                    if self._draining and not self._queue:
                        return
                    wake = next_wake(self._queue, now,
                                     self.config.batch_window_s)
                    self._cond.wait(timeout=wake if wake is not None else 0.1)
            for request in expired:
                self._complete(request, RequestStatus.TIMEOUT)
            if batch is not None:
                self._dispatch(batch)
                continue  # a second full batch may already be waiting
            if self._inflight or self._backend.outstanding:
                for outcome in self._poll_backend():
                    self._finish_batch(outcome)

    def _pop_expired_locked(self, now: float) -> List[PendingRequest]:
        if not self._queue:
            return []
        expired = [r for r in self._queue if r.deadline_t <= now]
        if expired:
            self._queue = deque(
                r for r in self._queue if r.deadline_t > now)
        return expired

    def _dispatch(self, batch: List[PendingRequest]) -> None:
        task = {"slots": [request.slot for request in batch]}
        if self._backend_broken:
            for request in batch:
                self._complete(request, RequestStatus.FAILED)
            return
        try:
            if self._tracer is not None:
                with self._tracer.span("serve.dispatch", occupancy=len(batch),
                                       queue_depth=self._store.in_use,
                                       mode=self._backend.name):
                    task_id = self._backend.submit(task)
            else:
                task_id = self._backend.submit(task)
        except Exception as exc:
            if self._switch_degraded(f"submit failed: {exc!r}"):
                task_id = self._backend.submit(task)
            else:
                for request in batch:
                    self._complete(request, RequestStatus.FAILED)
                return
        self._inflight[task_id] = batch
        self.stats.observe_batch(len(batch))

    def _poll_backend(self):
        try:
            outcomes = self._backend.poll(self.config.poll_interval_s)
        except Exception as exc:
            if self._switch_degraded(f"poll failed: {exc!r}"):
                return []
            self._fail_inflight()
            return []
        if isinstance(self._backend, PoolBackend):
            threshold = max(2, _INIT_FAILURE_FACTOR * self.config.workers)
            counters = self._backend.counters
            # "Cannot be (re)built": workers report init failures, or they
            # keep dying before ever completing a batch (spawn storms), or
            # several batches in a row were lost despite retry-once.
            unbuildable = (
                self._backend.init_failures >= threshold
                or (counters.worker_deaths >= threshold
                    and self._pool_ok_batches == 0)
                or self._pool_failure_streak >= 3
            )
            if unbuildable:
                if not self._switch_degraded(
                        f"pool unusable: init_failures="
                        f"{self._backend.init_failures} worker_deaths="
                        f"{counters.worker_deaths} "
                        f"failure_streak={self._pool_failure_streak}"):
                    self._fail_inflight()
                return []
        return outcomes

    def _finish_batch(self, outcome) -> None:
        batch = self._inflight.pop(outcome.task_id, None)
        if batch is None:
            return  # late duplicate of a redispatched batch (pool dedupes)
        if outcome.status == "done":
            if self._backend.name == "pool":
                self._pool_ok_batches += 1
                self._pool_failure_streak = 0
            by_slot = {row[0]: row[1] for row in outcome.rows}
            now = time.monotonic()
            for request in batch:
                encoded = by_slot.get(request.slot)
                if encoded is None:
                    self._complete(request, RequestStatus.FAILED)
                elif now > request.deadline_t:
                    self._complete(request, RequestStatus.TIMEOUT)
                else:
                    self._complete(request, RequestStatus.OK,
                                   decode_detections(encoded),
                                   degraded=self._backend.name == "inproc")
            return
        # "error" / "failed": the batch is lost to the pool (retry-once
        # exhausted, or the task itself raised). Degrade to a serial
        # in-process rerun so the requests still complete.
        if self._backend.name == "pool":
            self._pool_failure_streak += 1
        if self.config.degraded_ok:
            self.stats.count("degraded_batches")
            self._run_inline(batch)
        else:
            for request in batch:
                self._complete(request, RequestStatus.FAILED)

    def _run_inline(self, batch: List[PendingRequest]) -> None:
        inline = self._inproc_backend()
        task_id = inline.submit({"slots": [r.slot for r in batch]})
        for outcome in inline.poll():
            if outcome.task_id != task_id or outcome.status != "done":
                for request in batch:
                    self._complete(request, RequestStatus.FAILED)
                return
            by_slot = {row[0]: row[1] for row in outcome.rows}
            now = time.monotonic()
            for request in batch:
                encoded = by_slot.get(request.slot)
                if encoded is None:
                    self._complete(request, RequestStatus.FAILED)
                elif now > request.deadline_t:
                    self._complete(request, RequestStatus.TIMEOUT)
                else:
                    self._complete(request, RequestStatus.OK,
                                   decode_detections(encoded), degraded=True)

    def _switch_degraded(self, reason: str) -> bool:
        """Replace the backend with serial in-process inference; resubmit
        every in-flight batch. Returns False when fallback is disabled."""
        if isinstance(self._backend, InprocBackend):
            return True  # nothing further to fall back to
        if not self.config.degraded_ok:
            self._backend_broken = True
            try:
                self._backend.close()
            except Exception:
                pass
            return False
        old, inflight = self._backend, self._inflight
        self._backend = self._inproc_backend()
        self._inflight = {}
        self.degraded = True
        if self._tracer is not None:
            self._tracer.annotate(degraded_reason=reason)
        for batch in inflight.values():
            task_id = self._backend.submit(
                {"slots": [request.slot for request in batch]})
            self._inflight[task_id] = batch
        try:
            old.close()  # kills any stragglers; no late results can race
        except Exception:
            pass
        return True

    def _fail_inflight(self) -> None:
        inflight, self._inflight = self._inflight, {}
        for batch in inflight.values():
            for request in batch:
                self._complete(request, RequestStatus.FAILED)

    def _cancel_everything(self) -> None:
        with self._cond:
            queued = list(self._queue)
            self._queue.clear()
        for request in queued:
            self._complete(request, RequestStatus.CANCELLED)
        inflight, self._inflight = self._inflight, {}
        for batch in inflight.values():
            for request in batch:
                self._complete(request, RequestStatus.CANCELLED)

    def _complete(self, request: PendingRequest, status: str,
                  detections: Optional[List] = None,
                  degraded: bool = False) -> None:
        if request.completed:
            return
        request.completed = True
        latency = time.monotonic() - request.enqueue_t
        self._store.release(request.slot)
        if status == RequestStatus.OK:
            self.stats.count("ok")
            self.stats.observe_latency(latency)
        elif status == RequestStatus.TIMEOUT:
            self.stats.count("timeouts")
        elif status == RequestStatus.FAILED:
            self.stats.count("failed")
        elif status == RequestStatus.CANCELLED:
            self.stats.count("cancelled")
        request.future.set_result(DetectionResponse(
            session_id=request.session_id, seq=request.seq, status=status,
            detections=detections or [], latency_s=latency,
            degraded=degraded))
