"""Scheduling primitives of the serving layer: request state, the bounded
frame store, batch-cut policy, and the stats ledger.

These pieces are deliberately process- and thread-free so the admission /
batching / deadline logic is unit-testable with a fake clock and a fake
backend; :class:`repro.serve.server.DetectionServer` wires them to real
worker processes.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..detection.decode import Detection
from ..parallel import SharedSlab
from .workers import FRAME_ARRAY, frame_spec

__all__ = [
    "RequestStatus",
    "DetectionResponse",
    "PendingRequest",
    "FrameStore",
    "batch_cut",
    "next_wake",
    "ServeStats",
]


class RequestStatus:
    """Terminal statuses a request can resolve to (strings, JSON-ready)."""

    OK = "ok"
    SHED = "shed"            # rejected at admission: no free queue slot
    TIMEOUT = "timeout"      # deadline passed (queued or completed late)
    FAILED = "failed"        # inference failed after retry + fallback policy
    CANCELLED = "cancelled"  # server closed without draining

    TERMINAL = (OK, SHED, TIMEOUT, FAILED, CANCELLED)


@dataclass
class DetectionResponse:
    """What one frame submission resolves to."""

    session_id: int
    seq: int
    status: str
    detections: List[Detection] = field(default_factory=list)
    latency_s: float = 0.0
    degraded: bool = False


@dataclass
class PendingRequest:
    """One admitted frame: slot-held from admission to terminal response."""

    session_id: int
    seq: int
    slot: int
    enqueue_t: float
    deadline_t: float
    future: "Future[DetectionResponse]"
    completed: bool = False


class FrameStore:
    """Bounded slot pool over one shared-memory frame slab.

    The store *is* the admission bound: a request holds its slot from
    submit until its response is terminal, so ``capacity`` caps queued +
    in-flight work in one number and "queue depth" can never grow past
    it. Slot acquisition/release is thread-safe (client threads submit
    concurrently); writes go to disjoint slots, so they need no lock.
    """

    def __init__(self, input_size: int, capacity: int):
        self.capacity = capacity
        self._slab = SharedSlab.create((frame_spec(input_size),), slots=capacity)
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._lock = threading.Lock()
        self._shape = (3, input_size, input_size)

    def handle(self):
        return self._slab.handle()

    @property
    def in_use(self) -> int:
        with self._lock:
            return self.capacity - len(self._free)

    def acquire(self, frame: np.ndarray) -> Optional[int]:
        """Copy ``frame`` into a free slot; ``None`` when full (shed)."""
        if frame.shape != self._shape:
            raise ValueError(
                f"frame shape {frame.shape} != expected {self._shape}")
        with self._lock:
            if not self._free:
                return None
            slot = self._free.pop()
        self._slab.write({FRAME_ARRAY: frame.astype(np.float32, copy=False)},
                         slot=slot)
        return slot

    def read(self, slot: int) -> np.ndarray:
        return self._slab.slot_copy(FRAME_ARRAY, slot)

    def release(self, slot: int) -> None:
        with self._lock:
            self._free.append(slot)

    def close(self) -> None:
        self._slab.close()


def batch_cut(queue: Sequence[PendingRequest], now: float, max_batch: int,
              batch_window_s: float, draining: bool = False) -> int:
    """How many queued requests to dispatch *now* (0 = keep waiting).

    The latency-vs-throughput deadline policy: cut a full batch the
    moment one exists; cut a partial batch once its oldest member has
    waited out the batch window (or the server is draining and no more
    co-batchers can arrive). Otherwise wait — :func:`next_wake` bounds
    how long.
    """
    if not queue:
        return 0
    if len(queue) >= max_batch:
        return max_batch
    oldest_wait = now - queue[0].enqueue_t
    if draining or oldest_wait >= batch_window_s:
        return len(queue)
    return 0


def next_wake(queue: Sequence[PendingRequest], now: float,
              batch_window_s: float) -> Optional[float]:
    """Seconds until the scheduler must act on the queue (None = no work:
    sleep until a submit arrives)."""
    if not queue:
        return None
    window_expiry = queue[0].enqueue_t + batch_window_s
    deadline = min(request.deadline_t for request in queue)
    return max(0.0, min(window_expiry, deadline) - now)


@dataclass
class ServeStats:
    """Thread-safe robustness ledger of one server lifetime.

    Mirrored into a :class:`repro.obs.Metrics` registry by
    ``DetectionServer.publish`` — kept separate so client threads never
    touch the (single-writer) obs registry directly.
    """

    accepted: int = 0
    shed: int = 0
    ok: int = 0
    timeouts: int = 0
    failed: int = 0
    cancelled: int = 0
    batches: int = 0
    degraded_batches: int = 0
    admission_rejected: int = 0
    max_queue_depth: int = 0
    batch_occupancy: List[int] = field(default_factory=list)
    latencies_s: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe_depth(self, depth: int) -> None:
        with self._lock:
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def observe_batch(self, occupancy: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_occupancy.append(occupancy)

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.latencies_s.append(seconds)

    def recent_latencies(self, n: int = 256) -> List[float]:
        """Last ``n`` OK-request latencies (seconds), oldest first."""
        with self._lock:
            return list(self.latencies_s[-n:])

    def probe(self) -> dict:
        """Live-telemetry probe: flat counters plus rolling latency /
        occupancy summaries over the most recent observations. Cheap by
        construction (bounded slices), so a sampler can poll it at
        sub-second intervals without perturbing the scheduler."""
        with self._lock:
            out = {
                "accepted": self.accepted,
                "shed": self.shed,
                "ok": self.ok,
                "timeouts": self.timeouts,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "batches": self.batches,
                "degraded_batches": self.degraded_batches,
                "max_queue_depth": self.max_queue_depth,
            }
            latencies = self.latencies_s[-256:]
            occupancy = self.batch_occupancy[-64:]
        if latencies:
            ordered = sorted(latencies)
            out["latency_p50_ms"] = 1e3 * float(np.percentile(ordered, 50))
            out["latency_p99_ms"] = 1e3 * float(np.percentile(ordered, 99))
        if occupancy:
            out["recent_batch_occupancy"] = float(np.mean(occupancy))
        return out

    def snapshot(self) -> dict:
        with self._lock:
            occupancy = list(self.batch_occupancy)
            latencies = sorted(self.latencies_s)
            out = {
                "accepted": self.accepted,
                "shed": self.shed,
                "ok": self.ok,
                "timeouts": self.timeouts,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "batches": self.batches,
                "degraded_batches": self.degraded_batches,
                "admission_rejected": self.admission_rejected,
                "max_queue_depth": self.max_queue_depth,
            }
        out["mean_batch_occupancy"] = (
            float(np.mean(occupancy)) if occupancy else 0.0)
        if latencies:
            out["latency_p50_ms"] = 1e3 * float(np.percentile(latencies, 50))
            out["latency_p99_ms"] = 1e3 * float(np.percentile(latencies, 99))
        return out
