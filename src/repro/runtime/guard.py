"""Divergence detection for the CPU training loops.

Small-batch CPU training of the GAN + attack objective occasionally blows
up — a non-finite loss or an exploding gradient norm. The seed code turned
that into an immediate :class:`FloatingPointError`, aborting hours of work.
The guard instead *classifies* the blow-up and raises
:class:`DivergenceError`, a signal the retry layer (:mod:`.retry`)
catches to roll back to the last good checkpoint, cut the learning rate,
and reseed the batch stream.

:class:`DivergenceError` subclasses :class:`FloatingPointError` on
purpose: once recovery attempts are exhausted the error that escapes is
still a ``FloatingPointError``, so callers (and the failure-injection
tests) that treat numerical blow-up as fatal keep working unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["GuardConfig", "DivergenceError", "DivergenceGuard"]


class DivergenceError(FloatingPointError):
    """Training diverged: non-finite loss or exploding gradients."""

    def __init__(self, step: int, reason: str):
        super().__init__(f"divergence at step {step}: {reason}")
        self.step = step
        self.reason = reason


@dataclass(frozen=True)
class GuardConfig:
    """Recovery policy for one training loop.

    ``max_retries`` bounds rollback attempts per run; each recovery
    multiplies the learning rate by ``lr_decay`` (floored at ``min_lr``)
    and reseeds the batch stream. ``grad_norm_threshold`` trips the guard
    on finite-but-exploding gradients; ``None`` disables that check
    (non-finite values always trip it). ``backoff_seconds`` /
    ``backoff_factor`` shape the inter-attempt sleep, kept at zero by
    default so tests and laptop runs never stall.
    """

    max_retries: int = 3
    lr_decay: float = 0.5
    min_lr: float = 1e-7
    grad_norm_threshold: Optional[float] = 1e4
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    checkpoint_interval: int = 25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")


class DivergenceGuard:
    """Checks step metrics and raises :class:`DivergenceError` on blow-up.

    ``metrics`` (a :class:`repro.obs.Metrics` registry, duck-typed) makes
    every trip observable: the guard increments ``guard.divergence`` plus
    a per-signal counter before raising, so a run manifest records how
    often — and on which signal — training blew up, without the caller
    having to catch and re-log anything.
    """

    def __init__(self, config: Optional[GuardConfig] = None, metrics=None):
        self.config = config or GuardConfig()
        self.metrics = metrics
        # Local trip ledger so a live sampler can poll the guard directly,
        # without requiring a metrics registry to be attached.
        self.trips = 0
        self.last_trip_step: Optional[int] = None
        self.last_trip_reason: Optional[str] = None
        self.last_checked_step: Optional[int] = None
        self.last_checked: dict = {}

    def probe(self) -> dict:
        """Live-telemetry probe: cumulative trips, the last trip step, and
        the metrics most recently passed to :meth:`check` — the live
        sampler reads loss/grad-norm gauges here without the training loop
        publishing them twice
        (``repro.obs.live.LiveTelemetry.add_probe`` target)."""
        out = {
            "trips": self.trips,
            "last_trip_step": (-1 if self.last_trip_step is None
                               else self.last_trip_step),
        }
        if self.last_checked_step is not None:
            out["last_checked_step"] = self.last_checked_step
        out.update(self.last_checked)
        return out

    def _trip(self, step: int, name: str, reason: str) -> None:
        self.trips += 1
        self.last_trip_step = step
        self.last_trip_reason = reason
        if self.metrics is not None:
            self.metrics.counter("guard.divergence").inc()
            self.metrics.counter(f"guard.divergence.{name}").inc()
        raise DivergenceError(step, reason)

    def check(self, step: int, **metrics: float) -> None:
        """Validate one step's scalar metrics.

        Keys ending in ``_norm`` are additionally checked against
        ``grad_norm_threshold``; every value is checked for finiteness.
        """
        threshold = self.config.grad_norm_threshold
        self.last_checked_step = step
        self.last_checked = {name: float(value)
                             for name, value in metrics.items()}
        for name, value in metrics.items():
            value = float(value)
            if not math.isfinite(value):
                self._trip(step, name, f"non-finite {name} ({value})")
            if threshold is not None and name.endswith("_norm") and value > threshold:
                self._trip(
                    step, name, f"exploding {name} ({value:.3g} > {threshold:.3g})"
                )
