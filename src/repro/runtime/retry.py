"""Bounded retry-with-backoff around resumable training attempts.

The training loops express one *attempt* as a callable; this module runs
attempts until one succeeds, a non-divergence error escapes, or the
attempt budget is exhausted — in which case the final
:class:`~repro.runtime.guard.DivergenceError` propagates (it is a
``FloatingPointError``, matching the seed code's failure mode).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from .guard import DivergenceError

__all__ = ["RetryPolicy", "run_with_recovery"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many recovery attempts to make and how long to wait between."""

    max_retries: int = 3
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based), exponential backoff."""
        if self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)


def run_with_recovery(
    attempt: Callable[[int], T],
    policy: Optional[RetryPolicy] = None,
    on_divergence: Optional[Callable[[int, DivergenceError], None]] = None,
) -> T:
    """Run ``attempt(k)`` for k = 0, 1, … until it returns.

    On :class:`DivergenceError`, calls ``on_divergence(next_attempt, err)``
    (the hook performs rollback / LR decay / reseeding), sleeps the
    policy's backoff, and retries. After ``max_retries`` failed recoveries
    the last error is re-raised. Any other exception propagates
    immediately — a crash is the checkpoint layer's job, not the guard's.
    """
    policy = policy or RetryPolicy()
    attempt_index = 0
    while True:
        try:
            return attempt(attempt_index)
        except DivergenceError as err:
            attempt_index += 1
            if attempt_index > policy.max_retries:
                raise
            if on_divergence is not None:
                on_divergence(attempt_index, err)
            delay = policy.delay(attempt_index)
            if delay > 0:
                time.sleep(delay)
