"""`repro.runtime` — fault tolerance for long CPU experiment runs.

The ROADMAP's production north star demands runs that survive crashes and
numerical blow-ups. This package supplies the three legs (DESIGN.md §7):

* :mod:`.checkpoint` — periodic, atomic, digest-verified snapshots of the
  full mutable training state (modules, optimizers, RNG streams, step),
  so every trainer resumes bit-for-bit after a kill;
* :mod:`.guard` / :mod:`.retry` — divergence detection plus bounded
  rollback-and-retry with learning-rate decay and batch-stream reseeding;
* :mod:`.faults` — sensor-fault injection (dropped / noisy / occluded
  frames) for evaluating PWC/CWC under degraded sensing.

:class:`RuntimeConfig` is the single knob the trainers accept; the default
(no checkpoint path) still enables in-memory divergence recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    TrainingCheckpoint,
    capture_rng,
    restore_rng,
)
from .faults import FAULT_KINDS, FaultEvent, FaultSchedule
from .guard import DivergenceError, DivergenceGuard, GuardConfig
from .retry import RetryPolicy, run_with_recovery

__all__ = [
    "RuntimeConfig",
    "CheckpointError",
    "CheckpointManager",
    "TrainingCheckpoint",
    "capture_rng",
    "restore_rng",
    "DivergenceError",
    "DivergenceGuard",
    "GuardConfig",
    "RetryPolicy",
    "run_with_recovery",
    "FaultEvent",
    "FaultSchedule",
    "FAULT_KINDS",
]


@dataclass(frozen=True)
class RuntimeConfig:
    """Fault-tolerance policy for one training run.

    ``checkpoint_path=None`` keeps everything in memory: the run is not
    resumable across processes, but divergence recovery still works off an
    in-memory snapshot. ``keep_checkpoint`` leaves the file behind after a
    successful run (default deletes it so a finished run never shadows a
    fresh one).
    """

    checkpoint_path: Optional[str] = None
    checkpoint_interval: int = 25
    keep_checkpoint: bool = False
    guard: GuardConfig = field(default_factory=GuardConfig)

    def manager(self) -> CheckpointManager:
        return CheckpointManager(self.checkpoint_path, self.checkpoint_interval)

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.guard.max_retries,
            backoff_seconds=self.guard.backoff_seconds,
            backoff_factor=self.guard.backoff_factor,
        )

    def with_checkpoint(self, path: str, interval: Optional[int] = None) -> "RuntimeConfig":
        """A copy of this config persisting checkpoints at ``path``."""
        return replace(
            self,
            checkpoint_path=path,
            checkpoint_interval=interval or self.checkpoint_interval,
        )
