"""Sensor-fault injection for evaluation under imperfect frame streams.

The paper's CWC argument rests on 3-consecutive-frame confirmation, which
implicitly assumes a perfect camera feed. Real feeds drop frames, take
noise bursts, and suffer transient occlusion (dirt, glare, a wiper pass) —
the physical-robustness concern stressed by Jia et al. and Hoory et al.
A :class:`FaultSchedule` describes such a degraded stream as independent
per-frame fault draws, deterministic given a seed, so PWC/CWC under
degraded sensing is exactly reproducible and comparable across attacks.

Fault kinds:

* ``drop`` — the frame never reaches the perception stack (``apply``
  returns ``None``);
* ``noise`` — an additive Gaussian noise burst (sensor gain glitch);
* ``occlude`` — an opaque gray rectangle over part of the frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["FaultEvent", "FaultSchedule", "FAULT_KINDS"]

FAULT_KINDS = ("drop", "noise", "occlude")


@dataclass(frozen=True)
class FaultEvent:
    """One frame's fault. ``magnitude`` scales kind-specific severity."""

    kind: str
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """Per-frame fault distribution over a video.

    Probabilities are evaluated in priority order drop → noise → occlude
    on a single uniform draw per frame, so their sum must stay ≤ 1 and the
    marginal rates match the configured probabilities exactly.
    """

    drop_probability: float = 0.0
    noise_probability: float = 0.0
    noise_sigma: float = 0.15
    occlusion_probability: float = 0.0
    occlusion_fraction: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        total = (self.drop_probability + self.noise_probability
                 + self.occlusion_probability)
        for name in ("drop_probability", "noise_probability", "occlusion_probability"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault probabilities sum to {total:.3f} > 1")
        if not 0.0 < self.occlusion_fraction <= 1.0:
            raise ValueError("occlusion_fraction must be in (0, 1]")

    @staticmethod
    def dropped_frames(probability: float, seed: int = 0) -> "FaultSchedule":
        """A pure frame-drop schedule (the acceptance-criteria scenario)."""
        return FaultSchedule(drop_probability=probability, seed=seed)

    # ------------------------------------------------------------------
    def sample(self, n_frames: int,
               rng: Optional[np.random.Generator] = None) -> List[Optional[FaultEvent]]:
        """Draw the fault (or ``None``) for each of ``n_frames`` frames."""
        rng = rng or np.random.default_rng(self.seed)
        events: List[Optional[FaultEvent]] = []
        for _ in range(n_frames):
            u = float(rng.random())
            if u < self.drop_probability:
                events.append(FaultEvent("drop"))
            elif u < self.drop_probability + self.noise_probability:
                events.append(FaultEvent("noise", magnitude=self.noise_sigma))
            elif (u < self.drop_probability + self.noise_probability
                  + self.occlusion_probability):
                events.append(FaultEvent("occlude", magnitude=self.occlusion_fraction))
            else:
                events.append(None)
        return events

    def apply(self, image: np.ndarray, event: Optional[FaultEvent],
              rng: Optional[np.random.Generator] = None) -> Optional[np.ndarray]:
        """Degrade one CHW frame; ``None`` means the frame was dropped."""
        if event is None:
            return image
        rng = rng or np.random.default_rng(self.seed)
        if event.kind == "drop":
            return None
        if event.kind == "noise":
            noise = rng.normal(0.0, event.magnitude, size=image.shape)
            return np.clip(image + noise.astype(image.dtype), 0.0, 1.0)
        # occlude: opaque gray rectangle covering `magnitude` of each side.
        out = image.copy()
        _, h, w = out.shape
        box_h = max(1, int(round(h * event.magnitude)))
        box_w = max(1, int(round(w * event.magnitude)))
        top = int(rng.integers(0, max(h - box_h, 0) + 1))
        left = int(rng.integers(0, max(w - box_w, 0) + 1))
        out[:, top:top + box_h, left:left + box_w] = 0.5
        return out

    def degrade_stream(
        self, frames: Sequence[np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> List[Optional[np.ndarray]]:
        """Apply a sampled schedule to a whole video (``None`` = dropped)."""
        rng = rng or np.random.default_rng(self.seed)
        events = self.sample(len(frames), rng)
        return [self.apply(frame, event, rng)
                for frame, event in zip(frames, events)]
