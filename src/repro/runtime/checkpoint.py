"""Training checkpoints: periodic, atomic, resumable snapshots.

A :class:`TrainingCheckpoint` captures *everything* a training loop needs
to continue bit-for-bit after a crash: module parameters/buffers, optimizer
moments, the exact bit-generator state of every RNG stream, the step
counter, and any scalar knobs the divergence guard may have mutated (the
current learning rate, the retry counter). Snapshots serialize through
:func:`repro.nn.serialization.save_state`, inheriting its atomic-write and
SHA-256 integrity guarantees, so a SIGKILL mid-save can never publish a
half-written file and a truncated file is rejected at load time rather
than silently resumed from.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..nn.serialization import CheckpointError, load_state, save_state

__all__ = [
    "CheckpointError",
    "TrainingCheckpoint",
    "CheckpointManager",
    "capture_rng",
    "restore_rng",
]

_META_KEY = "meta_json"
_STATE_PREFIX = "state:"


def capture_rng(rng: np.random.Generator) -> Dict[str, Any]:
    """Snapshot a generator's bit-generator state (JSON-serializable)."""
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator, state: Mapping[str, Any]) -> None:
    """Rewind a generator to a state captured by :func:`capture_rng`."""
    rng.bit_generator.state = dict(state)


@dataclass
class TrainingCheckpoint:
    """One resumable snapshot of a training loop.

    ``state`` holds every array the loop mutates, namespaced by the caller
    (e.g. ``"gen.<param>"``, ``"gopt.m.0"``); ``rngs`` maps stream names to
    bit-generator states; ``scalars`` carries step-adjacent knobs such as
    the guard-adjusted learning rate or the divergence-retry count.
    """

    step: int
    state: Dict[str, np.ndarray] = field(default_factory=dict)
    rngs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)

    def copy(self) -> "TrainingCheckpoint":
        """Deep-copy the snapshot (arrays included) for in-memory rollback."""
        return TrainingCheckpoint(
            step=self.step,
            state={k: np.asarray(v).copy() for k, v in self.state.items()},
            rngs=json.loads(json.dumps(self.rngs)),
            scalars=dict(self.scalars),
        )


def _flatten(checkpoint: TrainingCheckpoint) -> Dict[str, np.ndarray]:
    payload: Dict[str, np.ndarray] = {
        _STATE_PREFIX + key: np.asarray(value)
        for key, value in checkpoint.state.items()
    }
    meta = {
        "step": checkpoint.step,
        "rngs": checkpoint.rngs,
        "scalars": checkpoint.scalars,
    }
    payload[_META_KEY] = np.str_(json.dumps(meta))
    return payload


def _unflatten(payload: Mapping[str, np.ndarray]) -> TrainingCheckpoint:
    if _META_KEY not in payload:
        raise CheckpointError("checkpoint has no metadata entry")
    meta = json.loads(str(payload[_META_KEY]))
    state = {
        key[len(_STATE_PREFIX):]: np.asarray(value)
        for key, value in payload.items()
        if key.startswith(_STATE_PREFIX)
    }
    return TrainingCheckpoint(
        step=int(meta["step"]),
        state=state,
        rngs={name: dict(s) for name, s in meta["rngs"].items()},
        scalars={name: float(v) for name, v in meta["scalars"].items()},
    )


class CheckpointManager:
    """Owns one checkpoint file: cadence, persistence, integrity.

    Parameters
    ----------
    path:
        Destination ``.npz`` path. ``None`` disables persistence (the
        guard still keeps an in-memory rollback snapshot).
    interval:
        Save every this-many steps (step 0 is always saved so a rollback
        point exists before the first update).
    """

    def __init__(self, path: Optional[str], interval: int = 25):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.path = path
        self.interval = interval
        self.last_error: Optional[CheckpointError] = None

    def due(self, step: int) -> bool:
        """Whether ``step`` is a snapshot boundary."""
        return step % self.interval == 0

    def save(self, checkpoint: TrainingCheckpoint) -> None:
        if self.path is None:
            return
        save_state(self.path, _flatten(checkpoint))

    def load(self) -> Optional[TrainingCheckpoint]:
        """The persisted snapshot, or ``None`` if absent/corrupt.

        A corrupt file is *not* an error at resume time — the run simply
        starts over — but the failure is kept in :attr:`last_error` so the
        caller can log it.
        """
        if self.path is None or not os.path.exists(self.path):
            return None
        try:
            return _unflatten(load_state(self.path))
        except CheckpointError as err:
            self.last_error = err
            return None

    def delete(self) -> None:
        """Remove the checkpoint (called after a successful run)."""
        if self.path is not None and os.path.exists(self.path):
            os.remove(self.path)
