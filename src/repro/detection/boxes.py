"""Bounding-box geometry: format conversion and IoU.

Boxes are numpy arrays whose last axis is 4. Two formats appear in the
codebase:

* ``xywh`` — center x, center y, width, height (YOLO's native format);
* ``xyxy`` — left, top, right, bottom corners.

All functions are vectorized over arbitrary leading axes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xywh_to_xyxy",
    "xyxy_to_xywh",
    "box_area",
    "iou_pairwise",
    "iou_matrix",
    "clip_boxes",
]


def xywh_to_xyxy(boxes: np.ndarray) -> np.ndarray:
    boxes = np.asarray(boxes, dtype=np.float32)
    cx, cy, w, h = boxes[..., 0], boxes[..., 1], boxes[..., 2], boxes[..., 3]
    half_w, half_h = w / 2.0, h / 2.0
    return np.stack([cx - half_w, cy - half_h, cx + half_w, cy + half_h], axis=-1)


def xyxy_to_xywh(boxes: np.ndarray) -> np.ndarray:
    boxes = np.asarray(boxes, dtype=np.float32)
    x0, y0, x1, y1 = boxes[..., 0], boxes[..., 1], boxes[..., 2], boxes[..., 3]
    return np.stack([(x0 + x1) / 2.0, (y0 + y1) / 2.0, x1 - x0, y1 - y0], axis=-1)


def box_area(boxes_xyxy: np.ndarray) -> np.ndarray:
    boxes_xyxy = np.asarray(boxes_xyxy, dtype=np.float32)
    w = np.maximum(boxes_xyxy[..., 2] - boxes_xyxy[..., 0], 0.0)
    h = np.maximum(boxes_xyxy[..., 3] - boxes_xyxy[..., 1], 0.0)
    return w * h


def iou_pairwise(a_xyxy: np.ndarray, b_xyxy: np.ndarray) -> np.ndarray:
    """Elementwise IoU of two equal-shaped box arrays."""
    a = np.asarray(a_xyxy, dtype=np.float32)
    b = np.asarray(b_xyxy, dtype=np.float32)
    left = np.maximum(a[..., 0], b[..., 0])
    top = np.maximum(a[..., 1], b[..., 1])
    right = np.minimum(a[..., 2], b[..., 2])
    bottom = np.minimum(a[..., 3], b[..., 3])
    intersection = np.maximum(right - left, 0.0) * np.maximum(bottom - top, 0.0)
    union = box_area(a) + box_area(b) - intersection
    return np.where(union > 0, intersection / np.maximum(union, 1e-12), 0.0)


def iou_matrix(a_xyxy: np.ndarray, b_xyxy: np.ndarray) -> np.ndarray:
    """All-pairs IoU: shapes (N, 4) × (M, 4) → (N, M)."""
    a = np.asarray(a_xyxy, dtype=np.float32).reshape(-1, 4)
    b = np.asarray(b_xyxy, dtype=np.float32).reshape(-1, 4)
    return iou_pairwise(a[:, None, :], b[None, :, :])


def clip_boxes(boxes_xyxy: np.ndarray, width: float, height: float) -> np.ndarray:
    """Clamp box corners to image bounds."""
    boxes = np.asarray(boxes_xyxy, dtype=np.float32).copy()
    boxes[..., 0] = np.clip(boxes[..., 0], 0, width)
    boxes[..., 1] = np.clip(boxes[..., 1], 0, height)
    boxes[..., 2] = np.clip(boxes[..., 2], 0, width)
    boxes[..., 3] = np.clip(boxes[..., 3], 0, height)
    return boxes
