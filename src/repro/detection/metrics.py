"""Detector quality metrics: precision/recall and mean average precision.

The paper reports only that the clean detector is "quite stable"; we add a
standard VOC-style mAP evaluation so the reproduction can demonstrate the
fine-tuned detector is actually competent before attacking it (an extension
noted in DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .boxes import iou_matrix, xywh_to_xyxy
from .decode import Detection
from .targets import GroundTruth

__all__ = ["average_precision", "evaluate_map", "MapResult"]


@dataclass
class MapResult:
    """mAP plus the per-class AP breakdown."""

    map_value: float
    per_class_ap: Dict[int, float]
    per_class_counts: Dict[int, int]


def average_precision(recalls: np.ndarray, precisions: np.ndarray) -> float:
    """Area under the precision-recall curve (continuous VOC-2010 style)."""
    recalls = np.concatenate([[0.0], recalls, [1.0]])
    precisions = np.concatenate([[0.0], precisions, [0.0]])
    # Make precision monotonically decreasing.
    for i in range(len(precisions) - 2, -1, -1):
        precisions[i] = max(precisions[i], precisions[i + 1])
    changed = np.where(recalls[1:] != recalls[:-1])[0]
    return float(((recalls[changed + 1] - recalls[changed]) * precisions[changed + 1]).sum())


def evaluate_map(
    detections: Sequence[Sequence[Detection]],
    ground_truths: Sequence[GroundTruth],
    num_classes: int,
    iou_threshold: float = 0.5,
) -> MapResult:
    """Compute VOC-style mAP@``iou_threshold`` over a dataset.

    ``detections[i]`` are the detections for image ``i`` whose truth is
    ``ground_truths[i]``.
    """
    if len(detections) != len(ground_truths):
        raise ValueError("detections and ground truths must align per image")

    per_class_ap: Dict[int, float] = {}
    per_class_counts: Dict[int, int] = {}
    for class_id in range(num_classes):
        records: List[Tuple[float, bool]] = []  # (score, is_true_positive)
        total_truth = 0
        for image_dets, truth in zip(detections, ground_truths):
            truth_mask = truth.labels == class_id
            truth_boxes = xywh_to_xyxy(truth.boxes_xywh[truth_mask])
            total_truth += len(truth_boxes)
            class_dets = sorted(
                (d for d in image_dets if d.class_id == class_id),
                key=lambda d: -d.score,
            )
            matched = np.zeros(len(truth_boxes), dtype=bool)
            for det in class_dets:
                if len(truth_boxes) == 0:
                    records.append((det.score, False))
                    continue
                ious = iou_matrix(det.box_xyxy[None, :], truth_boxes)[0]
                best = int(ious.argmax())
                if ious[best] >= iou_threshold and not matched[best]:
                    matched[best] = True
                    records.append((det.score, True))
                else:
                    records.append((det.score, False))
        per_class_counts[class_id] = total_truth
        if total_truth == 0:
            continue
        if not records:
            per_class_ap[class_id] = 0.0
            continue
        records.sort(key=lambda r: -r[0])
        tp = np.cumsum([r[1] for r in records]).astype(np.float64)
        fp = np.cumsum([not r[1] for r in records]).astype(np.float64)
        recalls = tp / total_truth
        precisions = tp / np.maximum(tp + fp, 1e-12)
        per_class_ap[class_id] = average_precision(recalls, precisions)

    if per_class_ap:
        map_value = float(np.mean(list(per_class_ap.values())))
    else:
        map_value = 0.0
    return MapResult(map_value=map_value, per_class_ap=per_class_ap,
                     per_class_counts=per_class_counts)
