"""Configuration for the YOLOv3-tiny detector.

The paper fine-tunes YOLOv3-tiny (pre-trained from ``darknet53.conv.74``) on
a 5-class road dataset: person, word, mark, car, bicycle. The architecture
here is the darknet ``yolov3-tiny.cfg`` topology; a width multiplier and a
configurable input size let the same code run either at the paper's full
scale (416², width 1.0) or at the laptop-scale profile used by tests and
benchmarks (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["CLASS_NAMES", "TinyYoloConfig"]

#: The paper's five fine-tuning labels (§IV).
CLASS_NAMES: Tuple[str, ...] = ("person", "word", "mark", "car", "bicycle")

#: darknet yolov3-tiny anchors (w, h) in pixels at 416² input.
_FULL_ANCHORS_COARSE = ((81, 82), (135, 169), (344, 319))
_FULL_ANCHORS_FINE = ((10, 14), (23, 27), (37, 58))
_FULL_INPUT = 416


@dataclass(frozen=True)
class TinyYoloConfig:
    """Hyper-parameters defining a YOLOv3-tiny instance.

    Attributes
    ----------
    input_size:
        Square input resolution; must be divisible by 32 (two heads at
        strides 32 and 16).
    num_classes:
        Number of object classes (5 for the paper's road dataset).
    width_multiplier:
        Scales every channel count; 1.0 reproduces the original network,
        0.25 is the default reduced profile for CPU runs.
    class_names:
        Human-readable labels, index-aligned with class ids.
    """

    input_size: int = 416
    num_classes: int = len(CLASS_NAMES)
    width_multiplier: float = 1.0
    class_names: Tuple[str, ...] = CLASS_NAMES
    #: Optional dataset-fitted anchors (6 (w, h) pairs, sorted by area
    #: ascending: first 3 go to the fine head, last 3 to the coarse head).
    #: ``None`` uses the darknet defaults rescaled to ``input_size``.
    #: Re-estimating anchors per dataset is the standard YOLO recipe and is
    #: required here because synthetic-scene boxes are smaller than COCO's.
    custom_anchors: Optional[Tuple[Tuple[float, float], ...]] = None

    def __post_init__(self) -> None:
        if self.input_size % 32 != 0:
            raise ValueError(f"input_size must be divisible by 32, got {self.input_size}")
        if self.num_classes < 1:
            raise ValueError("num_classes must be positive")
        if not 0 < self.width_multiplier <= 1.0:
            raise ValueError("width_multiplier must be in (0, 1]")
        if len(self.class_names) != self.num_classes:
            raise ValueError(
                f"class_names has {len(self.class_names)} entries for "
                f"{self.num_classes} classes"
            )
        if self.custom_anchors is not None:
            anchors = tuple(tuple(map(float, a)) for a in self.custom_anchors)
            if len(anchors) != 6 or any(len(a) != 2 for a in anchors):
                raise ValueError("custom_anchors must be 6 (w, h) pairs")
            object.__setattr__(self, "custom_anchors", anchors)

    # -- derived quantities -------------------------------------------------
    def channels(self, base: int) -> int:
        """Scaled channel count (minimum 8, multiple of 4)."""
        scaled = max(8, int(round(base * self.width_multiplier)))
        return (scaled + 3) // 4 * 4

    @property
    def strides(self) -> Tuple[int, int]:
        """Output strides of the coarse and fine detection heads."""
        return (32, 16)

    @property
    def grid_sizes(self) -> Tuple[int, int]:
        return (self.input_size // 32, self.input_size // 16)

    @property
    def anchors_per_head(self) -> int:
        return 3

    def anchors(self) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
        """Anchor (w, h) pairs per head: (coarse-head, fine-head) lists."""
        if self.custom_anchors is not None:
            ordered = sorted(self.custom_anchors, key=lambda a: a[0] * a[1])
            return list(ordered[3:]), list(ordered[:3])
        scale = self.input_size / _FULL_INPUT
        coarse = [(w * scale, h * scale) for w, h in _FULL_ANCHORS_COARSE]
        fine = [(w * scale, h * scale) for w, h in _FULL_ANCHORS_FINE]
        return coarse, fine

    @property
    def head_channels(self) -> int:
        """Output channels of each detection head: 3 × (5 + num_classes)."""
        return self.anchors_per_head * (5 + self.num_classes)


def reduced_config(input_size: int = 96, width_multiplier: float = 0.25,
                   num_classes: int = len(CLASS_NAMES),
                   custom_anchors=None) -> TinyYoloConfig:
    """The laptop-scale profile used across tests and benchmarks."""
    names = CLASS_NAMES[:num_classes] if num_classes <= len(CLASS_NAMES) else tuple(
        f"class{i}" for i in range(num_classes)
    )
    return TinyYoloConfig(
        input_size=input_size,
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        class_names=names,
        custom_anchors=custom_anchors,
    )
