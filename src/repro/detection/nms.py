"""Non-maximum suppression.

Per-class greedy NMS as used by darknet/YOLOv3: detections are processed in
descending score order; a detection is dropped if it overlaps an already
kept detection of the same class above the IoU threshold.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .boxes import iou_pairwise

__all__ = ["non_max_suppression"]


def non_max_suppression(
    boxes_xyxy: np.ndarray,
    scores: np.ndarray,
    class_ids: Optional[np.ndarray] = None,
    iou_threshold: float = 0.45,
    max_detections: int = 100,
) -> List[int]:
    """Return indices of kept boxes (descending score order).

    If ``class_ids`` is None, suppression is class-agnostic.
    """
    boxes = np.asarray(boxes_xyxy, dtype=np.float32).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float32).reshape(-1)
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError("boxes and scores must align")
    if class_ids is None:
        class_ids = np.zeros(len(scores), dtype=np.int64)
    else:
        class_ids = np.asarray(class_ids).reshape(-1)

    order = np.argsort(-scores, kind="stable")
    kept: List[int] = []
    for idx in order:
        if len(kept) >= max_detections:
            break
        suppressed = False
        for kept_idx in kept:
            if class_ids[kept_idx] != class_ids[idx]:
                continue
            if iou_pairwise(boxes[idx], boxes[kept_idx]) > iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(int(idx))
    return kept
