"""Non-maximum suppression.

Per-class greedy NMS as used by darknet/YOLOv3: detections are processed in
descending score order; a detection is dropped if it overlaps an already
kept detection of the same class above the IoU threshold.

The production path (:func:`non_max_suppression`) is vectorized: each kept
box suppresses all remaining same-class candidates with one IoU-row
computation, so the cost is O(kept × n) numpy work instead of the reference
implementation's O(n²) Python pair loop. Both return identical indices
(property-tested in ``tests/detection/test_nms.py``), and the reference
(:func:`non_max_suppression_reference`) stays as the oracle.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .boxes import iou_matrix, iou_pairwise

__all__ = ["non_max_suppression", "non_max_suppression_reference"]

#: Above this many candidates the full n×n conflict matrix is traded for
#: per-kept IoU rows to bound memory.
_FULL_MATRIX_LIMIT = 2048


def _prepare(
    boxes_xyxy: np.ndarray,
    scores: np.ndarray,
    class_ids: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    boxes = np.asarray(boxes_xyxy, dtype=np.float32).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float32).reshape(-1)
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError("boxes and scores must align")
    if class_ids is None:
        class_ids = np.zeros(len(scores), dtype=np.int64)
    else:
        class_ids = np.asarray(class_ids).reshape(-1)
    return boxes, scores, class_ids


def non_max_suppression(
    boxes_xyxy: np.ndarray,
    scores: np.ndarray,
    class_ids: Optional[np.ndarray] = None,
    iou_threshold: float = 0.45,
    max_detections: int = 100,
) -> List[int]:
    """Return indices of kept boxes (descending score order).

    If ``class_ids`` is None, suppression is class-agnostic.
    """
    boxes, scores, class_ids = _prepare(boxes_xyxy, scores, class_ids)
    n = boxes.shape[0]
    if n == 0:
        return []
    order = np.argsort(-scores, kind="stable")
    suppressed = np.zeros(n, dtype=bool)
    kept: List[int] = []
    # The greedy semantics are unchanged either way: a candidate survives
    # iff no earlier-kept same-class box overlaps it above threshold.
    if n <= _FULL_MATRIX_LIMIT:
        # Precompute the full conflict matrix in one vectorized shot; the
        # greedy loop is then pure indexing (no numpy call per kept box,
        # which dominates at realistic candidate counts).
        conflict = iou_matrix(boxes, boxes) > iou_threshold
        conflict &= class_ids[:, None] == class_ids[None, :]
        for idx in order.tolist():
            if suppressed[idx]:
                continue
            if len(kept) >= max_detections:
                break
            kept.append(idx)
            suppressed |= conflict[idx]
    else:
        # Huge candidate sets: one IoU row per kept box keeps memory
        # O(kept × n) instead of O(n²).
        for idx in order.tolist():
            if suppressed[idx]:
                continue
            if len(kept) >= max_detections:
                break
            kept.append(idx)
            row = iou_matrix(boxes[idx], boxes)[0]
            suppressed |= (row > iou_threshold) & (class_ids == class_ids[idx])
    return kept


def non_max_suppression_reference(
    boxes_xyxy: np.ndarray,
    scores: np.ndarray,
    class_ids: Optional[np.ndarray] = None,
    iou_threshold: float = 0.45,
    max_detections: int = 100,
) -> List[int]:
    """The original O(n²) pair-loop greedy NMS, kept as a parity oracle."""
    boxes, scores, class_ids = _prepare(boxes_xyxy, scores, class_ids)
    order = np.argsort(-scores, kind="stable")
    kept: List[int] = []
    for idx in order:
        if len(kept) >= max_detections:
            break
        suppressed = False
        for kept_idx in kept:
            if class_ids[kept_idx] != class_ids[idx]:
                continue
            if iou_pairwise(boxes[idx], boxes[kept_idx]) > iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(int(idx))
    return kept
