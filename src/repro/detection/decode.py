"""Decoding of raw YOLO head tensors into detections.

Two entry points:

* :func:`decode_heads` — differentiable decode returning Tensors; the attack
  loss (Eq. 2 of the paper) reads class logits from here so that gradients
  reach the patch generator.
* :func:`detections_from_outputs` — inference path combining decode,
  confidence thresholding and NMS into a list of :class:`Detection`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Tensor, no_grad
from ..nn import functional as F
from ..nn.functional import stable_sigmoid
from ..nn.tensor import concatenate
from ..obs import Run, span_scope
from ..perf import PerfRecorder, stage_scope
from .boxes import xywh_to_xyxy
from .config import TinyYoloConfig
from .nms import non_max_suppression

__all__ = [
    "DecodedHead",
    "Detection",
    "decode_head",
    "decode_heads",
    "detections_from_outputs",
    "batched_detections",
]


@dataclass
class DecodedHead:
    """Differentiable decode of one YOLO head.

    All tensors have shape ``(N, A, S, S, ·)`` where A = anchors per head and
    S = grid size. ``boxes_xywh`` is in input-image pixels.
    """

    boxes_xywh: Tensor        # (N, A, S, S, 4)
    objectness_logit: Tensor  # (N, A, S, S)
    class_logits: Tensor      # (N, A, S, S, C)
    stride: int
    anchors: np.ndarray       # (A, 2)


@dataclass
class Detection:
    """One final detection in input-image pixel coordinates."""

    box_xyxy: np.ndarray
    score: float
    class_id: int
    class_probs: np.ndarray

    @property
    def class_name_index(self) -> int:
        return self.class_id


#: Cache of decode constants keyed by (grid_size, anchor tuple). The cell
#: grids and anchor broadcasts are pure functions of the head geometry —
#: rebuilding them for every frame of every evaluation video is wasted
#: allocation on the hot path. Entries are tiny (a few KiB) and the key
#: space is bounded by the distinct head geometries a process ever sees.
_DECODE_CONSTANTS: Dict[tuple, Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]] = {}


def _decode_constants(s: int, anchors: Sequence[Tuple[float, float]]):
    """(cell_x, cell_y, anchor_w, anchor_h, anchor_arr) for one geometry."""
    anchor_key = tuple(tuple(float(v) for v in pair) for pair in anchors)
    key = (int(s), anchor_key)
    cached = _DECODE_CONSTANTS.get(key)
    if cached is None:
        cell_x = np.arange(s, dtype=np.float32)[None, None, None, :]
        cell_y = np.arange(s, dtype=np.float32)[None, None, :, None]
        anchor_arr = np.asarray(anchors, dtype=np.float32)
        anchor_w = anchor_arr[:, 0][None, :, None, None]
        anchor_h = anchor_arr[:, 1][None, :, None, None]
        for array in (cell_x, cell_y, anchor_arr, anchor_w, anchor_h):
            array.setflags(write=False)
        cached = (cell_x, cell_y, anchor_w, anchor_h, anchor_arr)
        _DECODE_CONSTANTS[key] = cached
    return cached


def decode_head(raw: Tensor, anchors: Sequence[Tuple[float, float]],
                stride: int, num_classes: int) -> DecodedHead:
    """Decode one raw head tensor ``(N, A*(5+C), S, S)``.

    Follows the YOLOv3 parameterization: ``bx = (σ(tx)+cx)·stride``,
    ``bw = anchor_w·exp(tw)``, objectness and per-class scores via sigmoid.
    """
    n, channels, s, s2 = raw.shape
    num_anchors = len(anchors)
    per_anchor = 5 + num_classes
    if channels != num_anchors * per_anchor or s != s2:
        raise ValueError(f"head shape {raw.shape} inconsistent with "
                         f"{num_anchors} anchors and {num_classes} classes")
    # (N, A, 5+C, S, S) -> (N, A, S, S, 5+C)
    grid = raw.reshape((n, num_anchors, per_anchor, s, s)).transpose((0, 1, 3, 4, 2))

    tx = grid[..., 0]
    ty = grid[..., 1]
    tw = grid[..., 2]
    th = grid[..., 3]
    obj_logit = grid[..., 4]
    cls_logits = grid[..., 5:]

    cell_x, cell_y, anchor_w, anchor_h, anchor_arr = _decode_constants(s, anchors)

    bx = (F.sigmoid(tx) + cell_x) * float(stride)
    by = (F.sigmoid(ty) + cell_y) * float(stride)
    # Clamp tw/th before exp to avoid overflow from an untrained network.
    bw = tw.clip(-8.0, 8.0).exp() * anchor_w
    bh = th.clip(-8.0, 8.0).exp() * anchor_h

    boxes = concatenate(
        [
            bx.reshape((n, num_anchors, s, s, 1)),
            by.reshape((n, num_anchors, s, s, 1)),
            bw.reshape((n, num_anchors, s, s, 1)),
            bh.reshape((n, num_anchors, s, s, 1)),
        ],
        axis=-1,
    )
    return DecodedHead(
        boxes_xywh=boxes,
        objectness_logit=obj_logit,
        class_logits=cls_logits,
        stride=stride,
        anchors=anchor_arr,
    )


def decode_heads(outputs: Tuple[Tensor, Tensor], config: TinyYoloConfig) -> List[DecodedHead]:
    """Decode both heads of a :class:`~repro.detection.model.TinyYolo`."""
    coarse_anchors, fine_anchors = config.anchors()
    coarse, fine = outputs
    return [
        decode_head(coarse, coarse_anchors, config.strides[0], config.num_classes),
        decode_head(fine, fine_anchors, config.strides[1], config.num_classes),
    ]


def detections_from_outputs(
    outputs: Tuple[Tensor, Tensor],
    config: TinyYoloConfig,
    conf_threshold: float = 0.3,
    iou_threshold: float = 0.45,
    max_detections: int = 50,
    perf: Optional[PerfRecorder] = None,
) -> List[List[Detection]]:
    """Full inference post-processing for a batch.

    Score = objectness × max class probability (YOLOv3 convention). Returns
    one detection list per batch element, NMS applied per class. A
    :class:`~repro.perf.PerfRecorder` attributes decode vs NMS time.
    """
    batch = outputs[0].shape[0]
    with no_grad(), stage_scope(perf, "decode", items=batch):
        heads = decode_heads(outputs, config)
        all_boxes, all_obj, all_cls = [], [], []
        for head in heads:
            n = batch
            boxes = head.boxes_xywh.data.reshape(n, -1, 4)
            obj = stable_sigmoid(head.objectness_logit.data.reshape(n, -1))
            cls = stable_sigmoid(
                head.class_logits.data.reshape(n, -1, config.num_classes))
            all_boxes.append(boxes)
            all_obj.append(obj)
            all_cls.append(cls)
        boxes = np.concatenate(all_boxes, axis=1)
        obj = np.concatenate(all_obj, axis=1)
        cls = np.concatenate(all_cls, axis=1)

    results: List[List[Detection]] = []
    with stage_scope(perf, "nms", items=batch):
        for i in range(batch):
            scores = obj[i][:, None] * cls[i]
            best_class = scores.argmax(axis=1)
            best_score = scores[np.arange(scores.shape[0]), best_class]
            keep = best_score >= conf_threshold
            if not keep.any():
                results.append([])
                continue
            boxes_xyxy = xywh_to_xyxy(boxes[i][keep])
            kept_scores = best_score[keep]
            kept_classes = best_class[keep]
            kept_probs = cls[i][keep]
            selected = non_max_suppression(
                boxes_xyxy, kept_scores, kept_classes, iou_threshold, max_detections
            )
            results.append(
                [
                    Detection(
                        box_xyxy=boxes_xyxy[j],
                        score=float(kept_scores[j]),
                        class_id=int(kept_classes[j]),
                        class_probs=kept_probs[j],
                    )
                    for j in selected
                ]
            )
    return results


def batched_detections(
    model,
    images: Sequence[Optional[np.ndarray]],
    conf_threshold: float = 0.3,
    iou_threshold: float = 0.45,
    max_detections: int = 50,
    batch_size: int = 8,
    perf: Optional[PerfRecorder] = None,
    obs: Optional[Run] = None,
) -> List[Optional[List[Detection]]]:
    """Detect over a frame stream, forwarding frames in batches.

    ``images`` may contain ``None`` entries (dropped frames — e.g. from a
    :class:`~repro.runtime.FaultSchedule`); those positions come back as
    ``None`` so callers can keep their per-frame coasting semantics. All
    non-dropped frames are stacked into batches of up to ``batch_size``
    and pushed through ``model`` in one forward pass each, which is what
    makes frame-rate-scale evaluation affordable (DESIGN.md §8).

    ``obs`` records one ``detect.batched`` span per call (child of
    whatever span is open — a pipeline run, an eval challenge) carrying
    frame/drop counters; ``obs=None`` is free (DESIGN.md §9).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    results: List[Optional[List[Detection]]] = [None] * len(images)
    live = [(index, image) for index, image in enumerate(images)
            if image is not None]
    with span_scope(obs, "detect.batched", batch_size=batch_size):
        if obs is not None:
            obs.tracer.add("items", len(live))
            obs.tracer.add("dropped", len(images) - len(live))
        for start in range(0, len(live), batch_size):
            chunk = live[start:start + batch_size]
            stacked = np.stack([image for _, image in chunk])
            with no_grad(), stage_scope(perf, "forward", items=len(chunk)):
                outputs = model(Tensor(stacked))
            per_image = detections_from_outputs(
                outputs, model.config, conf_threshold=conf_threshold,
                iou_threshold=iou_threshold, max_detections=max_detections,
                perf=perf,
            )
            for (index, _), detections in zip(chunk, per_image):
                results[index] = detections
    if obs is not None:
        obs.metrics.counter("detect.frames").inc(len(images))
        obs.metrics.counter("detect.dropped_frames").inc(len(images) - len(live))
    if perf is not None:
        perf.count("frames", len(images))
        perf.count("dropped_frames", len(images) - len(live))
        perf.count("batches", (len(live) + batch_size - 1) // batch_size)
    return results
