"""YOLOv3 training loss.

Combines the standard components over both heads:

* xy — MSE between σ(tx, ty) and the target cell offsets (positives);
* wh — MSE between raw (tw, th) and log-space size targets (positives);
* objectness — BCE with logits, positives vs. non-ignored negatives;
* class — BCE with logits over independent per-class sigmoids (positives),
  matching YOLOv3's multi-label head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..nn import Tensor
from ..nn import functional as F
from .config import TinyYoloConfig
from .targets import GroundTruth, HeadTargets, build_targets

__all__ = ["YoloLossResult", "yolo_loss"]


@dataclass
class YoloLossResult:
    """Total loss tensor plus detached per-component scalars for logging."""

    total: Tensor
    xy: float
    wh: float
    objectness: float
    classification: float


def _head_grid(raw: Tensor, num_anchors: int, per_anchor: int) -> Tensor:
    n, channels, s, _ = raw.shape
    return raw.reshape((n, num_anchors, per_anchor, s, s)).transpose((0, 1, 3, 4, 2))


def yolo_loss(
    outputs: Tuple[Tensor, Tensor],
    ground_truths: Sequence[GroundTruth],
    config: TinyYoloConfig,
    box_scale: float = 2.0,
    obj_scale: float = 1.0,
    noobj_scale: float = 0.5,
    class_scale: float = 1.0,
) -> YoloLossResult:
    """Compute the YOLOv3-tiny loss for a batch."""
    targets = build_targets(ground_truths, config)
    per_anchor = 5 + config.num_classes
    num_anchors = config.anchors_per_head

    total: Tensor = Tensor(0.0)
    xy_value = wh_value = obj_value = cls_value = 0.0

    for raw, head_targets in zip(outputs, targets):
        grid = _head_grid(raw, num_anchors, per_anchor)
        obj_logit = grid[..., 4]

        pos = np.nonzero(head_targets.obj_mask)
        neg = np.nonzero(head_targets.noobj_mask)

        # Objectness: positives toward 1, non-ignored negatives toward 0.
        if pos[0].size:
            pos_logits = obj_logit[pos]
            obj_pos = F.bce_with_logits(pos_logits, np.ones(pos[0].size, dtype=np.float32))
        else:
            obj_pos = Tensor(0.0)
        if neg[0].size:
            neg_logits = obj_logit[neg]
            obj_neg = F.bce_with_logits(neg_logits, np.zeros(neg[0].size, dtype=np.float32))
        else:
            obj_neg = Tensor(0.0)
        obj_term = obj_scale * obj_pos + noobj_scale * obj_neg

        if pos[0].size:
            txy_logits = grid[..., 0:2][pos]
            twh_raw = grid[..., 2:4][pos]
            cls_logits = grid[..., 5:][pos]
            xy_term = F.mse_loss(F.sigmoid(txy_logits), head_targets.txy[pos])
            wh_term = F.mse_loss(twh_raw, head_targets.twh[pos])
            cls_term = F.bce_with_logits(cls_logits, head_targets.classes[pos])
        else:
            xy_term = Tensor(0.0)
            wh_term = Tensor(0.0)
            cls_term = Tensor(0.0)

        head_total = (
            box_scale * (xy_term + wh_term)
            + obj_term
            + class_scale * cls_term
        )
        total = total + head_total
        xy_value += float(xy_term.data)
        wh_value += float(wh_term.data)
        obj_value += float(obj_term.data)
        cls_value += float(cls_term.data)

    return YoloLossResult(
        total=total,
        xy=xy_value,
        wh=wh_value,
        objectness=obj_value,
        classification=cls_value,
    )
