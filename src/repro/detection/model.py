"""YOLOv3-tiny network definition.

Faithful to the darknet ``yolov3-tiny.cfg`` topology: 13 convolution layers,
six max-pools (the last one stride-1), a route from layer 13 through a 1×1
conv and 2× upsample that concatenates with layer 8's features, and two
detection heads at strides 32 and 16 with 3 anchors each.

The width multiplier in :class:`~repro.detection.config.TinyYoloConfig`
scales every channel count so the identical topology trains in minutes on a
CPU at the reduced profile (DESIGN.md §5) while ``width_multiplier=1.0``
reconstructs the paper's ~8.7M-parameter network.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from .config import TinyYoloConfig

__all__ = ["TinyYolo"]


class TinyYolo(nn.Module):
    """YOLOv3-tiny object detector.

    ``forward`` returns the two raw head tensors; use
    :func:`repro.detection.decode.decode_heads` to turn them into boxes,
    objectness and class probabilities.
    """

    def __init__(self, config: TinyYoloConfig, seed: int = 0):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)
        c = config.channels

        # Backbone (layers 0-12 in darknet numbering).
        self.conv1 = nn.ConvBlock(3, c(16), 3, rng=rng)
        self.conv2 = nn.ConvBlock(c(16), c(32), 3, rng=rng)
        self.conv3 = nn.ConvBlock(c(32), c(64), 3, rng=rng)
        self.conv4 = nn.ConvBlock(c(64), c(128), 3, rng=rng)
        self.conv5 = nn.ConvBlock(c(128), c(256), 3, rng=rng)  # route to fine head
        self.conv6 = nn.ConvBlock(c(256), c(512), 3, rng=rng)
        self.conv7 = nn.ConvBlock(c(512), c(1024), 3, rng=rng)

        # Coarse head (stride 32).
        self.conv8 = nn.ConvBlock(c(1024), c(256), 1, rng=rng)  # layer 13 route point
        self.conv9 = nn.ConvBlock(c(256), c(512), 3, rng=rng)
        self.head_coarse = nn.Conv2d(c(512), config.head_channels, 1, rng=rng)

        # Fine head (stride 16) via upsample + concat with conv5 features.
        self.conv10 = nn.ConvBlock(c(256), c(128), 1, rng=rng)
        self.conv11 = nn.ConvBlock(c(128) + c(256), c(256), 3, rng=rng)
        self.head_fine = nn.Conv2d(c(256), config.head_channels, 1, rng=rng)

        self._initialize_heads()

    def _initialize_heads(self) -> None:
        """Bias objectness strongly negative so the untrained network starts
        from 'no objects anywhere', which stabilizes early training."""
        per_anchor = 5 + self.config.num_classes
        for head in (self.head_coarse, self.head_fine):
            bias = head.bias.data.reshape(self.config.anchors_per_head, per_anchor)
            bias[:, 4] = -4.0
            head.bias.data = bias.reshape(-1)

    def forward(self, x: nn.Tensor) -> Tuple[nn.Tensor, nn.Tensor]:
        """Run the detector.

        Parameters
        ----------
        x:
            NCHW tensor, 3 channels, values in [0, 1], spatial size equal to
            ``config.input_size``.

        Returns
        -------
        (coarse, fine):
            Raw head outputs with shape ``(N, 3*(5+C), S, S)`` at strides
            32 and 16 respectively.
        """
        if x.shape[-1] != self.config.input_size or x.shape[-2] != self.config.input_size:
            raise ValueError(
                f"input spatial size {x.shape[-2:]} != configured "
                f"{self.config.input_size}"
            )
        x = F.max_pool2d(self.conv1(x), 2, 2)
        x = F.max_pool2d(self.conv2(x), 2, 2)
        x = F.max_pool2d(self.conv3(x), 2, 2)
        x = F.max_pool2d(self.conv4(x), 2, 2)
        route_fine = self.conv5(x)
        x = F.max_pool2d(route_fine, 2, 2)
        x = self.conv6(x)
        x = F.max_pool2d(x, 2, 1)  # darknet's stride-1 'same' pool
        x = self.conv7(x)

        route_13 = self.conv8(x)
        coarse = self.head_coarse(self.conv9(route_13))

        up = F.upsample_nearest(self.conv10(route_13), 2)
        merged = nn.concatenate([up, route_fine], axis=1)
        fine = self.head_fine(self.conv11(merged))
        return coarse, fine

    # ------------------------------------------------------------------
    def lower(self, debug: bool = False) -> "nn.LoweredDetector":
        """Compile this frozen detector for inference (DESIGN.md §13).

        Folds batch-norm into the conv weights, fuses the leaky-ReLU
        epilogue, and pre-plans every buffer/einsum path per input shape.
        Requires eval mode; the result shares this model's ``forward``
        contract but is inference-only. Weights are folded *copies* —
        re-lower after loading a new checkpoint.
        """
        from ..nn.lowering import lower_detector
        return lower_detector(self, debug=debug)

    # ------------------------------------------------------------------
    def quantize(self, calibration_frames=None, *, calibration=None,
                 percentile: float = 100.0,
                 debug: bool = False) -> "nn.QuantizedDetector":
        """Compile this frozen detector to int8 inference (DESIGN.md §15).

        Either pass ``calibration_frames`` — an ``(N, 3, H, W)`` array of
        representative inputs run through the lowered fp graph to record
        per-layer activation ranges (optionally percentile-clipped) — or a
        previously computed
        :class:`~repro.nn.quant.CalibrationResult` via ``calibration``.
        Requires eval mode. The result shares this model's ``forward``
        contract but is inference-only and *approximate*: detections
        match the fp oracle within the accuracy budget reported by
        ``bench_hotpath.py``, not bit-exactly. Scales are quantized
        *copies* — re-quantize after loading a new checkpoint.
        """
        from ..nn.quant import (QuantizationError, calibrate_detector,
                                quantize_detector)
        if calibration is None:
            if calibration_frames is None:
                raise QuantizationError(
                    "TinyYolo.quantize needs calibration: pass "
                    "calibration_frames (representative (N, 3, H, W) "
                    "inputs) or calibration=CalibrationResult")
            calibration = calibrate_detector(self, calibration_frames,
                                             percentile=percentile)
        return quantize_detector(self, calibration, debug=debug)

    # ------------------------------------------------------------------
    def checkpoint_metadata(self) -> dict:
        """Metadata stored alongside checkpoints for compatibility checks."""
        return {
            "input_size": self.config.input_size,
            "num_classes": self.config.num_classes,
            "width_multiplier": self.config.width_multiplier,
        }
