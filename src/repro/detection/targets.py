"""Ground-truth target assignment for YOLOv3-tiny training.

Each ground-truth box is assigned to the single anchor (across both heads)
whose shape best matches it by IoU, in the grid cell containing the box
center — darknet's assignment rule. Anchors that overlap some ground truth
above ``ignore_threshold`` but are not the best match are excluded from the
no-object loss ("ignored"), again following darknet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .config import TinyYoloConfig

__all__ = ["GroundTruth", "HeadTargets", "build_targets"]


@dataclass
class GroundTruth:
    """Ground truth for one image: boxes in pixel xywh plus class ids."""

    boxes_xywh: np.ndarray  # (M, 4) in input pixels
    labels: np.ndarray      # (M,) int

    def __post_init__(self) -> None:
        self.boxes_xywh = np.asarray(self.boxes_xywh, dtype=np.float32).reshape(-1, 4)
        self.labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        if self.boxes_xywh.shape[0] != self.labels.shape[0]:
            raise ValueError("boxes and labels must align")


@dataclass
class HeadTargets:
    """Dense target tensors for one head, shape (N, A, S, S, ·)."""

    obj_mask: np.ndarray      # bool — positive anchors
    noobj_mask: np.ndarray    # bool — anchors that contribute no-object loss
    txy: np.ndarray           # (N, A, S, S, 2) sigmoid-space offsets
    twh: np.ndarray           # (N, A, S, S, 2) log-space sizes
    classes: np.ndarray       # (N, A, S, S, C) one-hot
    stride: int


def _shape_iou(wh_a: np.ndarray, wh_b: np.ndarray) -> np.ndarray:
    """IoU of boxes sharing a common center: only widths/heights matter."""
    inter = np.minimum(wh_a[..., 0], wh_b[..., 0]) * np.minimum(wh_a[..., 1], wh_b[..., 1])
    union = wh_a[..., 0] * wh_a[..., 1] + wh_b[..., 0] * wh_b[..., 1] - inter
    return inter / np.maximum(union, 1e-12)


def build_targets(
    ground_truths: Sequence[GroundTruth],
    config: TinyYoloConfig,
    ignore_threshold: float = 0.5,
) -> List[HeadTargets]:
    """Build per-head targets for a batch of ground truths."""
    batch = len(ground_truths)
    num_anchors = config.anchors_per_head
    anchor_sets = config.anchors()
    all_anchors = np.asarray(anchor_sets[0] + anchor_sets[1], dtype=np.float32)  # (6, 2)

    heads: List[HeadTargets] = []
    for head_index, stride in enumerate(config.strides):
        s = config.input_size // stride
        heads.append(
            HeadTargets(
                obj_mask=np.zeros((batch, num_anchors, s, s), dtype=bool),
                noobj_mask=np.ones((batch, num_anchors, s, s), dtype=bool),
                txy=np.zeros((batch, num_anchors, s, s, 2), dtype=np.float32),
                twh=np.zeros((batch, num_anchors, s, s, 2), dtype=np.float32),
                classes=np.zeros((batch, num_anchors, s, s, config.num_classes), dtype=np.float32),
                stride=stride,
            )
        )

    for image_index, gt in enumerate(ground_truths):
        for box, label in zip(gt.boxes_xywh, gt.labels):
            cx, cy, bw, bh = box
            if bw <= 1.0 or bh <= 1.0:
                continue  # degenerate box — skip rather than poison training
            if label < 0 or label >= config.num_classes:
                raise ValueError(f"label {label} out of range for {config.num_classes} classes")
            shape_ious = _shape_iou(
                np.asarray([bw, bh], dtype=np.float32)[None, :], all_anchors
            )
            best = int(shape_ious.argmax())
            head_index, anchor_index = divmod(best, num_anchors)
            head = heads[head_index]
            stride = head.stride
            s = config.input_size // stride
            gx, gy = cx / stride, cy / stride
            col = min(int(gx), s - 1)
            row = min(int(gy), s - 1)
            anchor_w, anchor_h = anchor_sets[head_index][anchor_index]

            head.obj_mask[image_index, anchor_index, row, col] = True
            head.noobj_mask[image_index, anchor_index, row, col] = False
            head.txy[image_index, anchor_index, row, col] = (gx - col, gy - row)
            head.twh[image_index, anchor_index, row, col] = (
                np.log(max(bw / anchor_w, 1e-6)),
                np.log(max(bh / anchor_h, 1e-6)),
            )
            head.classes[image_index, anchor_index, row, col] = 0.0
            head.classes[image_index, anchor_index, row, col, label] = 1.0

            # Ignore near-miss anchors in the same cell of every head.
            for other_index, other in enumerate(heads):
                other_stride = other.stride
                other_s = config.input_size // other_stride
                o_col = min(int(cx / other_stride), other_s - 1)
                o_row = min(int(cy / other_stride), other_s - 1)
                anchors_here = np.asarray(anchor_sets[other_index], dtype=np.float32)
                ious = _shape_iou(
                    np.asarray([bw, bh], dtype=np.float32)[None, :], anchors_here
                )
                ignore = ious > ignore_threshold
                other.noobj_mask[image_index, ignore, o_row, o_col] = False

    return heads
