"""Training-time data augmentation for the detector.

Standard detection augmentations operating on (image, GroundTruth) pairs:
horizontal flip (with box mirroring), photometric jitter, and box-safe
random translation. The fine-tune loop applies these per batch when
enabled, improving the small synthetic dataset's effective size — the
analogue of the augmentation darknet applies during the paper's
fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .targets import GroundTruth

__all__ = ["AugmentConfig", "horizontal_flip", "photometric_jitter",
           "translate", "augment_sample"]

Sample = Tuple[np.ndarray, GroundTruth]


@dataclass(frozen=True)
class AugmentConfig:
    """Probabilities and ranges of the augmentation pipeline."""

    flip_probability: float = 0.5
    jitter_probability: float = 0.5
    brightness_range: Tuple[float, float] = (-0.12, 0.12)
    contrast_range: Tuple[float, float] = (0.85, 1.15)
    translate_probability: float = 0.3
    max_translate_fraction: float = 0.08


def horizontal_flip(image: np.ndarray, truth: GroundTruth) -> Sample:
    """Mirror the image left-right and reflect box centers."""
    flipped = image[:, :, ::-1].copy()
    width = image.shape[2]
    boxes = truth.boxes_xywh.copy()
    if len(boxes):
        boxes[:, 0] = width - boxes[:, 0]
    return flipped, GroundTruth(boxes, truth.labels.copy())


def photometric_jitter(image: np.ndarray, rng: np.random.Generator,
                       config: AugmentConfig) -> np.ndarray:
    """Random brightness shift and contrast scale (boxes unaffected)."""
    brightness = rng.uniform(*config.brightness_range)
    contrast = rng.uniform(*config.contrast_range)
    mean = image.mean()
    jittered = (image - mean) * contrast + mean + brightness
    return np.clip(jittered, 0.0, 1.0).astype(np.float32)


def translate(image: np.ndarray, truth: GroundTruth,
              rng: np.random.Generator, config: AugmentConfig) -> Sample:
    """Shift the image by a few pixels, dropping boxes pushed off-frame."""
    _, height, width = image.shape
    max_dy = int(config.max_translate_fraction * height)
    max_dx = int(config.max_translate_fraction * width)
    dy = int(rng.integers(-max_dy, max_dy + 1)) if max_dy else 0
    dx = int(rng.integers(-max_dx, max_dx + 1)) if max_dx else 0
    shifted = np.zeros_like(image)
    src_y0, dst_y0 = max(0, -dy), max(0, dy)
    src_x0, dst_x0 = max(0, -dx), max(0, dx)
    copy_h = height - abs(dy)
    copy_w = width - abs(dx)
    shifted[:, dst_y0:dst_y0 + copy_h, dst_x0:dst_x0 + copy_w] = (
        image[:, src_y0:src_y0 + copy_h, src_x0:src_x0 + copy_w]
    )
    boxes = truth.boxes_xywh.copy()
    labels = truth.labels.copy()
    if len(boxes):
        boxes[:, 0] += dx
        boxes[:, 1] += dy
        keep = (
            (boxes[:, 0] > 0) & (boxes[:, 0] < width)
            & (boxes[:, 1] > 0) & (boxes[:, 1] < height)
        )
        boxes, labels = boxes[keep], labels[keep]
    return shifted, GroundTruth(boxes, labels)


def augment_sample(image: np.ndarray, truth: GroundTruth,
                   rng: np.random.Generator,
                   config: AugmentConfig = AugmentConfig()) -> Sample:
    """Apply the full augmentation pipeline to one sample."""
    out_image, out_truth = image, truth
    if rng.random() < config.flip_probability:
        out_image, out_truth = horizontal_flip(out_image, out_truth)
    if rng.random() < config.jitter_probability:
        out_image = photometric_jitter(out_image, rng, config)
    if rng.random() < config.translate_probability:
        out_image, out_truth = translate(out_image, out_truth, rng, config)
    return out_image, out_truth
