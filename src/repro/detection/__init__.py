"""`repro.detection` — the YOLOv3-tiny object-detection substrate.

Implements the victim model of the paper: the darknet yolov3-tiny topology,
head decoding, NMS, target assignment, the training loss, a fine-tuning
loop, and mAP evaluation.
"""

from .anchors import anchor_fitness, kmeans_anchors
from .augment import AugmentConfig, augment_sample, horizontal_flip, photometric_jitter, translate
from .boxes import (
    box_area,
    clip_boxes,
    iou_matrix,
    iou_pairwise,
    xywh_to_xyxy,
    xyxy_to_xywh,
)
from .config import CLASS_NAMES, TinyYoloConfig, reduced_config
from .decode import (
    DecodedHead,
    Detection,
    batched_detections,
    decode_head,
    decode_heads,
    detections_from_outputs,
)
from .loss import YoloLossResult, yolo_loss
from .metrics import MapResult, average_precision, evaluate_map
from .model import TinyYolo
from .nms import non_max_suppression, non_max_suppression_reference
from .targets import GroundTruth, HeadTargets, build_targets
from .train import DetectorTrainConfig, train_detector

__all__ = [
    "CLASS_NAMES",
    "TinyYoloConfig",
    "reduced_config",
    "TinyYolo",
    "DecodedHead",
    "Detection",
    "decode_head",
    "decode_heads",
    "detections_from_outputs",
    "batched_detections",
    "GroundTruth",
    "HeadTargets",
    "build_targets",
    "YoloLossResult",
    "yolo_loss",
    "DetectorTrainConfig",
    "train_detector",
    "MapResult",
    "average_precision",
    "evaluate_map",
    "non_max_suppression",
    "non_max_suppression_reference",
    "xywh_to_xyxy",
    "xyxy_to_xywh",
    "box_area",
    "iou_pairwise",
    "iou_matrix",
    "clip_boxes",
    "kmeans_anchors",
    "anchor_fitness",
    "AugmentConfig",
    "augment_sample",
    "horizontal_flip",
    "photometric_jitter",
    "translate",
]
