"""Fine-tuning loop for the detector.

The paper fine-tunes a pre-trained YOLOv3-tiny on its 1000-image road
dataset. Offline we train the (reduced-width) network from scratch on the
synthetic road dataset — the substitution in DESIGN.md §2 — with the same
loss and optimizer family.

Fault tolerance (DESIGN.md §7): with a
:class:`~repro.runtime.RuntimeConfig` carrying a ``checkpoint_path`` the
loop snapshots model/optimizer/RNG state at epoch boundaries (the
``checkpoint_interval`` counts epochs here) and resumes bit-for-bit after
a kill. Divergence rolls back to the last epoch snapshot, cuts the
learning rate and reshuffles, bounded by the guard's retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Adam, Tensor, clip_grad_norm
from ..obs import Run, span_scope
from ..runtime import (
    DivergenceGuard,
    RuntimeConfig,
    TrainingCheckpoint,
    capture_rng,
    restore_rng,
    run_with_recovery,
)
from ..utils.logging import TrainLog
from ..utils.rng import derive_seed
from ..utils.timer import Budget
from .augment import AugmentConfig, augment_sample
from .loss import yolo_loss
from .model import TinyYolo
from .targets import GroundTruth

__all__ = ["DetectorTrainConfig", "train_detector"]

Sample = Tuple[np.ndarray, GroundTruth]


@dataclass
class DetectorTrainConfig:
    """Hyper-parameters of the fine-tuning loop."""

    epochs: int = 20
    batch_size: int = 8
    learning_rate: float = 1e-3
    grad_clip: float = 10.0
    shuffle: bool = True
    #: Geometric/photometric augmentation (augment.py). Off by default so
    #: runs stay bit-reproducible with cached checkpoints; the synthetic
    #: dataset already varies sprites, styles and capture degradation.
    augment: bool = False
    seed: int = 0
    time_budget_seconds: Optional[float] = None
    log_every: int = 10


def _batches(samples: Sequence[Sample], batch_size: int,
             rng: np.random.Generator, shuffle: bool, augment: bool):
    order = np.arange(len(samples))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start:start + batch_size]
        batch = [samples[i] for i in chunk]
        if augment:
            batch = [augment_sample(img, truth, rng) for img, truth in batch]
        images = np.stack([img for img, _ in batch]).astype(np.float32)
        truths = [truth for _, truth in batch]
        yield images, truths


def train_detector(
    model: TinyYolo,
    samples: Sequence[Sample],
    config: Optional[DetectorTrainConfig] = None,
    log: Optional[TrainLog] = None,
    runtime: Optional[RuntimeConfig] = None,
    obs: Optional[Run] = None,
    live=None,
) -> TrainLog:
    """Train ``model`` in place on ``samples`` (CHW float images + truths).

    Returns the training log; the final record's ``loss`` is the last batch
    loss, useful for convergence assertions in tests.

    ``obs`` attaches the loop to a run (DESIGN.md §9): a ``detector.train``
    span, loss gauges from the log, and guard/recovery counters all land
    in the run's trace and metrics registry. ``obs=None`` is free.

    ``live`` (a :class:`repro.obs.TrainTelemetry`, DESIGN.md §14) attaches
    the loop to the live sampler under the ``detector`` trainer name
    (per-batch steps, epoch progress, loss/grad-norm gauges, checkpoint
    age, guard state). ``live=None`` is free.
    """
    config = config or DetectorTrainConfig()
    log = log or TrainLog("detector")
    runtime = runtime or RuntimeConfig()
    if not samples:
        raise ValueError("no training samples")
    if obs is not None:
        log.bind_metrics(obs.metrics, prefix="detector")
    manager = runtime.manager()
    guard = DivergenceGuard(runtime.guard,
                            metrics=obs.metrics if obs is not None else None)
    ledger = None
    if live is not None:
        batches_per_epoch = -(-len(samples) // config.batch_size)
        ledger = live.attach("detector", config.epochs * batches_per_epoch)
        live.ensure_probe("train.detector.guard", guard.probe)
        live.register_host_probes()
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    budget = Budget(config.time_budget_seconds)
    model.train()

    def snapshot(epoch: int, step: int) -> TrainingCheckpoint:
        state = {"model." + k: np.asarray(v).copy()
                 for k, v in model.state_dict().items()}
        state.update({"opt." + k: np.asarray(v).copy()
                      for k, v in optimizer.state_dict().items()})
        return TrainingCheckpoint(
            step=epoch, state=state,
            rngs={"batch": capture_rng(rng)},
            scalars={"lr": optimizer.lr, "global_step": float(step)},
        )

    def restore(checkpoint: TrainingCheckpoint) -> int:
        model.load_state_dict({k[len("model."):]: v
                               for k, v in checkpoint.state.items()
                               if k.startswith("model.")})
        optimizer.load_state_dict({k[len("opt."):]: v
                                   for k, v in checkpoint.state.items()
                                   if k.startswith("opt.")})
        restore_rng(rng, checkpoint.rngs["batch"])
        return int(checkpoint.scalars["global_step"])

    start_epoch, start_step = 0, 0
    resumed = manager.load()
    if resumed is not None:
        start_step = restore(resumed)
        start_epoch = resumed.step
        log.event(start_step, "checkpoint_restore", path=manager.path,
                  epoch=start_epoch)
    last_good: List[TrainingCheckpoint] = []

    def run_epochs(first_epoch: int, first_step: int) -> None:
        # Start the (lazy) budget clock at the first optimization step, so
        # checkpoint restore and other setup don't eat training wall-clock;
        # idempotent across divergence retries.
        budget.start()
        step = first_step
        for epoch in range(first_epoch, config.epochs):
            if manager.due(epoch) or not last_good:
                checkpoint = snapshot(epoch, step)
                last_good[:] = [checkpoint]
                manager.save(checkpoint)
                if ledger is not None:
                    ledger.checkpoint_saved()
            if ledger is not None:
                ledger.set_epoch(epoch)
            for images, truths in _batches(samples, config.batch_size, rng,
                                           config.shuffle, config.augment):
                outputs = model(Tensor(images))
                result = yolo_loss(outputs, truths, model.config)
                guard.check(step, loss=float(result.total.data))
                optimizer.zero_grad()
                result.total.backward()
                grad_norm = clip_grad_norm(model.parameters(), config.grad_clip)
                guard.check(step, grad_norm=grad_norm)
                optimizer.step()
                if obs is not None:
                    obs.metrics.counter("detector.steps_run").inc()
                    obs.metrics.counter("detector.samples_seen").inc(len(truths))
                if ledger is not None:
                    ledger.step(step, loss=float(result.total.data),
                                grad_norm=grad_norm, lr=optimizer.lr)
                if step % config.log_every == 0:
                    log.log(
                        step,
                        loss=float(result.total.data),
                        xy=result.xy,
                        wh=result.wh,
                        obj=result.objectness,
                        cls=result.classification,
                        grad_norm=grad_norm,
                        lr=optimizer.lr,
                        epoch=epoch,
                    )
                step += 1
                if budget.exhausted():
                    log.log(step, loss=float(result.total.data), stopped_early=1.0)
                    log.event(step, "early_stop", reason="time_budget",
                              epoch=epoch)
                    return
        log.log(step, loss=log.last("loss"), done=1.0)

    def on_divergence(attempt_index: int, err) -> None:
        checkpoint = last_good[0]
        restore(checkpoint)
        optimizer.lr = max(optimizer.lr * runtime.guard.lr_decay,
                           runtime.guard.min_lr)
        restore_rng(rng, capture_rng(np.random.default_rng(
            derive_seed(config.seed, "det-retry", attempt_index))))
        recovered = snapshot(checkpoint.step,
                             int(checkpoint.scalars["global_step"]))
        last_good[:] = [recovered]
        manager.save(recovered)
        if ledger is not None:
            ledger.recovery()
            ledger.checkpoint_saved()
        log.event(err.step, "divergence_recovery", reason=err.reason,
                  attempt=attempt_index, lr=optimizer.lr,
                  rollback_epoch=checkpoint.step)

    def attempt(index: int) -> None:
        if index == 0:
            run_epochs(start_epoch, start_step)
        else:
            checkpoint = last_good[0]
            run_epochs(checkpoint.step, int(checkpoint.scalars["global_step"]))

    with span_scope(obs, "detector.train", epochs=config.epochs,
                    samples=len(samples), seed=config.seed):
        run_with_recovery(attempt, runtime.retry_policy(), on_divergence)
    if not runtime.keep_checkpoint:
        manager.delete()
    if ledger is not None:
        ledger.finish()
    model.eval()
    return log
