"""Fine-tuning loop for the detector.

The paper fine-tunes a pre-trained YOLOv3-tiny on its 1000-image road
dataset. Offline we train the (reduced-width) network from scratch on the
synthetic road dataset — the substitution in DESIGN.md §2 — with the same
loss and optimizer family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Adam, Tensor, clip_grad_norm
from ..utils.logging import TrainLog
from ..utils.timer import Budget
from .augment import AugmentConfig, augment_sample
from .loss import yolo_loss
from .model import TinyYolo
from .targets import GroundTruth

__all__ = ["DetectorTrainConfig", "train_detector"]

Sample = Tuple[np.ndarray, GroundTruth]


@dataclass
class DetectorTrainConfig:
    """Hyper-parameters of the fine-tuning loop."""

    epochs: int = 20
    batch_size: int = 8
    learning_rate: float = 1e-3
    grad_clip: float = 10.0
    shuffle: bool = True
    #: Geometric/photometric augmentation (augment.py). Off by default so
    #: runs stay bit-reproducible with cached checkpoints; the synthetic
    #: dataset already varies sprites, styles and capture degradation.
    augment: bool = False
    seed: int = 0
    time_budget_seconds: Optional[float] = None
    log_every: int = 10


def _batches(samples: Sequence[Sample], batch_size: int,
             rng: np.random.Generator, shuffle: bool, augment: bool):
    order = np.arange(len(samples))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start:start + batch_size]
        batch = [samples[i] for i in chunk]
        if augment:
            batch = [augment_sample(img, truth, rng) for img, truth in batch]
        images = np.stack([img for img, _ in batch]).astype(np.float32)
        truths = [truth for _, truth in batch]
        yield images, truths


def train_detector(
    model: TinyYolo,
    samples: Sequence[Sample],
    config: Optional[DetectorTrainConfig] = None,
    log: Optional[TrainLog] = None,
) -> TrainLog:
    """Train ``model`` in place on ``samples`` (CHW float images + truths).

    Returns the training log; the final record's ``loss`` is the last batch
    loss, useful for convergence assertions in tests.
    """
    config = config or DetectorTrainConfig()
    log = log or TrainLog("detector")
    if not samples:
        raise ValueError("no training samples")
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    budget = Budget(config.time_budget_seconds)
    model.train()

    step = 0
    for epoch in range(config.epochs):
        for images, truths in _batches(samples, config.batch_size, rng,
                                       config.shuffle, config.augment):
            outputs = model(Tensor(images))
            result = yolo_loss(outputs, truths, model.config)
            if not np.isfinite(result.total.data):
                raise FloatingPointError(
                    f"non-finite loss at step {step}; components: "
                    f"xy={result.xy} wh={result.wh} obj={result.objectness} "
                    f"cls={result.classification}"
                )
            optimizer.zero_grad()
            result.total.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            if step % config.log_every == 0:
                log.log(
                    step,
                    loss=float(result.total.data),
                    xy=result.xy,
                    wh=result.wh,
                    obj=result.objectness,
                    cls=result.classification,
                    epoch=epoch,
                )
            step += 1
            if budget.exhausted():
                log.log(step, loss=float(result.total.data), stopped_early=1.0)
                model.eval()
                return log
    log.log(step, loss=log.last("loss"), done=1.0)
    model.eval()
    return log
