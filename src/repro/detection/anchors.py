"""Anchor utilities.

The darknet anchors are defined for 416² input in ``config.py``; this module
adds k-means anchor re-estimation so a dataset at a different scale (e.g.
the reduced synthetic profile) can use anchors matched to its box-size
distribution — the same procedure the YOLO authors used to pick the defaults.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["kmeans_anchors", "anchor_fitness"]


def _shape_iou(wh: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """IoU between (N,2) box sizes and (K,2) anchor sizes, center-aligned."""
    inter = (
        np.minimum(wh[:, None, 0], centers[None, :, 0])
        * np.minimum(wh[:, None, 1], centers[None, :, 1])
    )
    union = wh[:, 0:1] * wh[:, 1:2] + centers[None, :, 0] * centers[None, :, 1] - inter
    return inter / np.maximum(union, 1e-12)


def kmeans_anchors(
    box_sizes: Sequence[Tuple[float, float]],
    k: int = 6,
    iterations: int = 50,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Cluster box (w, h) sizes into ``k`` anchors with IoU distance.

    Returns anchors sorted by area ascending (fine head first, as darknet
    orders them).
    """
    wh = np.asarray(box_sizes, dtype=np.float32).reshape(-1, 2)
    if len(wh) < k:
        raise ValueError(f"need at least {k} boxes to fit {k} anchors, got {len(wh)}")
    rng = np.random.default_rng(seed)
    centers = wh[rng.choice(len(wh), size=k, replace=False)].copy()
    for _ in range(iterations):
        assignment = _shape_iou(wh, centers).argmax(axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = wh[assignment == j]
            if len(members):
                new_centers[j] = np.median(members, axis=0)
        if np.allclose(new_centers, centers, atol=1e-4):
            break
        centers = new_centers
    order = np.argsort(centers[:, 0] * centers[:, 1])
    return [tuple(map(float, centers[i])) for i in order]


def anchor_fitness(box_sizes: Sequence[Tuple[float, float]],
                   anchors: Sequence[Tuple[float, float]]) -> float:
    """Mean best-anchor IoU over the dataset (higher is better)."""
    wh = np.asarray(box_sizes, dtype=np.float32).reshape(-1, 2)
    centers = np.asarray(anchors, dtype=np.float32).reshape(-1, 2)
    return float(_shape_iou(wh, centers).max(axis=1).mean())
