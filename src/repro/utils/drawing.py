"""Rasterization primitives for the procedural scene renderer.

Everything draws into float32 CHW images in place. These primitives back
both the road-scene sprites (cars, arrows, painted words) and the Four
Shapes patch dataset, so they are written for clarity and determinism, not
anti-aliased beauty.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "fill_rect",
    "fill_polygon",
    "fill_circle",
    "draw_line",
    "polygon_mask",
    "circle_mask",
    "star_points",
    "regular_polygon_points",
]

Color = Tuple[float, float, float]


def _color_array(image: np.ndarray, color) -> np.ndarray:
    channels = image.shape[0]
    color = np.asarray(color, dtype=np.float32).reshape(-1)
    if color.size == 1:
        color = np.repeat(color, channels)
    if color.size != channels:
        raise ValueError(f"color size {color.size} != channels {channels}")
    return color


def fill_rect(image: np.ndarray, y0: int, x0: int, y1: int, x1: int, color) -> None:
    """Fill the half-open rectangle [y0:y1, x0:x1] with ``color``."""
    _, h, w = image.shape
    y0, y1 = max(0, y0), min(h, y1)
    x0, x1 = max(0, x0), min(w, x1)
    if y0 >= y1 or x0 >= x1:
        return
    color = _color_array(image, color)
    image[:, y0:y1, x0:x1] = color[:, None, None]


def polygon_mask(shape_hw: Tuple[int, int], points: Sequence[Tuple[float, float]]) -> np.ndarray:
    """Boolean mask of pixels inside a polygon given as (y, x) vertices.

    Uses the even-odd (crossing-number) rule evaluated on the pixel grid.
    """
    h, w = shape_hw
    ys, xs = np.mgrid[0:h, 0:w]
    ys = ys + 0.5
    xs = xs + 0.5
    inside = np.zeros((h, w), dtype=bool)
    pts = list(points)
    n = len(pts)
    for i in range(n):
        y0, x0 = pts[i]
        y1, x1 = pts[(i + 1) % n]
        crosses = ((y0 <= ys) & (ys < y1)) | ((y1 <= ys) & (ys < y0))
        denom = (y1 - y0)
        if abs(denom) < 1e-12:
            continue
        x_at = x0 + (ys - y0) * (x1 - x0) / denom
        inside ^= crosses & (xs < x_at)
    return inside


def circle_mask(shape_hw: Tuple[int, int], cy: float, cx: float, radius: float) -> np.ndarray:
    h, w = shape_hw
    ys, xs = np.mgrid[0:h, 0:w]
    return (ys + 0.5 - cy) ** 2 + (xs + 0.5 - cx) ** 2 <= radius ** 2


def fill_polygon(image: np.ndarray, points: Sequence[Tuple[float, float]], color) -> None:
    mask = polygon_mask(image.shape[1:], points)
    color = _color_array(image, color)
    image[:, mask] = color[:, None]


def fill_circle(image: np.ndarray, cy: float, cx: float, radius: float, color) -> None:
    mask = circle_mask(image.shape[1:], cy, cx, radius)
    color = _color_array(image, color)
    image[:, mask] = color[:, None]


def draw_line(image: np.ndarray, y0: float, x0: float, y1: float, x1: float,
              color, thickness: float = 1.0) -> None:
    """Draw a line segment with the given thickness (distance test)."""
    _, h, w = image.shape
    ys, xs = np.mgrid[0:h, 0:w]
    ys = ys + 0.5
    xs = xs + 0.5
    dy, dx = y1 - y0, x1 - x0
    length_sq = dy * dy + dx * dx
    if length_sq < 1e-12:
        mask = (ys - y0) ** 2 + (xs - x0) ** 2 <= thickness ** 2
    else:
        t = np.clip(((ys - y0) * dy + (xs - x0) * dx) / length_sq, 0.0, 1.0)
        py = y0 + t * dy
        px = x0 + t * dx
        mask = (ys - py) ** 2 + (xs - px) ** 2 <= (thickness / 2.0) ** 2
    color = _color_array(image, color)
    image[:, mask] = color[:, None]


def star_points(cy: float, cx: float, outer: float, inner: float,
                spikes: int = 5, rotation: float = 0.0) -> list:
    """Vertices (y, x) of a star polygon with the given spike count."""
    points = []
    for i in range(2 * spikes):
        radius = outer if i % 2 == 0 else inner
        angle = rotation + math.pi * i / spikes - math.pi / 2
        points.append((cy + radius * math.sin(angle), cx + radius * math.cos(angle)))
    return points


def regular_polygon_points(cy: float, cx: float, radius: float,
                           sides: int, rotation: float = 0.0) -> list:
    """Vertices (y, x) of a regular polygon."""
    points = []
    for i in range(sides):
        angle = rotation + 2 * math.pi * i / sides - math.pi / 2
        points.append((cy + radius * math.sin(angle), cx + radius * math.cos(angle)))
    return points
