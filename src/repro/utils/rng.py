"""Deterministic random-number management.

Every stochastic component of the reproduction (dataset synthesis, EOT
sampling, GAN noise, trajectory jitter, physical-degradation noise) draws
from a generator created here, so any experiment is exactly reproducible
from its seed. The paper averages each physical experiment over 3 runs; we
mirror that by deriving three child seeds per experiment.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_seed"]

_GOLDEN = 0x9E3779B97F4A7C15


def make_rng(seed: int) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed."""
    return np.random.default_rng(seed)


def derive_seed(seed: int, *names) -> int:
    """Derive a stable child seed from a parent seed and a label path.

    Uses a splitmix-style hash of the label so that adding new consumers
    never perturbs existing streams.
    """
    value = seed & 0xFFFFFFFFFFFFFFFF
    for name in names:
        for char in str(name):
            value = (value ^ ord(char)) * _GOLDEN & 0xFFFFFFFFFFFFFFFF
            value ^= value >> 31
    return value & 0x7FFFFFFF


def spawn_rngs(seed: int, count: int, label: str = "run") -> List[np.random.Generator]:
    """Spawn ``count`` independent generators (e.g. the paper's 3 runs)."""
    return [make_rng(derive_seed(seed, label, i)) for i in range(count)]
