"""Wall-clock timing helpers for benchmarks and budgeted training loops."""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Stopwatch", "Budget"]


class Stopwatch:
    """Simple start/lap stopwatch."""

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self._start = time.perf_counter()
        self._last = self._start

    def lap(self) -> float:
        """Seconds since the previous lap (or reset)."""
        now = time.perf_counter()
        delta = now - self._last
        self._last = now
        return delta

    def total(self) -> float:
        return time.perf_counter() - self._start


class Budget:
    """A wall-clock budget that training loops can poll to stop early.

    The reduced-scale experiment profiles cap optimization time so the whole
    benchmark suite stays laptop-friendly; a ``None`` limit never expires.

    The clock starts *lazily* on the first :meth:`exhausted` /
    :meth:`remaining` poll (or an explicit :meth:`start`), not at
    construction — a budget built before data prep or rendering no longer
    silently loses that wall-clock to setup work the budget was never
    meant to cover.
    """

    def __init__(self, seconds: Optional[float] = None):
        self.seconds = seconds
        self._start: Optional[float] = None

    @property
    def started(self) -> bool:
        return self._start is not None

    def start(self) -> "Budget":
        """Start the clock now (idempotent); returns self for chaining."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def elapsed(self) -> float:
        """Seconds since the clock started (0.0 if it has not)."""
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def exhausted(self) -> bool:
        if self.seconds is None:
            return False
        self.start()
        return self.elapsed() >= self.seconds

    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        self.start()
        return max(0.0, self.seconds - self.elapsed())
