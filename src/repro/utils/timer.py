"""Wall-clock timing helpers for benchmarks and budgeted training loops."""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Stopwatch", "Budget"]


class Stopwatch:
    """Simple start/lap stopwatch."""

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self._start = time.perf_counter()
        self._last = self._start

    def lap(self) -> float:
        """Seconds since the previous lap (or reset)."""
        now = time.perf_counter()
        delta = now - self._last
        self._last = now
        return delta

    def total(self) -> float:
        return time.perf_counter() - self._start


class Budget:
    """A wall-clock budget that training loops can poll to stop early.

    The reduced-scale experiment profiles cap optimization time so the whole
    benchmark suite stays laptop-friendly; a ``None`` limit never expires.
    """

    def __init__(self, seconds: Optional[float] = None):
        self.seconds = seconds
        self._start = time.perf_counter()

    def exhausted(self) -> bool:
        if self.seconds is None:
            return False
        return (time.perf_counter() - self._start) >= self.seconds

    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - (time.perf_counter() - self._start))
