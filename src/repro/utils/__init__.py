"""Shared utilities: deterministic RNG, image I/O, rasterization, logging."""

from .drawing import (
    circle_mask,
    draw_line,
    fill_circle,
    fill_polygon,
    fill_rect,
    polygon_mask,
    regular_polygon_points,
    star_points,
)
from .imageio import (
    ascii_preview,
    from_uint8,
    load_image,
    load_npy,
    save_image,
    save_npy,
    to_uint8,
)
from .logging import TrainLog
from .rng import derive_seed, make_rng, spawn_rngs
from .timer import Budget, Stopwatch

__all__ = [
    "make_rng",
    "spawn_rngs",
    "derive_seed",
    "save_image",
    "load_image",
    "save_npy",
    "load_npy",
    "to_uint8",
    "from_uint8",
    "ascii_preview",
    "fill_rect",
    "fill_polygon",
    "fill_circle",
    "draw_line",
    "polygon_mask",
    "circle_mask",
    "star_points",
    "regular_polygon_points",
    "TrainLog",
    "Budget",
    "Stopwatch",
]
