"""Tiny structured logger used by the training loops.

Avoids the stdlib ``logging`` global-config pitfalls in test environments:
each component owns a :class:`TrainLog` that collects records and optionally
echoes to stdout. Benchmarks read the collected history to report
convergence behaviour.

Besides per-step float metrics, a :class:`TrainLog` collects **events** —
discrete structured occurrences such as divergence recoveries, checkpoint
restores, or early stops — so post-mortem diagnosis of a run needs nothing
but the log object (DESIGN.md §7).

Two durability/telemetry extensions (DESIGN.md §9):

* :meth:`TrainLog.to_jsonl` / :meth:`TrainLog.from_jsonl` round-trip the
  full record + event history through a JSON-lines file, and the echo
  stream is flushed after every write, so a SIGKILLed run still leaves
  every line it printed (``scripts/runtime_smoke.py`` relies on this);
* :meth:`TrainLog.bind_metrics` publishes every subsequent record into a
  shared :class:`repro.obs.Metrics` registry (gauges per metric key,
  counters per event kind) instead of keeping a private shape.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["TrainLog"]

#: Bump when the JSONL layout changes incompatibly.
LOG_SCHEMA_VERSION = 1


class TrainLog:
    """Collects per-step metric dictionaries and optionally prints them."""

    def __init__(self, name: str, echo: bool = False, stream: Optional[TextIO] = None):
        self.name = name
        self.echo = echo
        self.stream = stream or sys.stdout
        self.records: List[Dict[str, float]] = []
        self.events: List[Dict[str, Any]] = []
        self._start = time.perf_counter()
        self._metrics = None
        self._metrics_prefix = name

    # ------------------------------------------------------------------
    def bind_metrics(self, metrics, prefix: Optional[str] = None) -> "TrainLog":
        """Publish subsequent records/events into a shared registry.

        Each metric key becomes the gauge ``{prefix}.{key}`` (last value
        wins, matching how dashboards read a training curve), records are
        counted under ``{prefix}.records``, and each event kind increments
        the *unprefixed* counter ``events.{kind}`` so recovery activity
        aggregates across trainers.
        """
        self._metrics = metrics
        if prefix is not None:
            self._metrics_prefix = prefix
        return self

    def _echo_write(self, line: str) -> None:
        self.stream.write(line)
        # Flush so a SIGKILLed run keeps every echoed line (smoke test).
        try:
            self.stream.flush()
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    def log(self, step: int, **metrics: float) -> None:
        record = {"step": float(step), "elapsed": time.perf_counter() - self._start}
        record.update({k: float(v) for k, v in metrics.items()})
        self.records.append(record)
        if self._metrics is not None:
            self._metrics.counter(f"{self._metrics_prefix}.records").inc()
            for key, value in metrics.items():
                self._metrics.gauge(f"{self._metrics_prefix}.{key}").set(float(value))
        if self.echo:
            parts = " ".join(f"{k}={v:.4g}" for k, v in metrics.items())
            self._echo_write(f"[{self.name}] step {step}: {parts}\n")

    def event(self, step: int, kind: str, **fields: Any) -> None:
        """Record a discrete structured event (recovery, restore, stop…).

        Unlike :meth:`log` records, event fields may be of any type —
        reasons, paths, attempt counters — and are kept verbatim.
        """
        record: Dict[str, Any] = {
            "step": int(step),
            "kind": str(kind),
            "elapsed": time.perf_counter() - self._start,
        }
        record.update(fields)
        self.events.append(record)
        if self._metrics is not None:
            self._metrics.counter(f"events.{kind}").inc()
        if self.echo:
            parts = " ".join(f"{k}={v!r}" for k, v in fields.items())
            self._echo_write(f"[{self.name}] step {step} !{kind}: {parts}\n")

    def events_of(self, kind: str) -> List[Dict[str, Any]]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]

    def last(self, key: str, default: float = float("nan")) -> float:
        for record in reversed(self.records):
            if key in record:
                return record[key]
        return default

    def series(self, key: str) -> List[float]:
        return [r[key] for r in self.records if key in r]

    # ------------------------------------------------------------------
    def to_jsonl(self, path: str) -> None:
        """Persist the full history (records + events) as JSON lines.

        The first line is a meta header; every later line is one record or
        event tagged by ``type``. Event fields survive verbatim when they
        are JSON-representable; anything else degrades to ``repr``.
        """
        with open(path, "w") as handle:
            handle.write(json.dumps(
                {"type": "meta", "schema_version": LOG_SCHEMA_VERSION,
                 "name": self.name},
                sort_keys=True) + "\n")
            for record in self.records:
                payload = {"type": "record"}
                payload.update(record)
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
            for event in self.events:
                payload = {"type": "event"}
                payload.update(event)
                handle.write(json.dumps(payload, sort_keys=True, default=repr) + "\n")
            handle.flush()

    @classmethod
    def from_jsonl(cls, path: str) -> "TrainLog":
        """Reload a :meth:`to_jsonl` file into a fresh (non-echoing) log."""
        log = cls("restored")
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                kind = payload.pop("type", None)
                if kind == "meta":
                    if payload.get("schema_version") != LOG_SCHEMA_VERSION:
                        raise ValueError(
                            f"log {path!r} has schema_version="
                            f"{payload.get('schema_version')!r}, expected "
                            f"{LOG_SCHEMA_VERSION}")
                    log.name = payload.get("name", log.name)
                elif kind == "record":
                    log.records.append({k: float(v) for k, v in payload.items()})
                elif kind == "event":
                    payload["step"] = int(payload["step"])
                    log.events.append(payload)
        return log
