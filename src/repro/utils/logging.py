"""Tiny structured logger used by the training loops.

Avoids the stdlib ``logging`` global-config pitfalls in test environments:
each component owns a :class:`TrainLog` that collects records and optionally
echoes to stdout. Benchmarks read the collected history to report
convergence behaviour.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, TextIO

__all__ = ["TrainLog"]


class TrainLog:
    """Collects per-step metric dictionaries and optionally prints them."""

    def __init__(self, name: str, echo: bool = False, stream: Optional[TextIO] = None):
        self.name = name
        self.echo = echo
        self.stream = stream or sys.stdout
        self.records: List[Dict[str, float]] = []
        self._start = time.perf_counter()

    def log(self, step: int, **metrics: float) -> None:
        record = {"step": float(step), "elapsed": time.perf_counter() - self._start}
        record.update({k: float(v) for k, v in metrics.items()})
        self.records.append(record)
        if self.echo:
            parts = " ".join(f"{k}={v:.4g}" for k, v in metrics.items())
            self.stream.write(f"[{self.name}] step {step}: {parts}\n")

    def last(self, key: str, default: float = float("nan")) -> float:
        for record in reversed(self.records):
            if key in record:
                return record[key]
        return default

    def series(self, key: str) -> List[float]:
        return [r[key] for r in self.records if key in r]
