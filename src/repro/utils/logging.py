"""Tiny structured logger used by the training loops.

Avoids the stdlib ``logging`` global-config pitfalls in test environments:
each component owns a :class:`TrainLog` that collects records and optionally
echoes to stdout. Benchmarks read the collected history to report
convergence behaviour.

Besides per-step float metrics, a :class:`TrainLog` collects **events** —
discrete structured occurrences such as divergence recoveries, checkpoint
restores, or early stops — so post-mortem diagnosis of a run needs nothing
but the log object (DESIGN.md §7).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["TrainLog"]


class TrainLog:
    """Collects per-step metric dictionaries and optionally prints them."""

    def __init__(self, name: str, echo: bool = False, stream: Optional[TextIO] = None):
        self.name = name
        self.echo = echo
        self.stream = stream or sys.stdout
        self.records: List[Dict[str, float]] = []
        self.events: List[Dict[str, Any]] = []
        self._start = time.perf_counter()

    def log(self, step: int, **metrics: float) -> None:
        record = {"step": float(step), "elapsed": time.perf_counter() - self._start}
        record.update({k: float(v) for k, v in metrics.items()})
        self.records.append(record)
        if self.echo:
            parts = " ".join(f"{k}={v:.4g}" for k, v in metrics.items())
            self.stream.write(f"[{self.name}] step {step}: {parts}\n")

    def event(self, step: int, kind: str, **fields: Any) -> None:
        """Record a discrete structured event (recovery, restore, stop…).

        Unlike :meth:`log` records, event fields may be of any type —
        reasons, paths, attempt counters — and are kept verbatim.
        """
        record: Dict[str, Any] = {
            "step": int(step),
            "kind": str(kind),
            "elapsed": time.perf_counter() - self._start,
        }
        record.update(fields)
        self.events.append(record)
        if self.echo:
            parts = " ".join(f"{k}={v!r}" for k, v in fields.items())
            self.stream.write(f"[{self.name}] step {step} !{kind}: {parts}\n")

    def events_of(self, kind: str) -> List[Dict[str, Any]]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]

    def last(self, key: str, default: float = float("nan")) -> float:
        for record in reversed(self.records):
            if key in record:
                return record[key]
        return default

    def series(self, key: str) -> List[float]:
        return [r[key] for r in self.records if key in r]
