"""Minimal image I/O without external imaging libraries.

Images in this project are float32 numpy arrays in CHW layout with values
in [0, 1] (3 channels = RGB, 1 channel = grayscale). This module saves and
loads them as binary PPM/PGM (viewable almost anywhere) or ``.npy``, and
renders quick ASCII previews for logs and benchmark reports — the
reproduction's stand-in for the paper's photographs (Figs. 2–8).
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

__all__ = [
    "to_uint8",
    "from_uint8",
    "save_image",
    "load_image",
    "save_npy",
    "load_npy",
    "ascii_preview",
]

_ASCII_RAMP = " .:-=+*#%@"


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a [0,1] float CHW image to HWC uint8."""
    image = np.asarray(image)
    if image.ndim != 3:
        raise ValueError(f"expected CHW image, got shape {image.shape}")
    clipped = np.clip(image, 0.0, 1.0)
    return (clipped.transpose(1, 2, 0) * 255.0 + 0.5).astype(np.uint8)


def from_uint8(array: np.ndarray) -> np.ndarray:
    """Convert an HWC uint8 image to [0,1] float CHW."""
    if array.ndim == 2:
        array = array[:, :, None]
    return (array.astype(np.float32) / 255.0).transpose(2, 0, 1)


def save_image(image: np.ndarray, path: str) -> None:
    """Save a CHW float image as binary PPM (3ch) or PGM (1ch)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    pixels = to_uint8(image)
    height, width, channels = pixels.shape
    if channels == 1:
        header = f"P5\n{width} {height}\n255\n".encode()
        payload = pixels[:, :, 0].tobytes()
    elif channels == 3:
        header = f"P6\n{width} {height}\n255\n".encode()
        payload = pixels.tobytes()
    else:
        raise ValueError(f"unsupported channel count {channels}")
    with open(path, "wb") as handle:
        handle.write(header + payload)


def load_image(path: str) -> np.ndarray:
    """Load a binary PPM/PGM file saved by :func:`save_image`."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic not in (b"P5", b"P6"):
            raise ValueError(f"unsupported netpbm magic {magic!r} in {path}")
        dims = handle.readline().split()
        while dims and dims[0].startswith(b"#"):
            dims = handle.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(handle.readline())
        if maxval != 255:
            raise ValueError(f"unsupported maxval {maxval} in {path}")
        channels = 3 if magic == b"P6" else 1
        payload = np.frombuffer(handle.read(width * height * channels), dtype=np.uint8)
    return from_uint8(payload.reshape(height, width, channels))


def save_npy(image: np.ndarray, path: str) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.save(path, np.asarray(image, dtype=np.float32))


def load_npy(path: str) -> np.ndarray:
    return np.load(path)


def ascii_preview(image: np.ndarray, width: int = 48) -> str:
    """Render a coarse ASCII-art preview of a CHW image."""
    image = np.asarray(image)
    if image.ndim == 3:
        gray = image.mean(axis=0)
    else:
        gray = image
    h, w = gray.shape
    out_w = min(width, w)
    out_h = max(1, int(h * out_w / w / 2))  # terminal cells are ~2x tall
    ys = (np.linspace(0, h - 1, out_h)).astype(int)
    xs = (np.linspace(0, w - 1, out_w)).astype(int)
    small = np.clip(gray[np.ix_(ys, xs)], 0, 1)
    indices = (small * (len(_ASCII_RAMP) - 1)).astype(int)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in indices)
