"""Turnkey experiment harness.

:class:`Workbench` wires the whole pipeline together the way the paper's
experiments do: build the road dataset, fine-tune the detector, train an
attack (ours or the Sava baseline), and evaluate PWC/CWC over the three
challenges. Heavy artifacts — the trained detector and each attack — are
cached on disk so regenerating a table only retrains what changed.

Two profiles are provided (DESIGN.md §5):

* ``Workbench.reduced()`` — the laptop-scale profile every test and
  benchmark uses; the detector is a width-0.25 YOLOv3-tiny at 96².
* ``Workbench.paper_scale()`` — the paper's full configuration (416²,
  width 1.0, 1000-image dataset, 800 epochs). Constructible and
  shape-correct, but not intended to finish on a CPU.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, TypeVar, Union

import numpy as np

from .attack.artifacts import (
    cached_path,
    load_attack,
    load_baseline,
    save_attack,
    save_baseline,
)
from .attack.baseline_sava import SavaBaselineResult, train_sava_baseline
from .attack.config import PAPER_TRICKS, AttackConfig
from .attack.trainer import AttackResult, train_patch_attack
from .detection.config import TinyYoloConfig, reduced_config
from .detection.model import TinyYolo
from .detection.train import DetectorTrainConfig, train_detector
from .nn.serialization import CheckpointError, load_module, save_module
from .runtime import FaultSchedule, RuntimeConfig
from .scene.dataset import DatasetConfig, build_dataset
from .scene.video import AttackScenario
from .eval.protocol import (
    DEFAULT_CHALLENGES,
    ChallengeResult,
    evaluate_challenges,
)
from .utils.rng import derive_seed

__all__ = ["WorkbenchProfile", "Workbench"]

Artifact = Union[AttackResult, SavaBaselineResult]
_T = TypeVar("_T")


def _load_cached(path: str, loader: Callable[[str], _T]) -> Optional[_T]:
    """Load a cached artifact, rejecting corrupt files.

    A truncated or digest-mismatched artifact returns ``None`` (with a
    warning) so the caller retrains and overwrites it — a poisoned cache
    must never masquerade as a trained artifact.
    """
    try:
        return loader(path)
    except CheckpointError as err:
        warnings.warn(f"discarding corrupt cached artifact: {err}")
        return None


@dataclass(frozen=True)
class WorkbenchProfile:
    """Size/time profile for a full experiment pipeline."""

    name: str
    image_size: int
    width_multiplier: float
    train_images: int
    test_images: int
    detector_epochs: int
    detector_batch: int
    attack_steps: int
    attack_warmup: int
    attack_batch_frames: int
    frame_pool: int
    eval_runs: int

    @staticmethod
    def reduced() -> "WorkbenchProfile":
        return WorkbenchProfile(
            name="reduced",
            image_size=96,
            width_multiplier=0.25,
            train_images=400,
            test_images=64,
            detector_epochs=40,
            detector_batch=8,
            attack_steps=100,
            attack_warmup=50,
            attack_batch_frames=6,
            frame_pool=48,
            eval_runs=3,
        )

    @staticmethod
    def paper_scale() -> "WorkbenchProfile":
        """The authors' configuration (§IV-A); V100-sized, not CPU-sized."""
        return WorkbenchProfile(
            name="paper",
            image_size=416,
            width_multiplier=1.0,
            train_images=1000,
            test_images=71,
            detector_epochs=100,
            detector_batch=16,
            attack_steps=800,
            attack_warmup=200,
            attack_batch_frames=18,
            frame_pool=200,
            eval_runs=3,
        )

    @staticmethod
    def smoke() -> "WorkbenchProfile":
        """Minimal profile for integration tests — minutes, not hours."""
        return WorkbenchProfile(
            name="smoke",
            image_size=64,
            width_multiplier=0.25,
            train_images=60,
            test_images=10,
            detector_epochs=6,
            detector_batch=8,
            attack_steps=30,
            attack_warmup=20,
            attack_batch_frames=6,
            frame_pool=24,
            eval_runs=1,
        )


class Workbench:
    """End-to-end experiment runner with on-disk artifact caching."""

    def __init__(self, profile: WorkbenchProfile, seed: int = 0,
                 cache_dir: Optional[str] = None):
        self.profile = profile
        self.seed = seed
        self.cache_dir = cache_dir or os.environ.get(
            "REPRO_CACHE_DIR", os.path.join(os.getcwd(), ".repro_cache")
        )
        self._detector: Optional[TinyYolo] = None
        self._train_samples = None
        self._test_samples = None
        self._anchors = None

    # -- constructors ------------------------------------------------------
    @classmethod
    def reduced(cls, seed: int = 0, cache_dir: Optional[str] = None) -> "Workbench":
        return cls(WorkbenchProfile.reduced(), seed=seed, cache_dir=cache_dir)

    @classmethod
    def smoke(cls, seed: int = 0, cache_dir: Optional[str] = None) -> "Workbench":
        return cls(WorkbenchProfile.smoke(), seed=seed, cache_dir=cache_dir)

    @classmethod
    def paper_scale(cls, seed: int = 0, cache_dir: Optional[str] = None) -> "Workbench":
        return cls(WorkbenchProfile.paper_scale(), seed=seed, cache_dir=cache_dir)

    # -- pipeline pieces -----------------------------------------------------
    def fitted_anchors(self):
        """Dataset-fitted anchors via k-means over training box sizes.

        Synthetic-scene boxes are much smaller than COCO's, so the darknet
        default anchors would assign almost everything to the coarse
        (stride-32) head; refitting is the standard YOLO recipe.
        """
        if self._anchors is None:
            sizes = []
            for _, truth in self.train_samples():
                for box in truth.boxes_xywh:
                    sizes.append((float(box[2]), float(box[3])))
            from .detection.anchors import kmeans_anchors

            self._anchors = tuple(kmeans_anchors(sizes, k=6, seed=0))
        return self._anchors

    def detector_config(self) -> TinyYoloConfig:
        return reduced_config(
            input_size=self.profile.image_size,
            width_multiplier=self.profile.width_multiplier,
            custom_anchors=self.fitted_anchors(),
        )

    def dataset_config(self) -> DatasetConfig:
        return DatasetConfig(image_size=self.profile.image_size,
                             seed=derive_seed(self.seed, "dataset"))

    def train_samples(self):
        if self._train_samples is None:
            self._train_samples = build_dataset(
                self.profile.train_images, self.dataset_config()
            )
        return self._train_samples

    def test_samples(self):
        if self._test_samples is None:
            config = DatasetConfig(
                image_size=self.profile.image_size,
                seed=derive_seed(self.seed, "dataset-test"),
            )
            self._test_samples = build_dataset(self.profile.test_images, config)
        return self._test_samples

    def _detector_cache_path(self) -> str:
        key = (
            f"detector_{self.profile.name}_{self.profile.image_size}"
            f"_w{self.profile.width_multiplier}_n{self.profile.train_images}"
            f"_e{self.profile.detector_epochs}_anch_aug_seed{self.seed}.npz"
        )
        return os.path.join(self.cache_dir, key)

    def _runtime_for(self, artifact_path: str) -> RuntimeConfig:
        """Resumable runtime policy whose checkpoint rides next to the
        artifact it is building (deleted once the artifact lands)."""
        return RuntimeConfig(checkpoint_path=artifact_path + ".ckpt.npz",
                             checkpoint_interval=10)

    def detector(self, force_retrain: bool = False) -> TinyYolo:
        """The fine-tuned victim detector (trained once, then cached).

        A corrupt cached checkpoint (truncated write, digest mismatch) is
        discarded and the detector retrained; training itself checkpoints
        per-epoch so a killed fine-tune resumes instead of restarting.
        """
        if self._detector is not None and not force_retrain:
            return self._detector
        model = TinyYolo(self.detector_config(), seed=derive_seed(self.seed, "det"))
        path = self._detector_cache_path()
        loaded = None
        if not force_retrain and os.path.exists(path):
            loaded = _load_cached(path, lambda p: load_module(model, p))
        if loaded is not None:
            model.eval()
        else:
            train_detector(
                model,
                self.train_samples(),
                DetectorTrainConfig(
                    epochs=self.profile.detector_epochs,
                    batch_size=self.profile.detector_batch,
                    seed=derive_seed(self.seed, "det-train"),
                ),
                runtime=RuntimeConfig(checkpoint_path=path + ".ckpt.npz",
                                      checkpoint_interval=1),
            )
            save_module(model, path)
        self._detector = model
        return model

    def scenario(self) -> AttackScenario:
        return AttackScenario(
            image_size=self.profile.image_size,
            style_seed=derive_seed(self.seed, "style"),
            sprite_seed=derive_seed(self.seed, "sprite"),
        )

    def attack_config(self, **overrides) -> AttackConfig:
        """The paper's default attack configuration at this profile's scale."""
        base = dict(
            steps=self.profile.attack_steps,
            warmup_steps=self.profile.attack_warmup,
            batch_frames=self.profile.attack_batch_frames,
            frame_pool=self.profile.frame_pool,
            seed=derive_seed(self.seed, "attack-cfg"),
        )
        base.update(overrides)
        return AttackConfig(**base)

    def train_attack(self, config: Optional[AttackConfig] = None,
                     use_cache: bool = True,
                     runtime: Optional[RuntimeConfig] = None) -> AttackResult:
        """Train (or load) the paper's decal attack.

        Corrupt cached artifacts are discarded and retrained. With
        ``use_cache`` the run checkpoints alongside its artifact by
        default, so a killed training resumes from the last snapshot;
        pass an explicit ``runtime`` to override the policy.
        """
        config = config or self.attack_config()
        path = cached_path(self.cache_dir, config, kind="attack")
        if use_cache and os.path.exists(path):
            cached = _load_cached(path, load_attack)
            if cached is not None:
                return cached
        if runtime is None and use_cache:
            runtime = self._runtime_for(path)
        result = train_patch_attack(self.detector(), self.scenario(), config,
                                    runtime=runtime)
        if use_cache:
            save_attack(result, path)
        return result

    def train_baseline(self, config: Optional[AttackConfig] = None,
                       use_cache: bool = True) -> SavaBaselineResult:
        """Train (or load) the Sava et al. [34] colored-patch baseline."""
        from .eot.sampler import ALL_TRICKS

        config = config or self.attack_config(
            consecutive=False, tricks=frozenset(ALL_TRICKS)
        )
        path = cached_path(self.cache_dir, config, kind="sava")
        if use_cache and os.path.exists(path):
            cached = _load_cached(path, load_baseline)
            if cached is not None:
                return cached
        result = train_sava_baseline(self.detector(), self.scenario(), config)
        if use_cache:
            save_baseline(result, path)
        return result

    def evaluate(
        self,
        artifact: Optional[Artifact],
        challenges: Sequence[str] = DEFAULT_CHALLENGES,
        physical: bool = True,
        target_class: Optional[str] = None,
        n_runs: Optional[int] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> Dict[str, ChallengeResult]:
        """Run the challenge protocol; ``artifact=None`` gives the
        'w/o attack' rows of the paper's tables. The target class defaults
        to the artifact's configured target. ``faults`` evaluates under a
        degraded frame stream (dropped/noisy/occluded frames)."""
        if target_class is None:
            config = getattr(artifact, "config", None)
            target_class = config.target_class if config is not None else "word"
        return evaluate_challenges(
            self.detector(),
            self.scenario(),
            artifact=artifact,
            challenges=challenges,
            target_class=target_class,
            physical=physical,
            n_runs=n_runs or self.profile.eval_runs,
            seed=derive_seed(self.seed, "eval"),
            faults=faults,
        )
