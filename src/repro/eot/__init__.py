"""`repro.eot` — differentiable Expectation Over Transformation."""

from .compose import EOTPipeline
from .sampler import ALL_TRICKS, EOTSampler, tricks_from_numbers
from .transforms import (
    TRICK_NAMES,
    TRICK_NUMBERS,
    TransformParams,
    brightness,
    gamma,
    perspective,
    resize,
    rotate,
)

__all__ = [
    "EOTPipeline",
    "EOTSampler",
    "ALL_TRICKS",
    "tricks_from_numbers",
    "TransformParams",
    "resize",
    "rotate",
    "brightness",
    "gamma",
    "perspective",
    "TRICK_NAMES",
    "TRICK_NUMBERS",
]
