"""Differentiable Expectation-Over-Transformation (EOT) transforms.

The paper's EOT pool (§IV-C) is five "tricks": (1) resize, (2) rotation,
(3) brightness, (4) gamma, (5) perspective. Each transform here is
differentiable with respect to the patch so the generator learns decals
robust to the sampled distortion distribution — the core of Athalye et
al.'s EOT [2] applied to road decals.

Geometric transforms are implemented as sampling grids fed to
:func:`repro.nn.functional.grid_sample`; photometric ones are direct tensor
arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = [
    "TransformParams",
    "resize",
    "rotate",
    "brightness",
    "gamma",
    "perspective",
    "print_response",
    "blur3",
    "TRICK_NAMES",
    "TRICK_NUMBERS",
]

#: Paper numbering of the five tricks (Table IV).
TRICK_NUMBERS = {1: "resize", 2: "rotation", 3: "brightness", 4: "gamma", 5: "perspective"}
TRICK_NAMES = {name: number for number, name in TRICK_NUMBERS.items()}


@dataclass
class TransformParams:
    """One sampled θ from the EOT distribution p_θ (Eq. 1)."""

    scale: float = 1.0            # resize factor
    angle_degrees: float = 0.0    # in-plane rotation
    brightness_delta: float = 0.0  # additive brightness
    gamma_value: float = 1.0      # non-linear brightness
    perspective_tilt: float = 0.0  # ground-plane foreshortening strength


def _identity_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    coords = np.linspace(-1.0, 1.0, size, dtype=np.float32)
    gy, gx = np.meshgrid(coords, coords, indexing="ij")
    return gy, gx


def resize(patch: Tensor, scale: float) -> Tensor:
    """Trick (1): scale the patch (bilinear); output keeps the input size by
    sampling a zoomed grid, so compositions stay shape-stable."""
    size = patch.shape[-1]
    gy, gx = _identity_grid(size)
    factor = 1.0 / max(scale, 1e-3)
    grid = np.stack([gx * factor, gy * factor], axis=-1)[None]
    grid = np.repeat(grid, patch.shape[0], axis=0)
    # Out-of-range samples read the background (white = 1.0 for decals).
    return F.grid_sample(patch, grid, padding_value=1.0)


def rotate(patch: Tensor, angle_degrees: float) -> Tensor:
    """Trick (2): in-plane rotation about the patch center."""
    size = patch.shape[-1]
    angle = math.radians(angle_degrees)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    gy, gx = _identity_grid(size)
    src_x = cos_a * gx - sin_a * gy
    src_y = sin_a * gx + cos_a * gy
    grid = np.stack([src_x, src_y], axis=-1)[None]
    grid = np.repeat(grid, patch.shape[0], axis=0)
    return F.grid_sample(patch, grid, padding_value=1.0)


def brightness(patch: Tensor, delta: float) -> Tensor:
    """Trick (3): additive (linear) brightness shift, clipped to [0, 1]."""
    return (patch + float(delta)).clip(0.0, 1.0)


def gamma(patch: Tensor, value: float) -> Tensor:
    """Trick (4): non-linear brightness ``p ** γ``.

    The paper notes gamma beats linear brightness because print/lighting
    response is non-linear; the clip keeps the base positive for the
    fractional power's gradient.
    """
    if value <= 0:
        raise ValueError(f"gamma must be positive, got {value}")
    return patch.clip(1e-4, 1.0) ** float(value)


def print_response(patch: Tensor, low: float = 0.06, high: float = 0.93,
                   response_gamma: float = 1.15) -> Tensor:
    """Differentiable printer response (gamut compression + ink gamma).

    Mirrors :class:`repro.scene.physical.PrintModel` for monochrome content:
    ink cannot reach pure black and paper is not pure white. Training the
    generator *through* this map is the reproduction's counterpart of the
    paper's printability-by-design argument (§II-B): the attack optimizes
    the decal as it will actually look after printing.
    """
    compressed = patch.clip(1e-4, 1.0) ** response_gamma
    return compressed * (high - low) + low


def blur3(image: Tensor) -> Tensor:
    """Differentiable 3×3 binomial blur applied per channel.

    Approximates the defocus + motion blur of the capture model so decal
    features that only exist at single-pixel scale are not rewarded during
    attack training.
    """
    kernel = np.asarray(
        [[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.float32
    ).reshape(1, 1, 3, 3) / 16.0
    n, c, h, w = image.shape
    flat = image.reshape((n * c, 1, h, w))
    blurred = F.conv2d(flat, Tensor(kernel), stride=1, padding=1)
    return blurred.reshape((n, c, h, w))


def perspective(patch: Tensor, tilt: float) -> Tensor:
    """Trick (5): ground-plane foreshortening.

    ``tilt`` ∈ [0, ~0.8) squeezes the far (top) edge of the patch, exactly
    the distortion a road decal undergoes as the camera approaches — the
    paper found this trick matters most (Table IV).
    """
    tilt = float(np.clip(tilt, 0.0, 0.95))
    size = patch.shape[-1]
    gy, gx = _identity_grid(size)
    # Rows near the top (gy=-1) come from a wider source span (squeeze) and
    # the vertical coordinate is compressed non-linearly.
    width_factor = 1.0 / (1.0 - tilt * (1.0 - (gy + 1.0) / 2.0))
    src_x = gx * width_factor
    src_y = gy
    grid = np.stack([src_x, src_y], axis=-1)[None]
    grid = np.repeat(grid, patch.shape[0], axis=0).astype(np.float32)
    return F.grid_sample(patch, grid, padding_value=1.0)
