"""Sampling distributions for EOT transformation parameters.

`sample` draws one θ ∼ p_θ per call. The ranges follow the paper's setting:
distances/speeds make the apparent decal size vary severalfold (resize),
each of the N decals is laid at its own orientation (rotation, Fig. 2),
lighting varies between garage and daylight (brightness/gamma), and the
approach foreshortens the decal (perspective).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Set

import numpy as np

from .transforms import TRICK_NAMES, TransformParams

__all__ = ["EOTSampler", "ALL_TRICKS", "tricks_from_numbers"]

ALL_TRICKS: FrozenSet[str] = frozenset(TRICK_NAMES)


def tricks_from_numbers(numbers: Iterable[int]) -> FrozenSet[str]:
    """Translate the paper's trick numbers (1)–(5) into names."""
    from .transforms import TRICK_NUMBERS

    names = set()
    for number in numbers:
        if number not in TRICK_NUMBERS:
            raise KeyError(f"unknown EOT trick number {number}; valid: 1-5")
        names.add(TRICK_NUMBERS[number])
    return frozenset(names)


@dataclass
class EOTSampler:
    """Draws transformation parameters for an enabled subset of tricks.

    Disabled tricks stay at their identity value, so the same pipeline code
    runs every row of the paper's Table IV ablation.
    """

    tricks: FrozenSet[str] = ALL_TRICKS
    scale_range: tuple = (0.5, 1.3)
    angle_range_degrees: tuple = (-180.0, 180.0)
    brightness_range: tuple = (-0.2, 0.2)
    gamma_range: tuple = (0.6, 1.7)
    tilt_range: tuple = (0.0, 0.65)

    def __post_init__(self) -> None:
        unknown = set(self.tricks) - ALL_TRICKS
        if unknown:
            raise ValueError(f"unknown EOT tricks: {sorted(unknown)}")
        self.tricks = frozenset(self.tricks)

    def sample(self, rng: np.random.Generator) -> TransformParams:
        params = TransformParams()
        if "resize" in self.tricks:
            params.scale = float(rng.uniform(*self.scale_range))
        if "rotation" in self.tricks:
            params.angle_degrees = float(rng.uniform(*self.angle_range_degrees))
        if "brightness" in self.tricks:
            params.brightness_delta = float(rng.uniform(*self.brightness_range))
        if "gamma" in self.tricks:
            # Sample log-uniform so brightening and darkening are symmetric.
            low, high = np.log(self.gamma_range[0]), np.log(self.gamma_range[1])
            params.gamma_value = float(np.exp(rng.uniform(low, high)))
        if "perspective" in self.tricks:
            params.perspective_tilt = float(rng.uniform(*self.tilt_range))
        return params
