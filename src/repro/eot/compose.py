"""The EOT pipeline A(·) of the paper's Eq. 1.

Applies a sampled transformation chain to a patch tensor in the fixed
order resize → rotation → brightness → gamma → perspective. The pipeline
also transforms the decal's alpha channel with the *geometric* subset of
the chain so that the cut-out silhouette moves with the ink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

import numpy as np

from ..nn import Tensor
from . import transforms as T
from .sampler import ALL_TRICKS, EOTSampler

__all__ = ["EOTPipeline"]


@dataclass
class EOTPipeline:
    """Samples θ ∼ p_θ and applies A(patch, θ).

    Parameters
    ----------
    sampler:
        Draws transformation parameters for the enabled trick subset.
    """

    sampler: EOTSampler

    @classmethod
    def with_tricks(cls, tricks: FrozenSet[str] = ALL_TRICKS, **ranges) -> "EOTPipeline":
        return cls(sampler=EOTSampler(tricks=frozenset(tricks), **ranges))

    def apply(self, patch: Tensor, params: T.TransformParams) -> Tensor:
        """Apply a fixed θ to a patch batch (N, C, k, k)."""
        out = patch
        if params.scale != 1.0:
            out = T.resize(out, params.scale)
        if params.angle_degrees != 0.0:
            out = T.rotate(out, params.angle_degrees)
        if params.brightness_delta != 0.0:
            out = T.brightness(out, params.brightness_delta)
        if params.gamma_value != 1.0:
            out = T.gamma(out, params.gamma_value)
        if params.perspective_tilt != 0.0:
            out = T.perspective(out, params.perspective_tilt)
        return out

    def apply_geometric(self, alpha: Tensor, params: T.TransformParams) -> Tensor:
        """Apply only the geometric part of θ (for the alpha channel).

        Photometric tricks must not fade the decal's silhouette, so alpha
        sees resize/rotation/perspective only. Out-of-range alpha samples
        read 0 (transparent), unlike the patch's white background.
        """
        from ..nn import functional as F
        import math

        out = alpha
        size = alpha.shape[-1]

        def warp(grid_fn):
            gy, gx = T._identity_grid(size)
            src_x, src_y = grid_fn(gx, gy)
            grid = np.stack([src_x, src_y], axis=-1)[None]
            grid = np.repeat(grid, out.shape[0], axis=0).astype(np.float32)
            return F.grid_sample(out, grid, padding_value=0.0)

        if params.scale != 1.0:
            factor = 1.0 / max(params.scale, 1e-3)
            out = warp(lambda gx, gy: (gx * factor, gy * factor))
        if params.angle_degrees != 0.0:
            angle = math.radians(params.angle_degrees)
            cos_a, sin_a = math.cos(angle), math.sin(angle)
            out = warp(lambda gx, gy: (cos_a * gx - sin_a * gy, sin_a * gx + cos_a * gy))
        if params.perspective_tilt != 0.0:
            tilt = float(np.clip(params.perspective_tilt, 0.0, 0.95))
            out = warp(
                lambda gx, gy: (gx / (1.0 - tilt * (1.0 - (gy + 1.0) / 2.0)), gy)
            )
        return out

    def sample_and_apply(
        self,
        patch: Tensor,
        rng: np.random.Generator,
        alpha: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Optional[Tensor], T.TransformParams]:
        """Draw one θ and transform patch (and alpha if given)."""
        params = self.sampler.sample(rng)
        transformed = self.apply(patch, params)
        transformed_alpha = (
            self.apply_geometric(alpha, params) if alpha is not None else None
        )
        return transformed, transformed_alpha, params
