"""Detection confirmation — the AV-stack rule behind the paper's CWC.

The paper's key observation is that "an object is confirmed by AVs only
after the object is detected for consecutive frames" (§I), which is why a
patch that fools single frames does not actually fool a car and why CWC
demands three consecutive wrong-class frames.

This module implements that confirmation logic as a small multi-object
tracker: detections are associated across frames by IoU, each track keeps
a per-class consecutive-hit counter, and a track becomes *confirmed* for a
class once the counter reaches the threshold. The planner
(:mod:`repro.av.planner`) only reacts to confirmed objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..detection.boxes import iou_matrix
from ..detection.decode import Detection

__all__ = ["Track", "ConfirmedObject", "DetectionConfirmer"]

#: Matching the paper: three consecutive frames confirm an object.
DEFAULT_CONFIRM_FRAMES = 3


@dataclass
class Track:
    """One tracked object hypothesis."""

    track_id: int
    box_xyxy: np.ndarray
    class_id: int
    score: float
    consecutive_hits: int = 1
    missed_frames: int = 0
    confirmed: bool = False
    coasting: bool = False

    def update(self, detection: Detection) -> None:
        """Consume a matched detection for the current frame."""
        self.box_xyxy = detection.box_xyxy
        self.score = detection.score
        self.missed_frames = 0
        self.coasting = False
        if detection.class_id == self.class_id:
            self.consecutive_hits += 1
        else:
            # Class flip restarts the consecutive count under the new class.
            self.class_id = detection.class_id
            self.consecutive_hits = 1
            self.confirmed = False

    def mark_missed(self) -> None:
        self.missed_frames += 1
        self.consecutive_hits = 0
        self.coasting = False

    def coast(self) -> None:
        """Ride through a sensor gap (dropped frame).

        Unlike :meth:`mark_missed`, the frame carried no evidence either
        way — the object was not *seen missing*, the sensor was blind — so
        the consecutive-hit streak is preserved.
        """
        self.missed_frames += 1
        self.coasting = True


@dataclass(frozen=True)
class ConfirmedObject:
    """A confirmation event exposed to the planner."""

    track_id: int
    class_id: int
    box_xyxy: np.ndarray
    score: float


class DetectionConfirmer:
    """IoU tracker with per-class consecutive-frame confirmation.

    Parameters
    ----------
    confirm_frames:
        Consecutive same-class detections required before an object is
        confirmed (the paper's rule uses 3).
    iou_threshold:
        Minimum IoU for frame-to-frame association.
    max_missed:
        Frames a track may go undetected before it is dropped.
    coast_frames:
        Consecutive sensor-gap frames (dropped frames, signalled via
        ``update(..., sensor_fault=True)``) a track may coast through:
        its consecutive-hit streak is preserved and, if already
        confirmed, it keeps being reported at its last-seen box. Gaps
        longer than this behave like ordinary misses.
    """

    def __init__(self, confirm_frames: int = DEFAULT_CONFIRM_FRAMES,
                 iou_threshold: float = 0.3, max_missed: int = 2,
                 coast_frames: int = 2):
        if confirm_frames < 1:
            raise ValueError("confirm_frames must be >= 1")
        if coast_frames < 0:
            raise ValueError("coast_frames must be >= 0")
        self.confirm_frames = confirm_frames
        self.iou_threshold = iou_threshold
        self.max_missed = max_missed
        self.coast_frames = coast_frames
        self.tracks: List[Track] = []
        self._next_id = 0
        self.frame_index = 0

    def reset(self) -> None:
        self.tracks = []
        self._next_id = 0
        self.frame_index = 0

    # ------------------------------------------------------------------
    def update(self, detections: Optional[Sequence[Detection]],
               sensor_fault: bool = False) -> List[ConfirmedObject]:
        """Advance one frame; returns objects confirmed as of this frame.

        ``sensor_fault=True`` (or ``detections=None``) marks a frame the
        sensor never delivered: every track *coasts* — keeps its
        consecutive-hit streak, ages its box — for up to ``coast_frames``
        consecutive gaps, instead of being treated as seen-and-absent.
        """
        self.frame_index += 1
        if detections is None:
            sensor_fault = True
            detections = []
        if sensor_fault:
            for track in self.tracks:
                if track.missed_frames < self.coast_frames:
                    track.coast()
                else:
                    track.mark_missed()
            self.tracks = [t for t in self.tracks
                           if t.missed_frames <= max(self.max_missed,
                                                     self.coast_frames)]
            return self._confirmed_objects()
        unmatched = list(range(len(detections)))

        if self.tracks and detections:
            track_boxes = np.stack([t.box_xyxy for t in self.tracks])
            det_boxes = np.stack([d.box_xyxy for d in detections])
            ious = iou_matrix(track_boxes, det_boxes)
            # Greedy association in descending IoU order. Only pairs at or
            # above the association threshold can ever match, so filter
            # first and stable-sort those: ties keep the (track-major,
            # detection-minor) order the old full pair sort produced.
            flat = ious.ravel()
            candidates = np.nonzero(flat >= self.iou_threshold)[0]
            order = candidates[np.argsort(-flat[candidates], kind="stable")]
            n_det = len(detections)
            used_tracks: set = set()
            used_dets: set = set()
            for pair in order.tolist():
                t_index, d_index = divmod(pair, n_det)
                if t_index in used_tracks or d_index in used_dets:
                    continue
                self.tracks[t_index].update(detections[d_index])
                used_tracks.add(t_index)
                used_dets.add(d_index)
            unmatched = [i for i in range(len(detections)) if i not in used_dets]
            for t_index, track in enumerate(self.tracks):
                if t_index not in used_tracks:
                    track.mark_missed()
        else:
            for track in self.tracks:
                track.mark_missed()

        for d_index in unmatched:
            detection = detections[d_index]
            self.tracks.append(
                Track(
                    track_id=self._next_id,
                    box_xyxy=detection.box_xyxy,
                    class_id=detection.class_id,
                    score=detection.score,
                )
            )
            self._next_id += 1

        self.tracks = [t for t in self.tracks if t.missed_frames <= self.max_missed]
        return self._confirmed_objects()

    def _confirmed_objects(self) -> List[ConfirmedObject]:
        """Confirmation events for the current frame.

        A confirmed track is reported while freshly detected, and also
        while *coasting* through a sensor gap — the planner keeps acting
        on its last-seen box rather than forgetting a confirmed object
        because one frame never arrived.
        """
        confirmed: List[ConfirmedObject] = []
        for track in self.tracks:
            if track.consecutive_hits >= self.confirm_frames:
                track.confirmed = True
            visible = track.missed_frames == 0 or (
                track.coasting and track.missed_frames <= self.coast_frames
            )
            if track.confirmed and visible:
                confirmed.append(
                    ConfirmedObject(
                        track_id=track.track_id,
                        class_id=track.class_id,
                        box_xyxy=track.box_xyxy,
                        score=track.score,
                    )
                )
        return confirmed
