"""A rule-based AV reaction layer.

The paper's conclusion warns that misread road markings "can lead to
incorrect judgments ... potentially resulting in erroneous responses".
This module makes that concrete: a small deterministic planner maps
*confirmed* objects (from :class:`repro.av.confirmation.DetectionConfirmer`)
to driving actions, so the end-to-end effect of a decal attack — not just
the detector flip — can be measured.

Rules (per frame, highest priority first):

* confirmed **person** or **bicycle** in the driving corridor → ``BRAKE``;
* confirmed **car** close ahead → ``SLOW``;
* confirmed **mark** (lane arrow) → ``FOLLOW_ARROW`` (lane guidance);
* confirmed **word** (painted text, e.g. "SLOW") → ``SLOW``;
* nothing confirmed → ``CRUISE``.

A successful wrong-class attack (arrow → word) therefore changes the
vehicle's behaviour from lane guidance to an unnecessary slow-down — or,
with other targets, worse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..detection.config import CLASS_NAMES
from .confirmation import ConfirmedObject

__all__ = ["Action", "PlannerDecision", "RulePlanner"]


class Action(enum.Enum):
    """Discrete driving actions of the rule planner."""

    CRUISE = "cruise"
    SLOW = "slow"
    BRAKE = "brake"
    FOLLOW_ARROW = "follow_arrow"


@dataclass(frozen=True)
class PlannerDecision:
    """The planner's per-frame output with its triggering object (if any)."""

    action: Action
    trigger: Optional[ConfirmedObject] = None

    @property
    def reason(self) -> str:
        if self.trigger is None:
            return "no confirmed objects"
        return f"{CLASS_NAMES[self.trigger.class_id]} confirmed (track {self.trigger.track_id})"


class RulePlanner:
    """Maps confirmed objects to actions inside a driving corridor.

    Parameters
    ----------
    image_size:
        Frame resolution; the corridor is the central band of the image.
    corridor_fraction:
        Width of the corridor as a fraction of the frame.
    near_fraction:
        Objects whose box bottom is below this image fraction count as
        "close ahead".
    """

    def __init__(self, image_size: int, corridor_fraction: float = 0.5,
                 near_fraction: float = 0.55):
        self.image_size = image_size
        self.corridor_fraction = corridor_fraction
        self.near_fraction = near_fraction

    def _in_corridor(self, box_xyxy: np.ndarray) -> bool:
        center_x = (box_xyxy[0] + box_xyxy[2]) / 2.0
        half = self.corridor_fraction * self.image_size / 2.0
        return abs(center_x - self.image_size / 2.0) <= half

    def _near(self, box_xyxy: np.ndarray) -> bool:
        return box_xyxy[3] >= self.near_fraction * self.image_size

    def decide(self, confirmed: Sequence[ConfirmedObject]) -> PlannerDecision:
        """One planning step over this frame's confirmed objects."""
        person = CLASS_NAMES.index("person")
        bicycle = CLASS_NAMES.index("bicycle")
        car = CLASS_NAMES.index("car")
        mark = CLASS_NAMES.index("mark")
        word = CLASS_NAMES.index("word")

        for obj in confirmed:
            if obj.class_id in (person, bicycle) and self._in_corridor(obj.box_xyxy):
                return PlannerDecision(Action.BRAKE, obj)
        for obj in confirmed:
            if obj.class_id == car and self._in_corridor(obj.box_xyxy) and self._near(obj.box_xyxy):
                return PlannerDecision(Action.SLOW, obj)
        for obj in confirmed:
            if obj.class_id == mark and self._in_corridor(obj.box_xyxy):
                return PlannerDecision(Action.FOLLOW_ARROW, obj)
        for obj in confirmed:
            if obj.class_id == word and self._in_corridor(obj.box_xyxy):
                return PlannerDecision(Action.SLOW, obj)
        return PlannerDecision(Action.CRUISE)

    def drive(self, confirmed_per_frame: Sequence[Sequence[ConfirmedObject]]
              ) -> List[PlannerDecision]:
        """Run the planner over a whole video's confirmation stream."""
        return [self.decide(confirmed) for confirmed in confirmed_per_frame]
