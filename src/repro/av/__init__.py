"""`repro.av` — the AV reaction substrate behind the paper's CWC metric.

The paper's threat model assumes a car only acts on detections confirmed
over consecutive frames; this package implements that confirmation rule,
a rule-based planner, and the glue pipeline so attacks can be evaluated by
their *behavioural* effect on the vehicle.
"""

from .confirmation import ConfirmedObject, DetectionConfirmer, Track
from .pipeline import AvPipeline, FrameTrace
from .planner import Action, PlannerDecision, RulePlanner

__all__ = [
    "DetectionConfirmer",
    "Track",
    "ConfirmedObject",
    "RulePlanner",
    "Action",
    "PlannerDecision",
    "AvPipeline",
    "FrameTrace",
]
