"""End-to-end AV perception pipeline: detector → confirmation → planner.

Glues the victim detector, the consecutive-frame confirmation rule, and
the rule planner into one object that consumes raw frames — the system the
paper's threat model actually targets. Running an attack video through it
shows the *behavioural* consequence of the decals (an extension beyond the
paper's PWC/CWC tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..detection.decode import Detection, batched_detections, detections_from_outputs
from ..detection.model import TinyYolo
from ..nn import Tensor, no_grad
from ..nn.quant import resolve_inference_model
from ..obs import Run, span_scope
from ..perf import PerfRecorder, stage_scope
from ..runtime import FaultSchedule
from .confirmation import ConfirmedObject, DetectionConfirmer
from .planner import Action, PlannerDecision, RulePlanner

__all__ = ["FrameTrace", "AvPipeline", "DEFAULT_BATCH_SIZE"]

#: Frames stacked per detector forward pass in :meth:`AvPipeline.run`.
DEFAULT_BATCH_SIZE = 8


@dataclass
class FrameTrace:
    """Everything the pipeline produced for one frame.

    ``sensor_fault`` marks a frame that never reached the detector
    (dropped by the camera feed); detections are then empty and the
    confirmation layer coasted on its tracks.
    """

    detections: List[Detection]
    confirmed: List[ConfirmedObject]
    decision: PlannerDecision
    sensor_fault: bool = False


class AvPipeline:
    """The full perception-to-action stack under attack.

    Parameters
    ----------
    detector:
        A (fine-tuned) :class:`~repro.detection.model.TinyYolo`.
    confirm_frames:
        Consecutive frames required to confirm (paper: 3).
    conf_threshold:
        Detector confidence threshold.
    lowered:
        Compile the frozen detector through the eval-time lowering pass
        (``TinyYolo.lower()``, DESIGN.md §13) and run inference through
        the lowered executor. ``self.detector`` stays the source model
        (layer profiling, checkpoint reloads); detection forwards use
        ``self.infer_model``. Default off — trainers and attack loops
        need the differentiable graph.
    precision:
        ``"fp"`` (default) or ``"int8"``. Int8 compiles the quantized
        inference plan (DESIGN.md §15) — approximate within the bench
        accuracy budget, not bit-exact — and requires ``calibration``
        (a :class:`~repro.nn.quant.CalibrationResult`); ``lowered`` is
        implied by int8.
    """

    def __init__(self, detector: TinyYolo, confirm_frames: int = 3,
                 conf_threshold: float = 0.3, lowered: bool = False,
                 precision: str = "fp", calibration=None):
        # The pipeline owns the detector as a frozen perception component:
        # inference must use batch-norm running statistics. In training
        # mode, per-batch statistics made detections depend on how frames
        # were batched and mutated the running buffers on every "inference"
        # frame — both inference-path bugs.
        self.detector = detector.eval()
        self.lowered = lowered
        self.precision = precision
        self.infer_model = resolve_inference_model(
            detector, precision=precision, lowered=lowered,
            calibration=calibration)
        self.conf_threshold = conf_threshold
        self.confirmer = DetectionConfirmer(confirm_frames=confirm_frames)
        self.planner = RulePlanner(detector.config.input_size)

    def reset(self) -> None:
        self.confirmer.reset()

    def step(self, frame: Optional[np.ndarray]) -> FrameTrace:
        """Process one CHW frame; ``None`` is a dropped (never-arrived)
        frame — the confirmation layer coasts instead of resetting."""
        if frame is None:
            confirmed = self.confirmer.update(None, sensor_fault=True)
            decision = self.planner.decide(confirmed)
            return FrameTrace(detections=[], confirmed=confirmed,
                              decision=decision, sensor_fault=True)
        with no_grad():
            outputs = self.infer_model(Tensor(frame[None]))
        detections = detections_from_outputs(
            outputs, self.detector.config, conf_threshold=self.conf_threshold
        )[0]
        confirmed = self.confirmer.update(detections)
        decision = self.planner.decide(confirmed)
        return FrameTrace(detections=detections, confirmed=confirmed,
                          decision=decision)

    def run(self, frames: Sequence[Optional[np.ndarray]],
            faults: Optional[FaultSchedule] = None,
            rng: Optional[np.random.Generator] = None,
            batch_size: int = DEFAULT_BATCH_SIZE,
            perf: Optional[PerfRecorder] = None,
            obs: Optional[Run] = None) -> List[FrameTrace]:
        """Process a whole video (resets state first).

        ``faults`` degrades the stream first — dropped frames reach the
        confirmation layer as ``None``, noisy/occluded frames as corrupted
        images — measuring the stack's behaviour under imperfect sensing.

        Frames are forwarded through the detector in batches of
        ``batch_size`` (detection is per-frame independent), while the
        confirmation tracker and planner still step frame by frame in
        stream order — the traces are identical to a per-frame
        :meth:`step` loop (parity-tested), just measured faster.
        ``batch_size=1`` recovers one forward pass per frame. ``perf``
        collects per-stage timings (forward / decode / nms / confirm).

        ``obs`` attaches the run to a telemetry run (DESIGN.md §9): one
        ``pipeline.run`` span with a ``detect.batched`` child, plus
        per-stage timings published into the run's metrics registry (a
        private recorder is created when ``perf`` is not given).
        """
        self.reset()
        local_perf = perf
        if obs is not None and local_perf is None:
            local_perf = PerfRecorder()
        with span_scope(obs, "pipeline.run", batch_size=batch_size,
                        faults=faults is not None):
            stream: Sequence[Optional[np.ndarray]] = list(frames)
            if faults is not None:
                stream = faults.degrade_stream(stream, rng)
            if obs is not None:
                obs.tracer.add("items", len(stream))
            per_frame = batched_detections(
                self.infer_model, stream, conf_threshold=self.conf_threshold,
                batch_size=batch_size, perf=local_perf, obs=obs,
            )
            traces: List[FrameTrace] = []
            with stage_scope(local_perf, "confirm", items=len(stream)):
                for detections in per_frame:
                    if detections is None:
                        confirmed = self.confirmer.update(None, sensor_fault=True)
                        decision = self.planner.decide(confirmed)
                        traces.append(FrameTrace(detections=[], confirmed=confirmed,
                                                 decision=decision, sensor_fault=True))
                        continue
                    confirmed = self.confirmer.update(detections)
                    decision = self.planner.decide(confirmed)
                    traces.append(FrameTrace(detections=detections,
                                             confirmed=confirmed, decision=decision))
        if obs is not None:
            # Publish the private recorder only: a caller-owned recorder may
            # accumulate across videos and would double-count on re-publish.
            if perf is None:
                local_perf.publish(obs.metrics, prefix="perf.pipeline")
            obs.metrics.counter("pipeline.frames").inc(len(stream))
            obs.metrics.counter("pipeline.runs").inc()
        return traces

    # ------------------------------------------------------------------
    @staticmethod
    def action_counts(traces: Sequence[FrameTrace]) -> dict:
        """Histogram of planner actions over a run."""
        counts = {action: 0 for action in Action}
        for trace in traces:
            counts[trace.decision.action] += 1
        return counts
