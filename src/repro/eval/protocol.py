"""The paper's evaluation protocol (§IV).

For a challenge (rotation / speed / angle setting) the protocol renders the
corresponding video — optionally with deployed decals and the physical
degradation model — runs the detector on every frame, classifies the victim
object per frame, and reports PWC and CWC. Every number is averaged over
three seeded runs, as the paper does ("we conduct three runs and average
the results"); CWC is reported as the majority outcome of the runs.

A :class:`~repro.runtime.FaultSchedule` evaluates the same protocol under
an imperfect frame stream (dropped / noisy / occluded frames). Dropped
frames degrade gracefully: the per-frame outcome *coasts* — carries the
last observed classification forward for up to ``max_coast`` consecutive
gaps — mirroring how the hardened AV confirmation tracker
(:mod:`repro.av.confirmation`) rides through sensor gaps instead of
resetting its consecutive-frame count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Protocol, Sequence, Union, runtime_checkable

import numpy as np

from ..detection.config import CLASS_NAMES
from ..detection.decode import batched_detections
from ..detection.model import TinyYolo
from ..nn.quant import resolve_inference_model
from ..obs import Run, span_scope
from ..perf import PerfRecorder
from ..runtime import FaultSchedule
from ..scene.trajectory import CHALLENGES, challenge_trajectory
from ..scene.video import AttackScenario, DeployedDecals, render_run
from ..utils.rng import derive_seed
from .metrics import FrameOutcome, VideoResult, classify_frame, score_video

__all__ = [
    "ChallengeResult",
    "Deployable",
    "run_challenge",
    "evaluate_challenges",
    "DEFAULT_CHALLENGES",
    "SPEED_ANGLE_CHALLENGES",
    "DEFAULT_EVAL_BATCH_SIZE",
]

#: All eight paper challenges (Table I columns).
DEFAULT_CHALLENGES = tuple(CHALLENGES)
#: The six-column subset used by the ablation tables (III-VI).
SPEED_ANGLE_CHALLENGES = (
    "speed/slow", "speed/normal", "speed/fast",
    "angle/-15", "angle/0", "angle/+15",
)

#: Frames an outcome may coast over consecutive dropped frames before the
#: victim counts as missed (matches the confirmation tracker's tolerance).
DEFAULT_MAX_COAST = 2

#: Frames stacked per detector forward pass (detection is per-frame
#: independent, so batching only changes wall-clock, not outcomes).
DEFAULT_EVAL_BATCH_SIZE = 8


@runtime_checkable
class Deployable(Protocol):
    """Anything that can materialize decals for scene rendering.

    Satisfied structurally by :class:`~repro.attack.trainer.AttackResult`
    and :class:`~repro.attack.baseline_sava.SavaBaselineResult`.
    """

    def deploy(self, physical: bool = False,
               rng: Optional[np.random.Generator] = None) -> DeployedDecals:
        ...


@dataclass
class ChallengeResult:
    """Averaged outcome of one challenge."""

    challenge: str
    pwc: float
    cwc: bool
    runs: List[VideoResult] = field(default_factory=list)

    def cell(self) -> str:
        """Paper-style table cell, e.g. ``'78% / ✓'``."""
        mark = "Y" if self.cwc else "X"
        return f"{self.pwc:.0f}% / {mark}"


def run_challenge(
    model: TinyYolo,
    scenario: AttackScenario,
    challenge: str,
    artifact: Optional[Deployable] = None,
    target_class: str = "word",
    physical: bool = False,
    n_runs: int = 3,
    seed: int = 0,
    conf_threshold: float = 0.3,
    faults: Optional[FaultSchedule] = None,
    max_coast: int = DEFAULT_MAX_COAST,
    batch_size: int = DEFAULT_EVAL_BATCH_SIZE,
    perf: Optional[PerfRecorder] = None,
    obs: Optional[Run] = None,
    lowered: bool = False,
    precision: str = "fp",
    calibration=None,
) -> ChallengeResult:
    """Evaluate one challenge, averaging PWC over ``n_runs`` seeded runs.

    ``lowered`` compiles the frozen detector through the eval-time
    lowering pass (DESIGN.md §13) and runs all detection forwards through
    the lowered executor — same outcomes within the parity tolerance,
    measurably faster. Default off so attack loops that re-enter training
    mode keep the differentiable graph.

    ``precision="int8"`` runs detection through the quantized inference
    plan instead (DESIGN.md §15; requires ``calibration``, a
    :class:`~repro.nn.quant.CalibrationResult`). Unlike lowering this is
    an accuracy-vs-speed point: PWC/CWC may differ from the fp oracle
    within the budget reported by ``bench_hotpath.py``.

    ``faults`` degrades the rendered frame stream before the detector sees
    it; the schedule is re-seeded per run (derived from ``seed``) so
    results stay reproducible and averaged over the same three runs as the
    clean protocol.

    Frames are forwarded through the detector ``batch_size`` at a time
    (the degradation draws and the per-frame coasting walk stay in strict
    stream order, so outcomes match the historical frame-by-frame loop);
    ``perf`` collects per-stage hot-path timings across all runs.

    ``obs`` attaches the challenge to a telemetry run (DESIGN.md §9): an
    ``eval.challenge`` span with per-run render/detect/score children,
    PWC gauges, and hot-path timings published into the run's metrics
    registry. ``obs=None`` is free.
    """
    if challenge not in CHALLENGES:
        raise KeyError(f"unknown challenge {challenge!r}")
    if artifact is not None and not isinstance(artifact, Deployable):
        raise TypeError(
            f"artifact {type(artifact).__name__!r} does not satisfy the "
            f"Deployable protocol (needs .deploy(physical, rng))"
        )
    target_label = CLASS_NAMES.index(target_class)
    poses = challenge_trajectory(challenge)
    # Evaluation is inference: batch-norm must read running statistics, or
    # per-frame outcomes would depend on how frames are batched (and every
    # frame would corrupt the running buffers). Restored on exit so a
    # mid-training caller keeps its mode.
    was_training = model.training
    model.eval()
    infer_model = resolve_inference_model(model, precision=precision,
                                          lowered=lowered,
                                          calibration=calibration)

    local_perf = perf
    if obs is not None and local_perf is None:
        local_perf = PerfRecorder()

    try:
        with span_scope(obs, "eval.challenge", challenge=challenge,
                        physical=physical, n_runs=n_runs, seed=seed):
            runs: List[VideoResult] = []
            for run_index in range(n_runs):
                rng = np.random.default_rng(derive_seed(seed, "eval", challenge, run_index))
                with span_scope(obs, "eval.render", run_index=run_index):
                    decals: Optional[DeployedDecals] = None
                    if artifact is not None:
                        decals = artifact.deploy(physical=physical, rng=rng)
                    frames = render_run(scenario, poses, rng, decals=decals,
                                        physical=physical)
                    if obs is not None:
                        obs.tracer.add("items", len(frames))

                fault_events = None
                fault_rng = None
                if faults is not None:
                    fault_rng = np.random.default_rng(
                        derive_seed(seed, "faults", challenge, run_index))
                    fault_events = faults.sample(len(frames), fault_rng)

                # Degrade the stream in strict frame order first (the fault RNG is
                # consumed per frame, so ordering is part of reproducibility), then
                # batch all surviving frames through the detector.
                images: List[Optional[np.ndarray]] = []
                for index, frame in enumerate(frames):
                    image = frame.image
                    if fault_events is not None:
                        image = faults.apply(image, fault_events[index], fault_rng)
                    images.append(image)
                detections_per_frame = batched_detections(
                    infer_model, images, conf_threshold=conf_threshold,
                    batch_size=batch_size, perf=local_perf, obs=obs,
                )

                with span_scope(obs, "eval.score", run_index=run_index):
                    outcomes: List[FrameOutcome] = []
                    last_seen: Optional[FrameOutcome] = None
                    coast_run = 0
                    for frame, detections in zip(frames, detections_per_frame):
                        if detections is None:
                            # Dropped frame: coast on the last observation for a
                            # bounded gap, then concede the victim as missed.
                            if last_seen is not None and coast_run < max_coast:
                                coast_run += 1
                                outcomes.append(replace(last_seen, coasted=True))
                            else:
                                outcomes.append(FrameOutcome(predicted_class=None,
                                                             coasted=True))
                            continue
                        coast_run = 0
                        outcome = classify_frame(detections, frame.target_box_xywh)
                        last_seen = outcome
                        outcomes.append(outcome)
                    runs.append(score_video(outcomes, target_label))

    finally:
        if was_training:
            model.train()

    mean_pwc = float(np.mean([r.pwc for r in runs]))
    majority_cwc = sum(r.cwc for r in runs) * 2 > len(runs)
    if obs is not None:
        obs.metrics.gauge(f"eval.{challenge}.pwc").set(mean_pwc)
        obs.metrics.gauge(f"eval.{challenge}.cwc").set(float(majority_cwc))
        obs.metrics.counter("eval.challenges_run").inc()
        obs.metrics.counter("eval.videos_scored").inc(len(runs))
        # Publish the private recorder only: a caller-owned one may span
        # several challenges and would double-count on re-publish.
        if perf is None:
            local_perf.publish(obs.metrics, prefix="perf.eval")
    return ChallengeResult(challenge=challenge, pwc=mean_pwc, cwc=majority_cwc, runs=runs)


def evaluate_challenges(
    model: TinyYolo,
    scenario: AttackScenario,
    artifact: Optional[Deployable] = None,
    challenges: Sequence[str] = DEFAULT_CHALLENGES,
    target_class: str = "word",
    physical: bool = False,
    n_runs: int = 3,
    seed: int = 0,
    faults: Optional[FaultSchedule] = None,
    batch_size: int = DEFAULT_EVAL_BATCH_SIZE,
    perf: Optional[PerfRecorder] = None,
    obs: Optional[Run] = None,
    lowered: bool = False,
    precision: str = "fp",
    calibration=None,
) -> Dict[str, ChallengeResult]:
    """Run a set of challenges; returns challenge → result."""
    return {
        challenge: run_challenge(
            model, scenario, challenge, artifact=artifact,
            target_class=target_class, physical=physical,
            n_runs=n_runs, seed=seed, faults=faults,
            batch_size=batch_size, perf=perf, obs=obs, lowered=lowered,
            precision=precision, calibration=calibration,
        )
        for challenge in challenges
    }
