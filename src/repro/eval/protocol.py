"""The paper's evaluation protocol (§IV).

For a challenge (rotation / speed / angle setting) the protocol renders the
corresponding video — optionally with deployed decals and the physical
degradation model — runs the detector on every frame, classifies the victim
object per frame, and reports PWC and CWC. Every number is averaged over
three seeded runs, as the paper does ("we conduct three runs and average
the results"); CWC is reported as the majority outcome of the runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..detection.config import CLASS_NAMES
from ..detection.decode import detections_from_outputs
from ..detection.model import TinyYolo
from ..nn import Tensor, no_grad
from ..scene.trajectory import CHALLENGES, challenge_trajectory
from ..scene.video import AttackScenario, DeployedDecals, render_run
from ..utils.rng import derive_seed
from .metrics import FrameOutcome, VideoResult, classify_frame, score_video

__all__ = [
    "ChallengeResult",
    "Deployable",
    "run_challenge",
    "evaluate_challenges",
    "DEFAULT_CHALLENGES",
    "SPEED_ANGLE_CHALLENGES",
]

#: All eight paper challenges (Table I columns).
DEFAULT_CHALLENGES = tuple(CHALLENGES)
#: The six-column subset used by the ablation tables (III-VI).
SPEED_ANGLE_CHALLENGES = (
    "speed/slow", "speed/normal", "speed/fast",
    "angle/-15", "angle/0", "angle/+15",
)

#: Anything with ``.deploy(physical, rng) -> DeployedDecals``.
Deployable = object


@dataclass
class ChallengeResult:
    """Averaged outcome of one challenge."""

    challenge: str
    pwc: float
    cwc: bool
    runs: List[VideoResult] = field(default_factory=list)

    def cell(self) -> str:
        """Paper-style table cell, e.g. ``'78% / ✓'``."""
        mark = "Y" if self.cwc else "X"
        return f"{self.pwc:.0f}% / {mark}"


def run_challenge(
    model: TinyYolo,
    scenario: AttackScenario,
    challenge: str,
    artifact: Optional[Deployable] = None,
    target_class: str = "word",
    physical: bool = False,
    n_runs: int = 3,
    seed: int = 0,
    conf_threshold: float = 0.3,
) -> ChallengeResult:
    """Evaluate one challenge, averaging PWC over ``n_runs`` seeded runs."""
    if challenge not in CHALLENGES:
        raise KeyError(f"unknown challenge {challenge!r}")
    target_label = CLASS_NAMES.index(target_class)
    poses = challenge_trajectory(challenge)

    runs: List[VideoResult] = []
    for run_index in range(n_runs):
        rng = np.random.default_rng(derive_seed(seed, "eval", challenge, run_index))
        decals: Optional[DeployedDecals] = None
        if artifact is not None:
            decals = artifact.deploy(physical=physical, rng=rng)
        frames = render_run(scenario, poses, rng, decals=decals, physical=physical)
        outcomes: List[FrameOutcome] = []
        with no_grad():
            for frame in frames:
                outputs = model(Tensor(frame.image[None]))
                detections = detections_from_outputs(
                    outputs, model.config, conf_threshold=conf_threshold
                )[0]
                outcomes.append(
                    classify_frame(detections, frame.target_box_xywh)
                )
        runs.append(score_video(outcomes, target_label))

    mean_pwc = float(np.mean([r.pwc for r in runs]))
    majority_cwc = sum(r.cwc for r in runs) * 2 > len(runs)
    return ChallengeResult(challenge=challenge, pwc=mean_pwc, cwc=majority_cwc, runs=runs)


def evaluate_challenges(
    model: TinyYolo,
    scenario: AttackScenario,
    artifact: Optional[Deployable] = None,
    challenges: Sequence[str] = DEFAULT_CHALLENGES,
    target_class: str = "word",
    physical: bool = False,
    n_runs: int = 3,
    seed: int = 0,
) -> Dict[str, ChallengeResult]:
    """Run a set of challenges; returns challenge → result."""
    return {
        challenge: run_challenge(
            model, scenario, challenge, artifact=artifact,
            target_class=target_class, physical=physical,
            n_runs=n_runs, seed=seed,
        )
        for challenge in challenges
    }
