"""The paper's attack-success metrics: PWC and CWC (§IV, Eq. 3).

* **PWC** (Percentage of Wrong-Class): the fraction of video frames in
  which the victim object is classified as the attacker's target class.
* **CWC** (Continuous detection with Wrong-Class): whether the wrong class
  is produced on **three consecutive frames** — the paper's model of when
  an AV actually acts on a detection.

Frame classification: among detections overlapping the victim object's
ground-truth box (IoU ≥ ``iou_threshold``), the highest-scoring one defines
the frame's class; frames with no overlapping detection are 'missed'.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..detection.boxes import iou_matrix, xywh_to_xyxy
from ..detection.decode import Detection

__all__ = [
    "FrameOutcome",
    "classify_frame",
    "pwc",
    "cwc",
    "missed_rate",
    "VideoResult",
    "score_video",
]

#: Number of consecutive wrong-class frames that triggers CWC (§IV).
CWC_RUN_LENGTH = 3


@dataclass
class FrameOutcome:
    """Per-frame classification of the victim object.

    ``coasted`` marks an outcome carried forward over a sensor gap
    (dropped frame) rather than observed — the graceful-degradation path
    of :func:`repro.eval.protocol.run_challenge` under a
    :class:`~repro.runtime.FaultSchedule`.
    """

    predicted_class: Optional[int]  # None = object not detected at all
    score: float = 0.0
    coasted: bool = False


def classify_frame(
    detections: Sequence[Detection],
    target_box_xywh: Optional[np.ndarray],
    iou_threshold: float = 0.25,
) -> FrameOutcome:
    """Determine what class the detector assigned to the victim object."""
    if target_box_xywh is None:
        return FrameOutcome(predicted_class=None)
    target_xyxy = xywh_to_xyxy(np.asarray(target_box_xywh)[None, :])
    best: Optional[Detection] = None
    for det in detections:
        iou = iou_matrix(det.box_xyxy[None, :], target_xyxy)[0, 0]
        if iou < iou_threshold:
            continue
        if best is None or det.score > best.score:
            best = det
    if best is None:
        return FrameOutcome(predicted_class=None)
    return FrameOutcome(predicted_class=best.class_id, score=best.score)


def pwc(outcomes: Sequence[FrameOutcome], target_label: int) -> float:
    """Eq. 3: wrong-class frames over total frames, in percent."""
    if not outcomes:
        return 0.0
    hits = sum(1 for o in outcomes if o.predicted_class == target_label)
    return 100.0 * hits / len(outcomes)


def cwc(outcomes: Sequence[FrameOutcome], target_label: int,
        run_length: int = CWC_RUN_LENGTH) -> bool:
    """True iff ``run_length`` consecutive frames show the target class."""
    streak = 0
    for outcome in outcomes:
        if outcome.predicted_class == target_label:
            streak += 1
            if streak >= run_length:
                return True
        else:
            streak = 0
    return False


def missed_rate(outcomes: Sequence[FrameOutcome]) -> float:
    """Fraction of frames (percent) where the victim was not detected.

    The success metric of the *untargeted* (disappearance) attack mode —
    an extension beyond the paper's targeted PWC/CWC (DESIGN.md §6).
    """
    if not outcomes:
        return 0.0
    missed = sum(1 for o in outcomes if o.predicted_class is None)
    return 100.0 * missed / len(outcomes)


@dataclass
class VideoResult:
    """PWC/CWC of one evaluation video."""

    pwc: float
    cwc: bool
    outcomes: List[FrameOutcome] = field(default_factory=list)


def score_video(outcomes: Sequence[FrameOutcome], target_label: int) -> VideoResult:
    return VideoResult(
        pwc=pwc(outcomes, target_label),
        cwc=cwc(outcomes, target_label),
        outcomes=list(outcomes),
    )
