"""Paper-style table formatting.

Renders dictionaries of :class:`~repro.eval.protocol.ChallengeResult` as
ASCII tables matching the layout of the paper's Tables I-VI, so benchmark
output can be compared to the paper side by side (EXPERIMENTS.md records
both).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from .protocol import ChallengeResult

__all__ = ["format_table", "format_row", "CHALLENGE_TITLES"]

CHALLENGE_TITLES = {
    "rotation/fix": "fix",
    "rotation/slight": "slight rot.",
    "speed/slow": "slow",
    "speed/normal": "normal",
    "speed/fast": "fast",
    "angle/-15": "-15 deg",
    "angle/0": "0 deg",
    "angle/+15": "+15 deg",
}


def format_row(label: str, results: Mapping[str, ChallengeResult],
               challenges: Sequence[str], width: int = 12) -> str:
    """One table row; any cell that cannot render cleanly degrades to ``-``.

    A missing challenge, a result object without a usable ``cell()``, or a
    rendered cell wider than ``width`` all become ``-`` — a dash in an
    aligned table beats a misaligned table (the sink file in
    :func:`format_table` is diffed across runs, so alignment is load-bearing).
    """
    cells = []
    for challenge in challenges:
        try:
            result = results.get(challenge)
        except (AttributeError, TypeError):
            result = None
        cell = "-"
        if result is not None:
            try:
                cell = str(result.cell())
            except (AttributeError, TypeError, ValueError):
                cell = "-"
            if len(cell) > width:
                cell = "-"
        cells.append(cell)
    return f"{label:<28s} | " + " | ".join(f"{cell:>{width}}" for cell in cells)


def format_table(
    title: str,
    rows: Mapping[str, Mapping[str, ChallengeResult]],
    challenges: Sequence[str],
    width: int = 12,
    sink_path: str = "artifacts/tables.txt",
) -> str:
    """Render a full table; ``rows`` maps row label → challenge results.

    Each rendered table is also appended to ``sink_path`` (pass ``None`` to
    disable) so benchmark tables survive any pytest output capturing.
    """
    header = f"{'':<28s} | " + " | ".join(
        f"{CHALLENGE_TITLES.get(c, c):>{width}}" for c in challenges
    )
    ruler = "-" * len(header)
    lines = [title, ruler, header, ruler]
    for label, results in rows.items():
        lines.append(format_row(label, results, challenges, width))
    lines.append(ruler)
    table = "\n".join(lines)
    if sink_path:
        import os

        os.makedirs(os.path.dirname(os.path.abspath(sink_path)), exist_ok=True)
        with open(sink_path, "a") as handle:
            handle.write(table + "\n\n")
    return table
