"""`repro.eval` — PWC/CWC metrics and the three-challenge protocol."""

from .metrics import (
    CWC_RUN_LENGTH,
    FrameOutcome,
    VideoResult,
    classify_frame,
    cwc,
    missed_rate,
    pwc,
    score_video,
)
from .protocol import (
    DEFAULT_CHALLENGES,
    SPEED_ANGLE_CHALLENGES,
    ChallengeResult,
    evaluate_challenges,
    run_challenge,
)
from .report import CHALLENGE_TITLES, format_row, format_table

__all__ = [
    "FrameOutcome",
    "VideoResult",
    "classify_frame",
    "pwc",
    "cwc",
    "missed_rate",
    "score_video",
    "CWC_RUN_LENGTH",
    "ChallengeResult",
    "run_challenge",
    "evaluate_challenges",
    "DEFAULT_CHALLENGES",
    "SPEED_ANGLE_CHALLENGES",
    "format_table",
    "format_row",
    "CHALLENGE_TITLES",
]
