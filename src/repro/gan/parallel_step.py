"""Worker-side step functions of the data-parallel GAN trainer.

The per-sample unit here is one Four-Shapes draw: real sample + latent →
(D phase) discriminator loss on real-vs-detached-fake, or (G phase)
adversarial loss through the updated discriminator — each returning that
sample's parameter gradients. The parent reduces them through the fixed
tree and applies one optimizer step per phase, so an engine-mode GAN step
is two evaluate rounds (D, then G against the just-stepped D) against the
weights broadcast through the parameter slab.

Per-sample scheduling note (DESIGN.md §10): batch-norm layers see batch
statistics of a *single* sample under this schedule, a deliberate semantic
of the sharded step (the ``workers=0`` oracle uses the identical math).
Running-statistic buffers mutated inside workers are discarded on the next
weight reload and are never read in training mode, so results stay
independent of sharding; the parent re-estimates them deterministically
after training (see ``_recalibrate_batch_norm`` in the trainer).

RNG contract: each sample's stream derives from ``(seed, eot_epoch, step,
sample_index)`` and draws in a fixed order (real batch, then latent) in
*both* phases, so the G phase reuses exactly the latents the D phase saw —
matching the legacy step's single-draw structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..nn import Tensor
from ..parallel import ArraySpec
from ..patch.shapes import sample_batch
from ..utils.rng import derive_seed
from .discriminator import PatchDiscriminator
from .generator import PatchGenerator
from .losses import discriminator_loss, generator_adversarial_loss

__all__ = [
    "GanWorkerPayload",
    "gan_worker_init",
    "gan_worker_step",
    "gan_sample_stream",
    "gan_slab_specs",
]


def gan_sample_stream(seed: int, epoch: int, step: int,
                      sample_index: int) -> np.random.Generator:
    return np.random.default_rng(
        derive_seed(seed, "gan-sample", epoch, step, sample_index))


@dataclass(frozen=True)
class GanWorkerPayload:
    patch_size: int
    latent_dim: int
    gen_base_channels: int
    disc_base_channels: int
    shape: str
    seed: int


@dataclass
class _GanContext:
    generator: PatchGenerator
    discriminator: PatchDiscriminator
    payload: GanWorkerPayload


def gan_worker_init(payload: GanWorkerPayload) -> _GanContext:
    # Architecture only — every weight is overwritten from the parameter
    # slab before any task computes.
    generator = PatchGenerator(payload.patch_size, latent_dim=payload.latent_dim,
                               base_channels=payload.gen_base_channels, seed=0)
    discriminator = PatchDiscriminator(payload.patch_size,
                                       base_channels=payload.disc_base_channels,
                                       seed=1)
    generator.train()
    discriminator.train()
    return _GanContext(generator=generator, discriminator=discriminator,
                       payload=payload)


def _load(module, params: Dict[str, np.ndarray], prefix: str) -> None:
    module.load_state_dict({key[len(prefix):]: value
                            for key, value in params.items()
                            if key.startswith(prefix)})


def gan_worker_step(ctx: _GanContext, params: Dict[str, np.ndarray],
                    task: dict) -> List[tuple]:
    """One task = one phase ("d" or "g") over a shard of sample indices."""
    _load(ctx.generator, params, "gen.")
    _load(ctx.discriminator, params, "disc.")
    payload = ctx.payload
    phase = task["phase"]
    rows: List[tuple] = []
    for sample_index, _ in task["samples"]:
        rng = gan_sample_stream(payload.seed, task["epoch"], task["step"],
                                sample_index)
        real = sample_batch(payload.shape, payload.patch_size, 1, rng)
        z = ctx.generator.sample_latent(1, rng)
        for param in ctx.generator.parameters():
            param.grad = None
        for param in ctx.discriminator.parameters():
            param.grad = None
        fake = ctx.generator(Tensor(z))
        if phase == "d":
            loss = discriminator_loss(
                ctx.discriminator(Tensor(real)), ctx.discriminator(fake.detach()))
            prefix, module = "disc.", ctx.discriminator
        else:
            loss = generator_adversarial_loss(ctx.discriminator(fake))
            prefix, module = "gen.", ctx.generator
        loss.backward()
        grads = {prefix + name: np.ascontiguousarray(param.grad, dtype=np.float32)
                 for name, param in module.named_parameters()}
        rows.append((sample_index, grads, {"loss": float(loss.data)}))
    return rows


def gan_slab_specs(
    generator: PatchGenerator, discriminator: PatchDiscriminator
) -> Tuple[Tuple[ArraySpec, ...], Tuple[ArraySpec, ...]]:
    """(param_specs, grad_specs) for the GAN engine's shared slabs.

    Parameters ship the full state dicts (weights *and* batch-norm
    buffers, so worker reloads are total); gradients exist only for
    trainable parameters.
    """
    param_specs = tuple(
        ArraySpec(prefix + key, tuple(np.shape(value)),
                  str(np.asarray(value).dtype))
        for prefix, module in (("gen.", generator), ("disc.", discriminator))
        for key, value in module.state_dict().items()
    )
    grad_specs = tuple(
        ArraySpec(prefix + name, tuple(param.data.shape))
        for prefix, module in (("gen.", generator), ("disc.", discriminator))
        for name, param in module.named_parameters()
    )
    return param_specs, grad_specs
